"""Legacy setup shim.

The offline environment ships setuptools but not ``wheel``, so PEP 660
editable installs (which build a wheel) fail; this shim lets
``pip install -e . --no-use-pep517`` fall back to the classic
``setup.py develop`` path.  All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
