"""Fig. 10(a): correctness coefficient vs network size.

Paper's finding: sFlow stays at a correctness coefficient of ~0.9+ and
dominates the controls; fixed comes second, random hovers around 0.5 and
decays, the single-service-path system is lowest ("it can only handle the
simplest service requirements").

Benchmarked computation: one full algorithm line-up trial (all five
algorithms incl. the global-optimal reference) on the representative
size-30 scenario.
"""

import pytest

from repro.eval.experiments import run_trial
from repro.eval.figures import fig10a

from .conftest import emit


def test_fig10a_trial_benchmark(benchmark, bench_scenario):
    """Time one complete correctness trial (5 algorithms, size 30)."""
    records = benchmark(run_trial, bench_scenario)
    assert len(records) == 5


def test_fig10a_regenerate(benchmark, sweep_config, mixed_records):
    """Regenerate the panel and assert the paper's ordering."""
    table = benchmark.pedantic(
        fig10a, args=(sweep_config,), kwargs={"records": mixed_records},
        rounds=1, iterations=1,
    )
    emit(table)
    mean = lambda xs: sum(xs) / len(xs)
    # Sweep-wide ordering (per-size cells carry finite-trial noise).
    assert mean(table.series["sflow"]) > mean(table.series["fixed"])
    assert mean(table.series["sflow"]) > mean(table.series["random"])
    assert mean(table.series["sflow"]) > mean(table.series["service_path"])
    # Per-size, sFlow never falls meaningfully below the random control.
    for i in range(len(table.sizes)):
        assert table.series["sflow"][i] >= table.series["random"][i] - 0.1
    # sFlow stays high across the whole size range.
    assert min(table.series["sflow"]) >= 0.55
    assert mean(table.series["sflow"]) >= 0.75
