"""Data-plane validation of the paper's quality model (Sec. 3.2).

The paper *asserts* that a flow graph's throughput equals its bottleneck
bandwidth and that DAG execution completes along the critical path.  This
benchmark *measures* both by streaming data units through federated flow
graphs on the executor of :mod:`repro.services.execution`:

* relative error between measured steady-state throughput and the
  bottleneck prediction (should vanish as streams lengthen);
* first-unit delivery vs. the flow graph's critical-path latency.
"""

import pytest

from repro.core.reductions import ReductionSolver
from repro.eval.stats import mean
from repro.services.execution import StreamConfig, simulate_stream
from repro.services.workloads import ScenarioConfig, generate_scenario

SEEDS = range(8)


def _graphs():
    graphs = []
    for seed in SEEDS:
        scenario = generate_scenario(
            ScenarioConfig(
                network_size=20,
                n_services=6,
                instances_per_service=(2, 3),
                seed=seed,
            )
        )
        graphs.append(
            ReductionSolver().solve(
                scenario.requirement,
                scenario.overlay,
                source_instance=scenario.source_instance,
            )
        )
    return graphs


def test_stream_execution_benchmark(benchmark):
    graph = _graphs()[0]
    report = benchmark(simulate_stream, graph, StreamConfig(units=200))
    assert report.units == 200


def test_throughput_prediction_table(benchmark):
    def sweep():
        rows = {}
        for units in (10, 50, 200):
            errors = [
                simulate_stream(g, StreamConfig(units=units)).prediction_error
                for g in _graphs()
            ]
            rows[units] = mean(errors)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("bottleneck-throughput prediction error vs stream length")
    for units, error in rows.items():
        print(f"  units={units:<5} mean relative error={error:.4f}")
    # Longer streams amortise the fill latency: error shrinks below 3%.
    assert rows[200] < 0.03
    assert rows[200] <= rows[10]


def test_first_unit_follows_critical_path(benchmark):
    def sweep():
        gaps = []
        for graph in _graphs():
            report = simulate_stream(graph, StreamConfig(units=1))
            # Propagation alone is the flow-graph latency; transmission adds
            # unit_size/bandwidth per hop on the critical path.
            assert report.first_delivery >= graph.end_to_end_latency()
            gaps.append(report.first_delivery - graph.end_to_end_latency())
        return mean(gaps)

    gap = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(f"\nmean transmission overhead above critical-path latency: {gap:.3f}")
    assert gap >= 0
