"""Incremental-analysis benchmark for the ``sflow-check`` engine.

The whole-program refactor is only worth its complexity if warm runs are
actually cheap: a single-file edit must re-analyse that file plus the
reverse-dependency closure of its module, replaying everything else from
the content-hash cache bit-identically.  This harness holds that to
numbers:

* **cold**: full analysis of ``src/`` + ``tests/`` with an empty cache;
* **warm**: the same run after touching exactly one file -- required to
  be at least 5x faster than cold (in practice it is far more, since one
  module re-parses instead of ~150);
* **identity**: the warm findings must equal the cold findings bit for
  bit, which is the correctness half of the caching contract.

Numbers land in ``benchmarks/results/BENCH_static_analysis.json`` via
the shared ``conftest.write_bench_record`` helper, so the linter's own
performance trajectory is trackable across PRs like any other subsystem.

Run: pytest benchmarks/test_static_analysis.py -s
"""

from __future__ import annotations

import shutil
import time
from pathlib import Path

from repro.tools.check import run_project

BENCH_FILE = "BENCH_static_analysis.json"

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Warm runs must beat cold by at least this factor after a 1-file edit.
MIN_SPEEDUP = 5.0


def _copy_tree(tmp_path: Path) -> list[Path]:
    """A throwaway copy of src/ + tests/ so the edit never touches the repo."""
    roots = []
    for name in ("src", "tests"):
        dst = tmp_path / name
        shutil.copytree(
            REPO_ROOT / name,
            dst,
            ignore=shutil.ignore_patterns("__pycache__"),
        )
        roots.append(dst)
    return roots


def test_incremental_rerun_is_5x_faster_and_bit_identical(tmp_path, bench_record):
    roots = _copy_tree(tmp_path)
    cache_dir = tmp_path / ".sflow-check-cache"

    started = time.perf_counter()
    cold = run_project(roots, cache_dir=cache_dir)
    cold_seconds = time.perf_counter() - started
    assert cold.errors == []
    assert cold.stats.misses == cold.stats.files

    # one-line edit to a leaf-ish module with importers
    target = tmp_path / "src" / "repro" / "obs" / "clock.py"
    target.write_text(
        target.read_text(encoding="utf-8") + "\n# bench edit\n",
        encoding="utf-8",
    )

    started = time.perf_counter()
    warm = run_project(roots, cache_dir=cache_dir)
    warm_seconds = time.perf_counter() - started
    assert warm.errors == []
    assert warm.stats.misses == 1
    assert warm.stats.hits == warm.stats.files - 1
    assert warm.stats.changed_modules == ["repro.obs.clock"]
    assert len(warm.stats.reverse_closure) >= 1

    # correctness half of the contract: replayed findings are bit-identical
    assert [v.as_dict() for v in warm.violations] == [
        v.as_dict() for v in cold.violations
    ]

    speedup = cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")
    print(
        f"\ncold {cold_seconds * 1e3:.0f} ms ({cold.stats.files} files), "
        f"warm {warm_seconds * 1e3:.0f} ms "
        f"({warm.stats.hits} hits / {warm.stats.misses} miss), "
        f"speedup {speedup:.1f}x"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"warm rerun only {speedup:.1f}x faster than cold "
        f"({warm_seconds:.3f}s vs {cold_seconds:.3f}s)"
    )

    bench_record(
        BENCH_FILE,
        "incremental",
        {
            "files": cold.stats.files,
            "cold_seconds": round(cold_seconds, 4),
            "warm_seconds": round(warm_seconds, 4),
            "speedup": round(speedup, 1),
            "warm_cache_hits": warm.stats.hits,
            "warm_misses": warm.stats.misses,
            "reverse_closure": len(warm.stats.reverse_closure),
            "findings_cold": len(cold.violations),
            "findings_warm": len(warm.violations),
            "findings_identical": True,
            "min_speedup_gate": MIN_SPEEDUP,
        },
    )


def test_parallel_fanout_matches_serial(tmp_path, bench_record):
    roots = _copy_tree(tmp_path)

    started = time.perf_counter()
    serial = run_project(roots, jobs=1)
    serial_seconds = time.perf_counter() - started

    started = time.perf_counter()
    parallel = run_project(roots, jobs=0)  # 0 = cpu count
    parallel_seconds = time.perf_counter() - started

    assert [v.as_dict() for v in parallel.violations] == [
        v.as_dict() for v in serial.violations
    ]
    print(
        f"\nserial {serial_seconds * 1e3:.0f} ms, "
        f"parallel {parallel_seconds * 1e3:.0f} ms "
        f"({parallel.stats.workers} workers)"
    )
    bench_record(
        BENCH_FILE,
        "parallel",
        {
            "files": serial.stats.files,
            "serial_seconds": round(serial_seconds, 4),
            "parallel_seconds": round(parallel_seconds, 4),
            "workers": parallel.stats.workers,
            "findings_identical": True,
        },
    )
