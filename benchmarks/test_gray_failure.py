"""Gray-failure tolerance: detection, degradation, and delivered bandwidth.

Beyond crash-stop chaos (``test_crash_tolerance``): this campaign injects
*gray* faults -- lossy/duplicating/reordering channels, stragglers,
bandwidth ramps, flapping links, healing partitions -- and measures how the
adaptive stack (phi-accrual detection, bounded retries, circuit breakers,
the degradation ladder) keeps sessions serving.  The regenerated CSV
(``benchmarks/results/gray_failure.csv``) reports per-trial delivered
bandwidth fraction, detection latency, false-suspicion rate, and recovery
latency.

Benchmarked computation: one disturbed federation run under a seeded
composed gray-fault plan on the representative scenario.
"""

import random

import pytest

from repro.core.sflow import SFlowAlgorithm
from repro.eval.robustness import (
    GrayFailureConfig,
    run_gray_failure,
    summarize_gray,
    write_gray_csv,
)
from repro.network.failures import FailureInjector

from .conftest import RESULTS_DIR

#: Default campaign grid: fault intensity x network size, adaptive stack on.
GRAY_CONFIG = GrayFailureConfig(
    network_sizes=(10, 20),
    intensities=(0.0, 0.3, 0.6),
    trials=5,
    n_services=5,
    seed=0,
)


@pytest.fixture(scope="module")
def gray_records():
    return run_gray_failure(GRAY_CONFIG)


def test_single_gray_run_benchmark(benchmark, bench_scenario):
    """Time one federation under a composed intensity-0.6 gray plan."""
    baseline = SFlowAlgorithm(GRAY_CONFIG.protocol_config()).federate(
        bench_scenario.requirement,
        bench_scenario.overlay,
        source_instance=bench_scenario.source_instance,
    )
    required = baseline.flow_graph.bottleneck_bandwidth() * 0.8
    config = GRAY_CONFIG.protocol_config(required_bandwidth=required)
    injector = FailureInjector(
        random.Random(99), protect=[bench_scenario.source_instance]
    )
    chaos = injector.gray_plan(
        bench_scenario.overlay,
        intensity=0.6,
        window=GRAY_CONFIG.fault_window,
        heal_after=GRAY_CONFIG.heal_after,
        crash_fraction=GRAY_CONFIG.crash_fraction,
        seed=99,
    )

    def run():
        return SFlowAlgorithm(config).federate(
            bench_scenario.requirement,
            bench_scenario.overlay,
            source_instance=bench_scenario.source_instance,
            chaos=chaos,
        )

    result = benchmark(run)
    assert result.outcome.value in {"succeeded", "degraded", "failed"}


def test_gray_failure_regenerate(benchmark, gray_records):
    """Regenerate the gray-failure table + CSV and assert its invariants."""
    cells = benchmark.pedantic(
        summarize_gray, args=(gray_records,), rounds=1, iterations=1
    )
    path = RESULTS_DIR / "gray_failure.csv"
    write_gray_csv(gray_records, path)
    print()
    print("gray-failure tolerance: adaptive detection + degradation ladder")
    print(
        f"  {'size':<6}{'inten':<7}{'commit':>7}{'degr':>6}{'fail':>6}"
        f"{'delivered':>11}{'detect-lat':>12}{'false-susp':>12}"
        f"{'recov-lat':>11}"
    )
    for cell in cells:
        print(
            f"  {cell.network_size:<6}{cell.intensity:<7g}"
            f"{cell.committed_rate:>7.2f}{cell.degraded_rate:>6.2f}"
            f"{cell.failed_rate:>6.2f}{cell.mean_delivered_fraction:>11.3f}"
            f"{cell.mean_detection_latency:>12.2f}"
            f"{cell.false_suspicion_rate:>12.3f}"
            f"{cell.mean_recovery_latency:>11.2f}"
        )
    print(f"  -> {path}")

    # Intensity 0 must reproduce the fault-free runs bit-for-bit.
    for cell in cells:
        if cell.intensity == 0.0:
            assert cell.committed_rate == 1.0
            assert cell.all_identical_to_baseline
            assert cell.mean_delivered_fraction == 1.0
    # Every session reaches a terminal state; nothing hangs or leaks.
    for record in gray_records:
        assert record.outcome in {"succeeded", "degraded", "failed"}
    # The ladder keeps most sessions serving (committed or degraded)
    # even at the highest fault intensity.
    worst = [c for c in cells if c.intensity == max(GRAY_CONFIG.intensities)]
    serving = [c.committed_rate + c.degraded_rate for c in worst]
    assert sum(serving) / len(serving) >= 0.5, serving
