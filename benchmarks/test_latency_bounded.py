"""QoS-constrained federation: the bandwidth/latency trade-off curve.

The Pareto frontiers inside the reduction solver give the constrained
variant -- maximise bottleneck bandwidth subject to a critical-path latency
budget -- for free.  This benchmark sweeps the budget from tight to loose
and prints the achievable bandwidth at each point: the trade-off curve a
consumer negotiating QoS would see.
"""

import math

import pytest

from repro.core.reductions import ReductionSolver
from repro.errors import FederationError
from repro.eval.stats import mean
from repro.services.workloads import ScenarioConfig, generate_scenario

SEEDS = range(8)
#: Budget as a multiple of the unconstrained solution's latency.
BUDGET_FACTORS = (0.6, 0.8, 1.0, 1.5)


def _scenarios():
    return [
        generate_scenario(
            ScenarioConfig(
                network_size=18,
                n_services=6,
                instances_per_service=(3, 4),
                seed=seed,
            )
        )
        for seed in SEEDS
    ]


def test_bounded_solve_benchmark(benchmark):
    scenario = _scenarios()[0]
    solver = ReductionSolver()
    unbounded = solver.solve(
        scenario.requirement,
        scenario.overlay,
        source_instance=scenario.source_instance,
    )
    bound = unbounded.end_to_end_latency() * 1.2
    graph = benchmark(
        solver.solve,
        scenario.requirement,
        scenario.overlay,
        source_instance=scenario.source_instance,
        latency_bound=bound,
    )
    assert graph.end_to_end_latency() <= bound


def test_tradeoff_curve_table(benchmark):
    def sweep():
        rows = {}
        for factor in BUDGET_FACTORS:
            bandwidth_ratio, feasible = [], 0
            for scenario in _scenarios():
                solver = ReductionSolver()
                unbounded = solver.solve(
                    scenario.requirement,
                    scenario.overlay,
                    source_instance=scenario.source_instance,
                )
                bound = unbounded.end_to_end_latency() * factor
                try:
                    bounded = solver.solve(
                        scenario.requirement,
                        scenario.overlay,
                        source_instance=scenario.source_instance,
                        latency_bound=bound,
                    )
                except FederationError:
                    continue
                feasible += 1
                assert bounded.end_to_end_latency() <= bound + 1e-9
                bandwidth_ratio.append(
                    bounded.bottleneck_bandwidth()
                    / unbounded.bottleneck_bandwidth()
                )
            rows[factor] = (
                feasible,
                mean(bandwidth_ratio) if bandwidth_ratio else math.nan,
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("latency budget vs achievable bandwidth (vs unconstrained optimum)")
    print(f"  {'budget x':<10}{'feasible':>9}{'bandwidth ratio':>17}")
    for factor, (feasible, ratio) in rows.items():
        shown = f"{ratio:.3f}" if not math.isnan(ratio) else "-"
        print(f"  {factor:<10}{feasible:>9}/{len(list(SEEDS))}{shown:>15}")
    # At or above the unconstrained latency, the bound is free: full
    # bandwidth, always feasible.
    assert rows[1.0] == (len(list(SEEDS)), pytest.approx(1.0))
    assert rows[1.5] == (len(list(SEEDS)), pytest.approx(1.0))
    # Tighter budgets can only cost bandwidth (never gain), and the curve
    # is monotone in the budget.
    ratios = [r for _, r in rows.values() if not math.isnan(r)]
    factors = [f for f, (n, r) in rows.items() if not math.isnan(r)]
    for (f1, r1), (f2, r2) in zip(
        zip(factors, ratios), list(zip(factors, ratios))[1:]
    ):
        assert r1 <= r2 + 1e-9