"""Ablation A1: the local-knowledge horizon.

The paper fixes every node's knowledge to a two-hop vicinity.  This
ablation sweeps the horizon (1, 2, 3 overlay hops) and regenerates the
correctness column, quantifying how much of sFlow's quality comes from
local knowledge depth: a wider horizon should never hurt, and by horizon 3
the distributed run approaches the centralised optimum.
"""

import pytest

from repro.core.optimal import optimal_flow_graph
from repro.core.sflow import SFlowAlgorithm, SFlowConfig
from repro.eval.stats import mean
from repro.services.workloads import ScenarioConfig, generate_scenario

HORIZONS = (1, 2, 3)
SEEDS = range(8)
SIZE = 30


def _scenarios():
    return [
        generate_scenario(
            ScenarioConfig(
                network_size=SIZE,
                n_services=6,
                instances_per_service=(4, 6),
                seed=seed,
            )
        )
        for seed in SEEDS
    ]


def _mean_correctness(scenarios, horizon: int) -> float:
    values = []
    for scenario in scenarios:
        optimal = optimal_flow_graph(
            scenario.requirement,
            scenario.overlay,
            source_instance=scenario.source_instance,
        )
        graph = SFlowAlgorithm(SFlowConfig(horizon=horizon)).solve(
            scenario.requirement,
            scenario.overlay,
            source_instance=scenario.source_instance,
        )
        values.append(graph.correctness_coefficient(optimal))
    return mean(values)


@pytest.mark.parametrize("horizon", HORIZONS)
def test_horizon_federation_benchmark(benchmark, horizon):
    """Per-horizon cost of one distributed federation (size 30)."""
    scenario = _scenarios()[0]
    algorithm = SFlowAlgorithm(SFlowConfig(horizon=horizon))
    graph = benchmark(
        algorithm.solve,
        scenario.requirement,
        scenario.overlay,
        source_instance=scenario.source_instance,
    )
    assert graph.is_complete()


def test_horizon_correctness_table(benchmark):
    """Correctness vs horizon: wider views monotonically help."""

    def sweep():
        scenarios = _scenarios()
        return {h: _mean_correctness(scenarios, h) for h in HORIZONS}

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("ablation: knowledge horizon vs mean correctness (size 30)")
    for horizon, value in table.items():
        print(f"  horizon={horizon}  correctness={value:.3f}")
    assert table[2] >= table[1] - 0.05
    assert table[3] >= table[2] - 0.05
    assert table[3] >= 0.85  # near-global knowledge recovers the optimum
