"""Agility under churn: availability vs churn intensity.

The end-to-end "agile" experiment: federations run under continuous
instance leave/rejoin while the monitor repairs incrementally.  The table
reports, per churn interval, the service availability (probes meeting the
bandwidth threshold), repair counts, and bandwidth retention.
"""

import pytest

from repro.core.monitor import MonitorConfig
from repro.eval.churn import ChurnConfig, run_churn_experiment
from repro.eval.stats import mean
from repro.services.workloads import ScenarioConfig, generate_scenario

SEEDS = range(5)
INTERVALS = (40.0, 20.0, 10.0)  # slow -> aggressive churn


def _scenarios():
    return [
        generate_scenario(
            ScenarioConfig(
                network_size=18,
                n_services=6,
                instances_per_service=(3, 4),
                seed=seed,
            )
        )
        for seed in SEEDS
    ]


def test_single_churn_run_benchmark(benchmark):
    scenario = _scenarios()[0]

    def run():
        return run_churn_experiment(
            scenario,
            ChurnConfig(
                duration=100,
                churn_interval=20,
                monitor=MonitorConfig(probe_interval=5.0),
            ),
        )

    report = benchmark(run)
    assert report.final_bandwidth > 0


def test_churn_intensity_table(benchmark):
    def sweep():
        rows = {}
        for interval in INTERVALS:
            availability, repairs, retention = [], [], []
            for scenario in _scenarios():
                report = run_churn_experiment(
                    scenario,
                    ChurnConfig(
                        duration=120,
                        churn_interval=interval,
                        rejoin_delay=15,
                        monitor=MonitorConfig(probe_interval=4.0),
                        seed=scenario.seed,
                    ),
                )
                availability.append(report.availability)
                repairs.append(report.repairs)
                retention.append(report.bandwidth_retention)
            rows[interval] = (
                mean(availability), mean(repairs), mean(retention)
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("churn intensity vs federation agility (mean over 5 scenarios)")
    print(f"  {'interval':<10}{'availability':>13}{'repairs':>9}{'retention':>11}")
    for interval, (availability, repairs, retention) in rows.items():
        print(
            f"  {interval:<10}{availability:>13.2f}{repairs:>9.1f}"
            f"{retention:>11.2f}"
        )
    # The repair loop keeps the service mostly available even under the
    # most aggressive churn...
    assert rows[INTERVALS[-1]][0] >= 0.6
    # ...while naturally repairing more often than under slow churn.
    assert rows[INTERVALS[-1]][1] >= rows[INTERVALS[0]][1]
    # Bandwidth never collapses.
    for availability, _repairs, retention in rows.values():
        assert retention >= 0.5
