"""Ablation A3: requirement topology class.

The paper's central claim is that DAG-shaped federation pays off most when
requirements actually split and merge.  This ablation regenerates the
correctness and latency columns per requirement class (path / disjoint /
split-merge / general) at a fixed network size, showing where the
parallel-execution advantage over the serialized service path comes from.
"""

import pytest

from repro.core.alternatives import ServicePathAlgorithm
from repro.core.optimal import optimal_flow_graph
from repro.core.sflow import SFlowAlgorithm
from repro.eval.stats import mean
from repro.services.requirement import RequirementClass
from repro.services.workloads import ScenarioConfig, generate_scenario

CLASSES = (
    RequirementClass.PATH,
    RequirementClass.DISJOINT_PATHS,
    RequirementClass.SPLIT_MERGE,
    RequirementClass.GENERAL,
)
SEEDS = range(8)


def _scenarios(clazz):
    return [
        generate_scenario(
            ScenarioConfig(
                network_size=24,
                n_services=7,
                requirement_class=clazz,
                instances_per_service=(3, 4),
                seed=seed,
            )
        )
        for seed in SEEDS
    ]


def _row(clazz):
    correctness, dag_latency, chain_latency = [], [], []
    for scenario in _scenarios(clazz):
        optimal = optimal_flow_graph(
            scenario.requirement,
            scenario.overlay,
            source_instance=scenario.source_instance,
        )
        graph = SFlowAlgorithm().solve(
            scenario.requirement,
            scenario.overlay,
            source_instance=scenario.source_instance,
        )
        chain = ServicePathAlgorithm()
        chain.solve(
            scenario.requirement,
            scenario.overlay,
            source_instance=scenario.source_instance,
        )
        correctness.append(graph.correctness_coefficient(optimal))
        dag_latency.append(graph.end_to_end_latency())
        chain_latency.append(chain.last_serialized.latency)
    return {
        "correctness": mean(correctness),
        "dag_latency": mean(dag_latency),
        "chain_latency": mean(chain_latency),
    }


@pytest.mark.parametrize("clazz", CLASSES, ids=[c.value for c in CLASSES])
def test_class_federation_benchmark(benchmark, clazz):
    scenario = _scenarios(clazz)[0]
    algorithm = SFlowAlgorithm()
    graph = benchmark(
        algorithm.solve,
        scenario.requirement,
        scenario.overlay,
        source_instance=scenario.source_instance,
    )
    assert graph.is_complete()


def test_class_table(benchmark):
    def sweep():
        return {clazz.value: _row(clazz) for clazz in CLASSES}

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("ablation: requirement class (size 24, 7 services)")
    print(f"  {'class':<16}{'correctness':>12}{'dag latency':>13}{'chain latency':>15}")
    for name, row in table.items():
        print(
            f"  {name:<16}{row['correctness']:>12.3f}"
            f"{row['dag_latency']:>13.2f}{row['chain_latency']:>15.2f}"
        )
    # On chains, serialized delivery IS the DAG: latencies coincide.
    path_row = table["path"]
    assert path_row["chain_latency"] == pytest.approx(
        path_row["dag_latency"], rel=0.2
    )
    # On every splitting class, parallel execution beats serialization.
    for clazz in ("disjoint_paths", "split_merge", "general"):
        assert table[clazz]["dag_latency"] < table[clazz]["chain_latency"]
