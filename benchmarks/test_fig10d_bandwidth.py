"""Fig. 10(d): end-to-end bandwidth vs network size.

Paper's finding: sFlow "consistently produces service flow graphs with
higher end-to-end throughput, regardless of the network size" -- the mean
bottleneck bandwidth orders optimal >= sflow > fixed > random at every
size.

Benchmarked computation: the global-optimal branch-and-bound search, the
panel's reference line.
"""

import pytest

from repro.core.alternatives import FixedAlgorithm
from repro.core.optimal import optimal_flow_graph
from repro.eval.figures import fig10d

from .conftest import emit


def test_fig10d_optimal_benchmark(benchmark, bench_scenario):
    graph = benchmark(
        optimal_flow_graph,
        bench_scenario.requirement,
        bench_scenario.overlay,
        source_instance=bench_scenario.source_instance,
    )
    assert graph.is_complete()


def test_fig10d_fixed_benchmark(benchmark, bench_scenario):
    algorithm = FixedAlgorithm()
    graph = benchmark(
        algorithm.solve,
        bench_scenario.requirement,
        bench_scenario.overlay,
        source_instance=bench_scenario.source_instance,
    )
    assert len(graph.assignment) == len(bench_scenario.requirement)


def test_fig10d_regenerate(benchmark, sweep_config, mixed_records):
    table = benchmark.pedantic(
        fig10d, args=(sweep_config,), kwargs={"records": mixed_records},
        rounds=1, iterations=1,
    )
    emit(table)
    for i in range(len(table.sizes)):
        assert table.series["optimal"][i] >= table.series["sflow"][i] - 1e-9
        assert table.series["sflow"][i] >= table.series["fixed"][i] - 1e-9
        assert table.series["sflow"][i] >= table.series["random"][i] - 1e-9
