"""Fig. 10(b): computation time vs network size (simple requirements).

Paper's finding: both sFlow and the global optimal grow polynomially with
network size; the optimal, "computed once at the sink node", sits slightly
below sFlow, whose distributed re-computations at every service node add
overhead.

Benchmarked computations: the distributed sFlow federation and the
centralised optimal search on the same size-30 path scenario -- the
benchmark timings themselves reproduce the panel's ordering.
"""

import pytest

from repro.core.optimal import optimal_flow_graph
from repro.core.sflow import SFlowAlgorithm
from repro.eval.figures import fig10b

from .conftest import emit


def test_fig10b_sflow_benchmark(benchmark, path_scenario):
    algorithm = SFlowAlgorithm()
    graph = benchmark(
        algorithm.solve,
        path_scenario.requirement,
        path_scenario.overlay,
        source_instance=path_scenario.source_instance,
    )
    assert graph.is_complete()


def test_fig10b_optimal_benchmark(benchmark, path_scenario):
    graph = benchmark(
        optimal_flow_graph,
        path_scenario.requirement,
        path_scenario.overlay,
        source_instance=path_scenario.source_instance,
    )
    assert graph.is_complete()


def test_fig10b_regenerate(benchmark, sweep_config, path_records):
    table = benchmark.pedantic(
        fig10b, args=(sweep_config,), kwargs={"records": path_records},
        rounds=1, iterations=1,
    )
    emit(table)
    # Polynomial growth: the largest network costs more than the smallest.
    assert table.series["sflow"][-1] > table.series["sflow"][0]
    assert table.series["optimal"][-1] > table.series["optimal"][0]
    # The centralised optimal is cheaper at every size (paper's gap).
    for sflow_t, optimal_t in zip(table.series["sflow"], table.series["optimal"]):
        assert optimal_t <= sflow_t
