"""Ablation A2: reduction strategies and the Pareto frontier.

DESIGN.md calls out two solver design choices:

* keeping full ``(bandwidth, latency)`` **Pareto frontiers** in the block
  DP (exact for series-parallel requirements) versus the paper's pure
  shortest-widest-best heuristic, and
* the bounded **exhaustive enumeration** of irreducible general blocks
  versus the greedy widest-first fallback.

This module measures both: solution quality against the global optimum and
the runtime cost of exactness.
"""

import pytest

from repro.core.optimal import optimal_flow_graph
from repro.core.reductions import ReductionSolver
from repro.eval.stats import mean
from repro.services.requirement import RequirementClass
from repro.services.workloads import ScenarioConfig, generate_scenario

SEEDS = range(10)


def _scenarios(clazz=None):
    return [
        generate_scenario(
            ScenarioConfig(
                network_size=24,
                n_services=7,
                requirement_class=clazz,
                instances_per_service=(3, 4),
                seed=seed,
            )
        )
        for seed in SEEDS
    ]


def _quality_ratios(solver):
    ratios = []
    for scenario in _scenarios():
        optimal = optimal_flow_graph(
            scenario.requirement,
            scenario.overlay,
            source_instance=scenario.source_instance,
        )
        graph = solver.solve(
            scenario.requirement,
            scenario.overlay,
            source_instance=scenario.source_instance,
        )
        ratios.append(
            graph.bottleneck_bandwidth() / optimal.bottleneck_bandwidth()
        )
    return ratios


@pytest.mark.parametrize("pareto", [True, False], ids=["pareto", "heuristic"])
def test_solver_benchmark(benchmark, pareto):
    scenario = _scenarios()[0]
    solver = ReductionSolver(pareto=pareto)
    graph = benchmark(
        solver.solve,
        scenario.requirement,
        scenario.overlay,
        source_instance=scenario.source_instance,
    )
    assert graph.is_complete()


def test_greedy_fallback_benchmark(benchmark):
    """Cost of the greedy path when enumeration is forbidden."""
    scenario = _scenarios(RequirementClass.GENERAL)[0]
    solver = ReductionSolver(enumeration_limit=1)
    graph = benchmark(
        solver.solve,
        scenario.requirement,
        scenario.overlay,
        source_instance=scenario.source_instance,
    )
    assert graph.is_complete()


def test_pareto_vs_heuristic_quality(benchmark):
    def sweep():
        return {
            "pareto": mean(_quality_ratios(ReductionSolver(pareto=True))),
            "heuristic": mean(_quality_ratios(ReductionSolver(pareto=False))),
            "greedy": mean(
                _quality_ratios(ReductionSolver(enumeration_limit=1))
            ),
        }

    ratios = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("ablation: solver variant vs bandwidth ratio to optimal")
    for name, value in ratios.items():
        print(f"  {name:<10} bandwidth/optimal = {value:.3f}")
    # The Pareto DP is exact on these workloads.
    assert ratios["pareto"] == pytest.approx(1.0)
    # Dropping frontiers or enumeration never helps.
    assert ratios["heuristic"] <= ratios["pareto"] + 1e-9
    assert ratios["greedy"] <= ratios["pareto"] + 1e-9
