"""Protocol overhead: messages, bytes and convergence of the distributed run.

Not a paper figure, but the paper's scalability story ("the distributed
sFlow algorithm does not introduce significant amount of computation
overhead") implies bounded protocol cost.  This module measures, per
network size:

* ``sfederate`` messages (exactly requirement-edges + 1 -- one commit per
  edge plus the consumer's kick-off),
* bytes moved (message sizes grow with the residual requirement and
  accumulated pins/edges),
* the bounded link-state flood that materialises the two-hop views.
"""

import pytest

from repro.core.sflow import SFlowAlgorithm, SFlowConfig
from repro.eval.stats import mean
from repro.routing.link_state import collect_local_views
from repro.services.workloads import ScenarioConfig, generate_scenario

SIZES = (10, 30, 50)


def _scenario(size, seed=0):
    return generate_scenario(
        ScenarioConfig(
            network_size=size,
            n_services=6,
            instances_per_service=(max(1, size // 8), max(2, size // 6)),
            seed=seed,
        )
    )


@pytest.mark.parametrize("size", SIZES)
def test_link_state_flood_benchmark(benchmark, size):
    scenario = _scenario(size)
    report = benchmark(collect_local_views, scenario.overlay, 2)
    assert report.messages > 0


def test_protocol_overhead_table(benchmark):
    def sweep():
        rows = {}
        for size in SIZES:
            messages, payload, convergence, ls_messages = [], [], [], []
            for seed in range(5):
                scenario = _scenario(size, seed)
                algorithm = SFlowAlgorithm(SFlowConfig(use_link_state=True))
                result = algorithm.federate(
                    scenario.requirement,
                    scenario.overlay,
                    source_instance=scenario.source_instance,
                )
                expected = len(scenario.requirement.edges()) + 1
                assert result.messages == expected
                messages.append(result.messages)
                payload.append(result.bytes)
                convergence.append(result.convergence_time)
                ls_messages.append(result.link_state_messages)
            rows[size] = {
                "sfederate_msgs": mean(messages),
                "bytes": mean(payload),
                "convergence": mean(convergence),
                "link_state_msgs": mean(ls_messages),
            }
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("protocol overhead per network size (mean over 5 scenarios)")
    header = f"  {'size':<6}{'sfederate':>10}{'bytes':>10}{'converge':>10}{'LSA msgs':>10}"
    print(header)
    for size, row in rows.items():
        print(
            f"  {size:<6}{row['sfederate_msgs']:>10.1f}{row['bytes']:>10.1f}"
            f"{row['convergence']:>10.2f}{row['link_state_msgs']:>10.1f}"
        )
    # sfederate traffic depends on the requirement, not the network size.
    counts = [row["sfederate_msgs"] for row in rows.values()]
    assert max(counts) - min(counts) <= 4
    # The link-state flood grows with the overlay.
    ls = [row["link_state_msgs"] for row in rows.values()]
    assert ls[-1] > ls[0]


def test_reliability_under_loss_table(benchmark):
    """Protocol cost of message loss: retransmissions and convergence.

    The reliability layer (acks + retransmission, ``SFlowConfig.loss_rate``)
    must deliver the *same* federation at every loss rate, paying only in
    traffic and virtual time.
    """
    scenario = _scenario(30)
    baseline = SFlowAlgorithm()
    clean_graph = baseline.solve(
        scenario.requirement,
        scenario.overlay,
        source_instance=scenario.source_instance,
    )

    def sweep():
        rows = {}
        for loss in (0.0, 0.2, 0.4):
            algorithm = SFlowAlgorithm(
                SFlowConfig(loss_rate=loss, loss_seed=1, retransmit_timeout=15)
            )
            graph = algorithm.solve(
                scenario.requirement,
                scenario.overlay,
                source_instance=scenario.source_instance,
            )
            assert graph.assignment == clean_graph.assignment
            result = algorithm.last_result
            rows[loss] = {
                "messages": result.messages,
                "retransmissions": result.retransmissions,
                "convergence": result.convergence_time,
            }
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("message loss vs protocol cost (size-30 scenario)")
    print(f"  {'loss':<6}{'messages':>10}{'retx':>7}{'convergence':>13}")
    for loss, row in rows.items():
        print(
            f"  {loss:<6}{row['messages']:>10}{row['retransmissions']:>7}"
            f"{row['convergence']:>13.1f}"
        )
    assert rows[0.0]["retransmissions"] == 0
    assert rows[0.4]["messages"] > rows[0.0]["messages"]
    assert rows[0.4]["convergence"] >= rows[0.0]["convergence"]
