"""Multi-tenancy: how many federations fit, and who packs them better.

"Resource-efficient" under load: tenants arrive sequentially, each
demanding a fixed bandwidth share; every admission reserves capacity along
its realised paths, shrinking the residual overlay for the next tenant.
The table compares the exact reduction solver against the myopic fixed
heuristic as the admission engine -- better path choices pack measurably
more tenants into the same overlay.
"""

import pytest

from repro.core.alternatives import FixedAlgorithm
from repro.core.reductions import ReductionSolver
from repro.core.reservation import ReservationManager
from repro.errors import FederationError
from repro.eval.stats import mean
from repro.services.workloads import ScenarioConfig, generate_scenario

SEEDS = range(6)
DEMAND = 4.0
MAX_TENANTS = 60


def _scenarios():
    return [
        generate_scenario(
            ScenarioConfig(
                network_size=20,
                n_services=5,
                instances_per_service=(3, 4),
                seed=seed,
            )
        )
        for seed in SEEDS
    ]


def _admitted(scenario, solver):
    """(tenants admitted, mean per-tenant bottleneck headroom)."""
    manager = ReservationManager(scenario.overlay, solver=solver)
    count = 0
    headrooms = []
    while count < MAX_TENANTS:
        try:
            admission = manager.admit(
                scenario.requirement,
                demand=DEMAND,
                source_instance=scenario.source_instance,
            )
            headrooms.append(
                admission.flow_graph.bottleneck_bandwidth() / DEMAND
            )
            count += 1
        except FederationError:
            break
    return count, mean(headrooms) if headrooms else 0.0


def test_admission_benchmark(benchmark):
    scenario = _scenarios()[0]

    def admit_ten():
        manager = ReservationManager(scenario.overlay)
        admitted = 0
        for _ in range(10):
            try:
                manager.admit(
                    scenario.requirement,
                    demand=DEMAND,
                    source_instance=scenario.source_instance,
                )
                admitted += 1
            except FederationError:
                break
        return admitted

    admitted = benchmark(admit_ten)
    assert admitted >= 1


def test_packing_comparison_table(benchmark):
    def sweep():
        exact_counts, exact_headroom = [], []
        greedy_counts, greedy_headroom = [], []
        for scenario in _scenarios():
            count, headroom = _admitted(scenario, ReductionSolver())
            exact_counts.append(count)
            exact_headroom.append(headroom)
            count, headroom = _admitted(scenario, FixedAlgorithm())
            greedy_counts.append(count)
            greedy_headroom.append(headroom)
        return (
            mean(exact_counts), mean(exact_headroom),
            mean(greedy_counts), mean(greedy_headroom),
        )

    exact_n, exact_h, greedy_n, greedy_h = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )
    print()
    print(
        f"tenants packed (demand={DEMAND}, mean over {len(list(SEEDS))} "
        f"overlays)"
    )
    print(f"  exact solver   : {exact_n:.1f} tenants, headroom x{exact_h:.2f}")
    print(f"  fixed heuristic: {greedy_n:.1f} tenants, headroom x{greedy_h:.2f}")
    assert exact_n >= 1 and greedy_n >= 1
    # Both pack comparably many tenants (widest-first is itself a decent
    # packing policy); the exact solver never packs meaningfully fewer...
    assert exact_n >= greedy_n - 1.0
    # ...and gives every admitted tenant at least as much quality headroom.
    assert exact_h >= greedy_h - 1e-9
