"""Perf trajectory of the routing kernel, oracle, and parallel campaigns.

This harness is the regression baseline future PRs measure against.  It
times the routing-dominated hot paths and emits a machine-readable
record to ``benchmarks/results/perf_oracle.json``.  Every entry embeds
its measurement context (``cpu_count``, worker count) so a number can
never be read without the hardware that produced it:

* **repeated abstract-graph build**: cold vs. warm construction of the
  same abstract graph (the oracle's bread-and-butter scenario; the warm
  build must be >= 2x faster and the hit rate >= 50%, both asserted);
* **kernel cold build**: the vectorized CSR cold path vs. the pure-Python
  cold path on the same scenario (>= 5x asserted at N >= 200);
* **Fig. 10 sweep** at the configured sizes: end-to-end
  ``run_evaluation`` wall-clock with the oracle enabled vs. disabled,
  tables cross-checked identical;
* **scale probe**: a Fig. 10-style abstract-graph build at N >= 1000
  must complete (the kernel is what makes this size reachable at all);
* **parallel campaign**: the multiprocessing sweep vs. the serial sweep.
  The record tables are checked identical unconditionally; the speedup
  is *asserted* only where the hardware can deliver it (>= 2x needs
  >= 4 cores; 2-3 cores assert a real >1.3x win; single-core runners
  record an explicit skip reason instead of a misleading number).

Scale knobs for CI smoke runs (the full defaults take a few minutes):

    PERF_ORACLE_SIZES=30,40 PERF_ORACLE_TRIALS=1 PERF_ORACLE_SCALE_N=0 \
        pytest benchmarks/test_perf_oracle.py -s
"""

from __future__ import annotations

import dataclasses
import json
import os
import platform
import time
from pathlib import Path
from typing import List, Optional, Tuple

from repro.eval.experiments import EvaluationConfig, TrialRecord, run_evaluation
from repro.routing import kernel
from repro.routing.oracle import RouteOracle
from repro.services.abstract_graph import AbstractGraph
from repro.services.workloads import ScenarioConfig, generate_scenario

RESULTS_PATH = Path(__file__).parent / "results" / "perf_oracle.json"

#: The kernel cold-path gate only binds at sizes where the snapshot cost
#: is amortised; below this the entry is recorded but not asserted.
KERNEL_GATE_MIN_SIZE = 200
KERNEL_GATE_SPEEDUP = 5.0


def _sizes() -> Tuple[int, ...]:
    raw = os.environ.get("PERF_ORACLE_SIZES", "100,200")
    return tuple(int(part) for part in raw.split(",") if part.strip())


def _trials() -> int:
    return int(os.environ.get("PERF_ORACLE_TRIALS", "1"))


def _scale_size() -> int:
    """Network size of the scale probe; 0 disables it (CI smoke)."""
    return int(os.environ.get("PERF_ORACLE_SCALE_N", "1000"))


def _context(workers: int = 0) -> dict:
    """Measurement context embedded in every result entry."""
    return {
        "cpu_count": os.cpu_count(),
        "workers": workers,
        "python": platform.python_version(),
        "kernel_available": kernel.HAVE_NUMPY,
    }


def _config(sizes: Tuple[int, ...], trials: int, *, workers: int = 0) -> EvaluationConfig:
    return EvaluationConfig(
        network_sizes=sizes, trials=trials, n_services=6, seed=0, workers=workers
    )


def _normalized(records: List[TrialRecord]) -> List[TrialRecord]:
    """Zero the only wall-clock field so tables compare bit-for-bit."""
    return [dataclasses.replace(r, elapsed_seconds=0.0) for r in records]


def _timed(fn):
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def _scenario(size: int, config: EvaluationConfig, seed: int = 123):
    return generate_scenario(
        ScenarioConfig(
            network_size=size,
            n_services=config.n_services,
            instances_per_service=config.instance_range(size),
            seed=seed,
        )
    )


def _measure_repeated_build(size: int, trials_config: EvaluationConfig) -> dict:
    """Cold vs. warm abstract-graph build on one representative scenario."""
    scenario = _scenario(size, trials_config)
    oracle = RouteOracle.reset_default()
    cold_graph, cold_seconds = _timed(
        lambda: AbstractGraph.build(scenario.requirement, scenario.overlay)
    )
    # The cold build primed the cache; count only the warm build's lookups.
    oracle.reset_stats()
    warm_graph, warm_seconds = _timed(
        lambda: AbstractGraph.build(scenario.requirement, scenario.overlay)
    )
    stats = oracle.stats()
    assert list(cold_graph.edges()) == list(warm_graph.edges())
    return {
        "network_size": size,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup": cold_seconds / warm_seconds if warm_seconds else float("inf"),
        "hit_rate": stats.hit_rate,
        "hits": stats.hits,
        "misses": stats.misses,
        "context": _context(),
    }


def _measure_kernel_cold_build(size: int, trials_config: EvaluationConfig) -> dict:
    """Vectorized CSR cold path vs. the pure-Python cold path.

    Both arms run a from-scratch abstract-graph build on a fresh oracle;
    the only difference is ``use_kernel``.  The graphs are checked
    identical edge-for-edge -- the kernel is a cost switch, never a
    result switch.
    """
    scenario = _scenario(size, trials_config)
    oracle = RouteOracle.reset_default()
    oracle.use_kernel = False
    pure_graph, pure_seconds = _timed(
        lambda: AbstractGraph.build(scenario.requirement, scenario.overlay)
    )
    RouteOracle.reset_default()  # kernel on by default
    kernel_graph, kernel_seconds = _timed(
        lambda: AbstractGraph.build(scenario.requirement, scenario.overlay)
    )
    assert list(pure_graph.edges()) == list(kernel_graph.edges())
    return {
        "network_size": size,
        "pure_cold_seconds": pure_seconds,
        "kernel_cold_seconds": kernel_seconds,
        "speedup": pure_seconds / kernel_seconds if kernel_seconds else float("inf"),
        "gate_applies": size >= KERNEL_GATE_MIN_SIZE and kernel.HAVE_NUMPY,
        "context": _context(),
    }


def _measure_scale(size: int, trials_config: EvaluationConfig) -> dict:
    """Fig. 10-style build at campaign scale: it must simply *complete*.

    At N >= 1000 the pure cold path is prohibitive; the batched kernel
    is what brings the abstract-graph build into interactive range.  The
    probe times scenario generation (overlay build, also kernel-served)
    and the abstract-graph build separately.
    """
    scenario, generate_seconds = _timed(lambda: _scenario(size, trials_config))
    oracle = RouteOracle.reset_default()
    graph, build_seconds = _timed(
        lambda: AbstractGraph.build(scenario.requirement, scenario.overlay)
    )
    stats = oracle.stats()
    return {
        "network_size": size,
        "instances": len(scenario.overlay),
        "overlay_links": scenario.overlay.num_links(),
        "abstract_edges": graph.num_edges(),
        "generate_seconds": generate_seconds,
        "build_seconds": build_seconds,
        "warmed_trees": stats.warmed,
        "completed": True,
        "context": _context(),
    }


def _measure_sweep(size: int, trials: int) -> Tuple[dict, List[TrialRecord]]:
    """One Fig. 10 sweep size: oracle on vs. off, tables cross-checked."""
    config = _config((size,), trials)
    oracle = RouteOracle.reset_default()
    on_records, on_seconds = _timed(lambda: run_evaluation(config))
    on_stats = oracle.stats()
    oracle.clear()
    oracle.enabled = False
    try:
        off_records, off_seconds = _timed(lambda: run_evaluation(config))
    finally:
        oracle.enabled = True
    # The oracle must be invisible in the results: same tables either way.
    assert _normalized(off_records) == _normalized(on_records)
    return (
        {
            "network_size": size,
            "trials": trials,
            "oracle_on_seconds": on_seconds,
            "oracle_off_seconds": off_seconds,
            "speedup": off_seconds / on_seconds if on_seconds else float("inf"),
            "hit_rate": on_stats.hit_rate,
            "hits": on_stats.hits,
            "misses": on_stats.misses,
            "records": len(on_records),
            "context": _context(),
        },
        on_records,
    )


def _parallel_gate(cpu_count: int, workers: int) -> Tuple[Optional[float], Optional[str]]:
    """The speedup threshold the hardware can honestly deliver.

    Returns ``(threshold, skip_reason)``; exactly one is set.  A whole-
    campaign wall-clock speedup is bounded by the worker count, so the
    >= 2x gate needs headroom (>= 4 cores); 2-3 cores assert a real
    multi-core win (> 1.3x); below 2 cores there is nothing to measure
    and the entry records why instead of a misleading number.
    """
    if cpu_count < 2:
        return None, (
            f"only {cpu_count} CPU core(s) available; multi-core speedup "
            "assertion skipped (a 1-core 'speedup' would be noise)"
        )
    if workers >= 4:
        return 2.0, None
    return 1.3, None


def test_perf_oracle_trajectory():
    sizes = _sizes()
    trials = _trials()
    cpu_count = os.cpu_count() or 1

    build = _measure_repeated_build(max(sizes), _config(sizes, trials))
    kernel_build = _measure_kernel_cold_build(max(sizes), _config(sizes, trials))

    sweeps = []
    serial_records: List[TrialRecord] = []
    serial_seconds = 0.0
    for size in sizes:
        sweep, records = _measure_sweep(size, trials)
        sweeps.append(sweep)
        serial_records.extend(records)
        serial_seconds += sweep["oracle_on_seconds"]

    scale_size = _scale_size()
    scale = (
        _measure_scale(scale_size, _config((scale_size,), 1))
        if scale_size
        else None
    )

    # Parallel campaign over all sizes at once.  Per-size serial sweeps
    # concatenate to the combined table (cell seeds depend only on
    # (config.seed, size, trial)), so the per-size runs above double as
    # the serial reference.
    workers = min(max(2, cpu_count), 8)
    RouteOracle.reset_default()
    parallel_records, parallel_seconds = _timed(
        lambda: run_evaluation(_config(sizes, trials, workers=workers))
    )
    identical = _normalized(parallel_records) == _normalized(serial_records)
    threshold, skip_reason = _parallel_gate(cpu_count, workers)
    parallel_speedup = (
        serial_seconds / parallel_seconds if parallel_seconds else 0.0
    )

    record = {
        "harness": "benchmarks/test_perf_oracle.py",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "cpu_count": cpu_count,
        "config": {"network_sizes": list(sizes), "trials": trials, "seed": 0},
        "repeated_abstract_graph_build": build,
        "kernel_cold_build": kernel_build,
        "fig10_sweeps": sweeps,
        "scale_probe": scale,
        "parallel_campaign": {
            "workers": workers,
            "serial_seconds": serial_seconds,
            "parallel_seconds": parallel_seconds,
            "speedup": parallel_speedup if threshold is not None else None,
            "speedup_threshold": threshold,
            "speedup_skip_reason": skip_reason,
            "records_identical_to_serial": identical,
            "context": _context(workers),
        },
    }
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print()
    print(json.dumps(record, indent=2))
    print(f"  -> {RESULTS_PATH}")

    # Regression gates (also the CI smoke-job gates).
    assert identical, "parallel sweep diverged from the serial table"
    assert build["speedup"] >= 2.0, (
        f"warm abstract-graph build only {build['speedup']:.1f}x faster"
    )
    assert build["hit_rate"] >= 0.5, (
        f"repeated-build hit rate {build['hit_rate']:.0%} below 50%"
    )
    if kernel_build["gate_applies"]:
        assert kernel_build["speedup"] >= KERNEL_GATE_SPEEDUP, (
            f"kernel cold build only {kernel_build['speedup']:.1f}x faster "
            f"than the pure cold path at N={kernel_build['network_size']}"
        )
    for sweep in sweeps:
        assert sweep["speedup"] > 1.0, (
            f"oracle made the N={sweep['network_size']} sweep slower"
        )
    if scale is not None:
        assert scale["completed"], "scale probe did not complete"
    if threshold is not None:
        assert parallel_speedup >= threshold, (
            f"parallel campaign only {parallel_speedup:.2f}x with "
            f"{workers} workers on {cpu_count} cores "
            f"(threshold {threshold}x)"
        )
    else:
        print(f"  multi-core speedup assertion skipped: {skip_reason}")
