"""Perf trajectory of the route oracle + parallel evaluation campaigns.

This harness is the regression baseline future PRs measure against.  It
times the routing-dominated hot paths three ways -- oracle off (the old
recompute-from-scratch behaviour), oracle on cold, oracle on warm -- and
emits a machine-readable record to ``benchmarks/results/perf_oracle.json``:

* **repeated abstract-graph build**: cold vs. warm construction of the
  same abstract graph (the oracle's bread-and-butter scenario; the warm
  build must be >= 2x faster and the hit rate >= 50%, both asserted);
* **Fig. 10 sweep at N=100/200**: end-to-end ``run_evaluation`` wall-clock
  with the oracle enabled vs. disabled, plus cache hit rates (N=200 is
  where the ``O(N^4)`` Table 1 step dominates -- expect order-of-magnitude
  wins);
* **parallel campaign**: the multiprocessing sweep vs. the serial sweep,
  with the record tables checked identical (wall-clock timing fields
  normalised).

Scale knobs for CI smoke runs (the full defaults take a few minutes):

    PERF_ORACLE_SIZES=30,40 PERF_ORACLE_TRIALS=1 \
        pytest benchmarks/test_perf_oracle.py -s
"""

from __future__ import annotations

import dataclasses
import json
import os
import platform
import time
from pathlib import Path
from typing import List, Tuple

from repro.eval.experiments import EvaluationConfig, TrialRecord, run_evaluation
from repro.routing.oracle import RouteOracle
from repro.services.abstract_graph import AbstractGraph
from repro.services.workloads import ScenarioConfig, generate_scenario

RESULTS_PATH = Path(__file__).parent / "results" / "perf_oracle.json"


def _sizes() -> Tuple[int, ...]:
    raw = os.environ.get("PERF_ORACLE_SIZES", "100,200")
    return tuple(int(part) for part in raw.split(",") if part.strip())


def _trials() -> int:
    return int(os.environ.get("PERF_ORACLE_TRIALS", "1"))


def _config(sizes: Tuple[int, ...], trials: int, *, workers: int = 0) -> EvaluationConfig:
    return EvaluationConfig(
        network_sizes=sizes, trials=trials, n_services=6, seed=0, workers=workers
    )


def _normalized(records: List[TrialRecord]) -> List[TrialRecord]:
    """Zero the only wall-clock field so tables compare bit-for-bit."""
    return [dataclasses.replace(r, elapsed_seconds=0.0) for r in records]


def _timed(fn):
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def _measure_repeated_build(size: int, trials_config: EvaluationConfig) -> dict:
    """Cold vs. warm abstract-graph build on one representative scenario."""
    scenario = generate_scenario(
        ScenarioConfig(
            network_size=size,
            n_services=trials_config.n_services,
            instances_per_service=trials_config.instance_range(size),
            seed=123,
        )
    )
    oracle = RouteOracle.reset_default()
    cold_graph, cold_seconds = _timed(
        lambda: AbstractGraph.build(scenario.requirement, scenario.overlay)
    )
    # The cold build primed the cache; count only the warm build's lookups.
    oracle.reset_stats()
    warm_graph, warm_seconds = _timed(
        lambda: AbstractGraph.build(scenario.requirement, scenario.overlay)
    )
    stats = oracle.stats()
    assert list(cold_graph.edges()) == list(warm_graph.edges())
    return {
        "network_size": size,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup": cold_seconds / warm_seconds if warm_seconds else float("inf"),
        "hit_rate": stats.hit_rate,
        "hits": stats.hits,
        "misses": stats.misses,
    }


def _measure_sweep(size: int, trials: int) -> Tuple[dict, List[TrialRecord]]:
    """One Fig. 10 sweep size: oracle on vs. off, tables cross-checked."""
    config = _config((size,), trials)
    oracle = RouteOracle.reset_default()
    on_records, on_seconds = _timed(lambda: run_evaluation(config))
    on_stats = oracle.stats()
    oracle.clear()
    oracle.enabled = False
    try:
        off_records, off_seconds = _timed(lambda: run_evaluation(config))
    finally:
        oracle.enabled = True
    # The oracle must be invisible in the results: same tables either way.
    assert _normalized(off_records) == _normalized(on_records)
    return (
        {
            "network_size": size,
            "trials": trials,
            "oracle_on_seconds": on_seconds,
            "oracle_off_seconds": off_seconds,
            "speedup": off_seconds / on_seconds if on_seconds else float("inf"),
            "hit_rate": on_stats.hit_rate,
            "hits": on_stats.hits,
            "misses": on_stats.misses,
            "records": len(on_records),
        },
        on_records,
    )


def test_perf_oracle_trajectory():
    sizes = _sizes()
    trials = _trials()

    build = _measure_repeated_build(max(sizes), _config(sizes, trials))

    sweeps = []
    serial_records: List[TrialRecord] = []
    serial_seconds = 0.0
    for size in sizes:
        sweep, records = _measure_sweep(size, trials)
        sweeps.append(sweep)
        serial_records.extend(records)
        serial_seconds += sweep["oracle_on_seconds"]

    # Parallel campaign over all sizes at once.  Per-size serial sweeps
    # concatenate to the combined table (cell seeds depend only on
    # (config.seed, size, trial)), so the per-size runs above double as
    # the serial reference.
    RouteOracle.reset_default()
    parallel_records, parallel_seconds = _timed(
        lambda: run_evaluation(_config(sizes, trials, workers=2))
    )
    identical = _normalized(parallel_records) == _normalized(serial_records)

    record = {
        "harness": "benchmarks/test_perf_oracle.py",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "config": {"network_sizes": list(sizes), "trials": trials, "seed": 0},
        "repeated_abstract_graph_build": build,
        "fig10_sweeps": sweeps,
        "parallel_campaign": {
            "workers": 2,
            "serial_seconds": serial_seconds,
            "parallel_seconds": parallel_seconds,
            "speedup": (
                serial_seconds / parallel_seconds if parallel_seconds else 0.0
            ),
            "records_identical_to_serial": identical,
        },
    }
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print()
    print(json.dumps(record, indent=2))
    print(f"  -> {RESULTS_PATH}")

    # Regression gates (also the CI smoke-job gates).
    assert identical, "parallel sweep diverged from the serial table"
    assert build["speedup"] >= 2.0, (
        f"warm abstract-graph build only {build['speedup']:.1f}x faster"
    )
    assert build["hit_rate"] >= 0.5, (
        f"repeated-build hit rate {build['hit_rate']:.0%} below 50%"
    )
    for sweep in sweeps:
        assert sweep["speedup"] > 1.0, (
            f"oracle made the N={sweep['network_size']} sweep slower"
        )
