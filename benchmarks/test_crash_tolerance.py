"""Crash tolerance: federation success under mid-protocol crash-stop chaos.

Beyond the paper's Fig. 10 panels: the "agile" claim stress-tested while
the sfederate protocol is still running.  The regenerated table reports the
federation success rate per (network size, crash rate) cell; the printed
summary adds quality degradation and recovery overhead (extra messages,
extra virtual time) for the surviving runs.

Benchmarked computation: one disturbed federation run (seeded chaos plan,
failover + bounded re-federation) on the representative scenario.
"""

import random

import pytest

from repro.core.sflow import SFlowAlgorithm
from repro.eval.figures import fig_robustness
from repro.eval.robustness import (
    RobustnessConfig,
    run_robustness,
    summarize,
)
from repro.network.failures import FailureInjector

from .conftest import emit

#: Kept lighter than the Fig. 10 sweeps: every cell runs the federation
#: twice (baseline + chaos) and recovery adds virtual (not wall-clock) time,
#: but suspicion timeouts make disturbed runs individually slower.
ROBUSTNESS_CONFIG = RobustnessConfig(
    network_sizes=(10, 20, 30),
    crash_rates=(0.0, 0.1, 0.2, 0.3),
    trials=8,
    n_services=5,
    seed=0,
)


@pytest.fixture(scope="module")
def robustness_records():
    return run_robustness(ROBUSTNESS_CONFIG)


def test_single_chaotic_run_benchmark(benchmark, bench_scenario):
    """Time one disturbed federation (20% of instances crash mid-run)."""
    config = ROBUSTNESS_CONFIG.protocol_config()
    injector = FailureInjector(
        random.Random(99), protect=[bench_scenario.source_instance]
    )
    # Tight window: every crash lands while the protocol is still running.
    chaos = injector.chaos_plan(
        bench_scenario.overlay,
        crash_rate=0.2,
        window=5.0,
        seed=99,
    )

    def run():
        return SFlowAlgorithm(config).federate(
            bench_scenario.requirement,
            bench_scenario.overlay,
            source_instance=bench_scenario.source_instance,
            chaos=chaos,
        )

    result = benchmark(run)
    assert result.crashes > 0


def test_crash_tolerance_regenerate(benchmark, robustness_records):
    """Regenerate the crash-tolerance panel and assert its shape."""
    table = benchmark.pedantic(
        fig_robustness,
        args=(ROBUSTNESS_CONFIG,),
        kwargs={"records": robustness_records},
        rounds=1,
        iterations=1,
    )
    emit(table)

    cells = summarize(robustness_records)
    print()
    print("crash tolerance: recovery cost of the surviving runs")
    print(
        f"  {'size':<6}{'crash':<7}{'success':>8}{'bw-degr':>9}"
        f"{'+msgs':>7}{'+vtime':>8}{'failovers':>11}{'refeds':>8}"
    )
    for cell in cells:
        print(
            f"  {cell.network_size:<6}{cell.crash_rate:<7}"
            f"{cell.success_rate:>8.2f}{cell.mean_bandwidth_degradation:>9.2f}"
            f"{cell.mean_extra_messages:>7.1f}{cell.mean_extra_time:>8.1f}"
            f"{cell.mean_failovers:>11.2f}{cell.mean_refederations:>8.2f}"
        )

    # Crash rate 0 must reproduce the crash-free runs bit-for-bit.
    for cell in cells:
        if cell.crash_rate == 0.0:
            assert cell.success_rate == 1.0
            assert cell.all_identical_to_baseline
    # Failover + re-federation keep the protocol mostly alive under chaos
    # (keep_service_alive guarantees an alternative instance exists).
    by_rate = {}
    for cell in cells:
        by_rate.setdefault(cell.crash_rate, []).append(cell.success_rate)
    mean = lambda xs: sum(xs) / len(xs)
    for rate, rates in by_rate.items():
        if rate > 0.0:
            assert mean(rates) >= 0.6, (rate, rates)
    # Surviving recovery is visible as overhead somewhere in the sweep.
    assert any(
        cell.mean_extra_messages > 0 for cell in cells if cell.crash_rate > 0
    )
