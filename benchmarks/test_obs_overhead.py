"""Overhead budget of the observability layer's disabled fast path.

The tracing instrumentation lives inline in hot protocol paths (per-node
activation, the recovery log, every supervised send, the transport's
causal msg_id stamping), so the contract of :mod:`repro.obs.trace` -- *no
sink attached means no measurable work* -- is load-bearing.  This harness
holds it to numbers:

* **micro**: a ``NULL_SPAN`` event call must cost within a small multiple
  of a no-op function call (it is one attribute lookup + early return);
* **macro**: a full federation with tracing disabled must run within noise
  of the same federation before instrumentation existed -- approximated by
  comparing against itself with a recorder attached, which must not be
  *faster* than the disabled run;
* **transport**: with no trace span attached, ``MessageNetwork.send``
  must not pay for causal stamping (one attribute load + bool test; no
  msg_id allocation, no event dict).

Every test also appends its numbers to
``benchmarks/results/BENCH_obs.json`` (via the shared
``conftest.write_bench_record`` helper), so the overhead trajectory is
trackable across PRs.

Run: pytest benchmarks/test_obs_overhead.py -s
"""

from __future__ import annotations

import io
import time

from repro.core.sflow import SFlowAlgorithm, SFlowConfig
from repro.obs import recording
from repro.obs.trace import NULL_SPAN, SimClock, tracer
from repro.services.workloads import ScenarioConfig, generate_scenario
from repro.sim.engine import Environment
from repro.sim.channels import MessageNetwork

BENCH_FILE = "BENCH_obs.json"


def _noop() -> None:
    return None


def _time(fn, n: int) -> float:
    started = time.perf_counter()
    for _ in range(n):
        fn()
    return time.perf_counter() - started


def test_null_span_is_within_noise_of_a_noop(bench_record):
    """Disabled-path event emission costs like a plain function call."""
    assert not tracer().enabled
    n = 200_000
    # Warm-up, then best-of-5 to shed scheduler noise.
    _time(_noop, n)

    def disabled_event() -> None:
        NULL_SPAN.event("x")

    noop = min(_time(_noop, n) for _ in range(5))
    nulled = min(_time(disabled_event, n) for _ in range(5))
    per_call_ns = (nulled / n) * 1e9
    print(
        f"\n  no-op: {noop / n * 1e9:.1f} ns/call, "
        f"NULL_SPAN.event: {per_call_ns:.1f} ns/call"
    )
    bench_record(
        BENCH_FILE,
        "null_span_micro",
        {
            "calls": n,
            "noop_ns_per_call": noop / n * 1e9,
            "null_span_event_ns_per_call": per_call_ns,
        },
    )
    # A generous ceiling (method dispatch + kwargs packing); the point is
    # to fail if someone adds clock reads or dict building to the off path.
    assert nulled < max(noop * 20, n * 500e-9)


def test_disabled_tracing_adds_no_measurable_federation_overhead(bench_record):
    """Macro check: recording on vs. off on the same federation runs."""
    scenario = generate_scenario(
        ScenarioConfig(network_size=30, n_services=6, seed=11)
    )
    config = SFlowConfig()

    def federate() -> None:
        SFlowAlgorithm(config).federate(
            scenario.requirement,
            scenario.overlay,
            source_instance=scenario.source_instance,
        )

    federate()  # warm caches (route oracle, imports)
    rounds = 5
    assert not tracer().enabled
    disabled = min(_time(federate, 1) for _ in range(rounds))
    sink = io.StringIO()
    with recording(sink):
        assert tracer().enabled
        enabled = min(_time(federate, 1) for _ in range(rounds))
    print(
        f"\n  federation: disabled {disabled * 1e3:.2f} ms, "
        f"recording {enabled * 1e3:.2f} ms"
    )
    bench_record(
        BENCH_FILE,
        "federation_macro",
        {
            "disabled_ms": disabled * 1e3,
            "recording_ms": enabled * 1e3,
        },
    )
    # The disabled run must not be slower than actually recording JSONL --
    # i.e. the off switch really is the fast path (3x guards CI jitter on
    # a measurement that should favour `disabled` by construction).
    assert disabled < enabled * 3


def test_disabled_channel_stamping_costs_nothing(bench_record):
    """The transport's causal stamping inherits the off-switch contract.

    With no trace span attached, every send skips msg_id allocation and
    event emission entirely (``Envelope.mid`` stays 0); that path must
    not be slower than the same sends with a live recorder span attached,
    which pays for two event dicts per message.
    """
    n = 2_000

    def send_batch(span) -> float:
        env = Environment()
        network = MessageNetwork(env)
        network.register("a")
        network.register("b")
        if span is not None:
            network.set_trace_span(span)
        started = time.perf_counter()
        for _ in range(n):
            network.send("a", "b", payload=None)
        elapsed = time.perf_counter() - started
        # Stamping contract: msg_ids only exist while a span is attached.
        envelope = network.send("a", "b", payload=None)
        assert (envelope.mid > 0) == (span is not None)
        return elapsed

    assert not tracer().enabled
    send_batch(None)  # warm-up
    rounds = 5
    disabled = min(send_batch(None) for _ in range(rounds))
    sink = io.StringIO()
    with recording(sink):
        session = tracer().session(
            "bench.channel", clock=SimClock(Environment())
        )
        enabled = min(send_batch(session) for _ in range(rounds))
        session.end()
    print(
        f"\n  {n} sends: unstamped {disabled * 1e3:.2f} ms, "
        f"stamped {enabled * 1e3:.2f} ms"
    )
    bench_record(
        BENCH_FILE,
        "channel_stamping_micro",
        {
            "sends": n,
            "unstamped_ms": disabled * 1e3,
            "stamped_ms": enabled * 1e3,
        },
    )
    assert disabled < enabled * 3


def test_disabled_sampler_adds_no_measurable_federation_overhead(bench_record):
    """The series pipeline inherits the same off-switch contract.

    ``SFlowConfig.sample_interval=None`` (the default) must spawn no
    sampler process and perturb nothing -- held to the same macro budget
    as the tracing off switch: the unsampled run must not be slower than
    the run that actually scrapes series every sim-time unit.
    """
    scenario = generate_scenario(
        ScenarioConfig(network_size=30, n_services=6, seed=11)
    )

    def federate(config: SFlowConfig):
        def run() -> None:
            SFlowAlgorithm(config).federate(
                scenario.requirement,
                scenario.overlay,
                source_instance=scenario.source_instance,
            )

        return run

    unsampled = federate(SFlowConfig())
    sampled = federate(SFlowConfig(sample_interval=1.0))
    unsampled()  # warm caches (route oracle, imports)
    rounds = 5
    off = min(_time(unsampled, 1) for _ in range(rounds))
    on = min(_time(sampled, 1) for _ in range(rounds))
    print(
        f"\n  federation: unsampled {off * 1e3:.2f} ms, "
        f"sampled {on * 1e3:.2f} ms"
    )
    bench_record(
        BENCH_FILE,
        "sampler_macro",
        {
            "unsampled_ms": off * 1e3,
            "sampled_ms": on * 1e3,
        },
    )
    assert off < on * 3
