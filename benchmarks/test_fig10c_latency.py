"""Fig. 10(c): end-to-end latency vs network size.

Paper's finding: sFlow delivers the lowest latency; the fixed and random
controls trail it; the single-service-path system is superseded because it
"fails to consider the parallel processing cases" -- its delivery is
serialized, paying every hop in sequence.

Benchmarked computation: the full simulated sFlow federation (message
passing on the DES), whose virtual convergence time equals the flow
graph's critical-path latency.
"""

import pytest

from repro.core.sflow import SFlowAlgorithm
from repro.eval.figures import fig10c

from .conftest import emit


def test_fig10c_federation_benchmark(benchmark, bench_scenario):
    def federate():
        algorithm = SFlowAlgorithm()
        return algorithm.federate(
            bench_scenario.requirement,
            bench_scenario.overlay,
            source_instance=bench_scenario.source_instance,
        )

    result = benchmark(federate)
    assert result.flow_graph.is_complete()
    assert result.convergence_time > 0


def test_fig10c_regenerate(benchmark, sweep_config, mixed_records):
    table = benchmark.pedantic(
        fig10c, args=(sweep_config,), kwargs={"records": mixed_records},
        rounds=1, iterations=1,
    )
    emit(table)
    mean = lambda xs: sum(xs) / len(xs)
    # Sweep-wide ordering: sFlow delivers the lowest latency.  (Per-size
    # cells carry finite-trial noise; on PATH-class draws the service-path
    # system coincides with the optimal chain, pulling its mean down.)
    assert mean(table.series["sflow"]) < mean(table.series["fixed"])
    assert mean(table.series["sflow"]) < mean(table.series["random"])
    assert mean(table.series["sflow"]) < mean(table.series["service_path"])
    # Per-size, sFlow stays within noise of the best control.
    for i in range(len(table.sizes)):
        best_control = min(
            table.series["fixed"][i],
            table.series["random"][i],
            table.series["service_path"][i],
        )
        assert table.series["sflow"][i] <= best_control * 1.15
