"""Shared fixtures for the benchmark/figure-regeneration harness.

Each ``benchmarks/test_fig10*.py`` module does two things:

1. **benchmark** the computation the panel measures (via pytest-benchmark),
2. **regenerate** the panel's data series and print it (run with ``-s`` to
   see the tables inline; CSVs land in ``benchmarks/results/``).

The full sweeps are session-cached so the four panels share one evaluation
run, exactly like the paper's single simulation campaign.  Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import pytest

from repro.eval.experiments import (
    EvaluationConfig,
    run_evaluation,
    run_scalability,
)
from repro.eval.figures import FigureTable, format_table, write_csv
from repro.services.workloads import ScenarioConfig, generate_scenario

#: The paper's network sizes; trials balance statistical stability of the
#: regenerated panels against total benchmark runtime (a few minutes).
SWEEP_CONFIG = EvaluationConfig(
    network_sizes=(10, 20, 30, 40, 50),
    trials=12,
    n_services=6,
    seed=0,
)

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def sweep_config() -> EvaluationConfig:
    return SWEEP_CONFIG


@pytest.fixture(scope="session")
def mixed_records(sweep_config):
    """The mixed-requirement sweep shared by Fig. 10(a)/(c)/(d)."""
    return run_evaluation(sweep_config)


@pytest.fixture(scope="session")
def path_records(sweep_config):
    """The path-requirement sweep of Fig. 10(b)."""
    return run_scalability(sweep_config)


@pytest.fixture(scope="session")
def bench_scenario():
    """A representative mid-sweep scenario (size 30) for micro-benchmarks."""
    config = SWEEP_CONFIG
    return generate_scenario(
        ScenarioConfig(
            network_size=30,
            n_services=config.n_services,
            instances_per_service=config.instance_range(30),
            seed=123,
        )
    )


@pytest.fixture(scope="session")
def path_scenario():
    """A size-30 path-requirement scenario (the Fig. 10(b) regime)."""
    from repro.services.requirement import RequirementClass

    config = SWEEP_CONFIG
    return generate_scenario(
        ScenarioConfig(
            network_size=30,
            n_services=config.n_services,
            requirement_class=RequirementClass.PATH,
            instances_per_service=config.instance_range(30),
            seed=123,
        )
    )


def emit(table: FigureTable) -> None:
    """Print a regenerated panel and persist its CSV."""
    print()
    print(format_table(table))
    path = write_csv(table, RESULTS_DIR)
    print(f"  -> {path}")


def write_bench_record(filename: str, section: str, payload: dict) -> Path:
    """Merge one benchmark's numbers into a JSON record under results/.

    Machine-readable counterpart of the ``-s`` console tables, so the perf
    trajectory is trackable across PRs (``perf_oracle.json`` set the
    pattern).  Each test owns one ``section``: a partial run (``-k``)
    updates only what it measured, while the shared metadata (python, cpu,
    timestamp) refreshes on every write.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / filename
    record: dict = {}
    if path.exists():
        try:
            record = json.loads(path.read_text())
        except ValueError:
            record = {}
    record["generated_at"] = time.strftime(
        "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
    )
    record["python"] = platform.python_version()
    record["cpu_count"] = os.cpu_count()
    record[section] = payload
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


@pytest.fixture
def bench_record():
    """The :func:`write_bench_record` helper, as a fixture."""
    return write_bench_record
