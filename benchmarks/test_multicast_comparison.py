"""Related-work comparison: service multicast trees vs sFlow's DAGs.

The paper motivates service flow graphs as the generalisation of service
multicast trees (Jin & Nahrstedt).  This benchmark quantifies the claim:
on TREE-shaped requirements the path-merging tree heuristic is competitive;
on general DAG requirements its greedy merging and dropped edges cost real
bandwidth against both sFlow and the exact optimum.
"""

import pytest

from repro.core.multicast import ServiceTreeAlgorithm
from repro.core.optimal import optimal_flow_graph
from repro.core.sflow import SFlowAlgorithm
from repro.eval.stats import mean
from repro.services.requirement import RequirementClass
from repro.services.workloads import ScenarioConfig, generate_scenario

SEEDS = range(8)


def _scenarios(clazz):
    return [
        generate_scenario(
            ScenarioConfig(
                network_size=20,
                n_services=6,
                requirement_class=clazz,
                instances_per_service=(3, 4),
                seed=seed,
            )
        )
        for seed in SEEDS
    ]


def _bandwidth_ratios(clazz):
    tree_ratio, sflow_ratio = [], []
    for scenario in _scenarios(clazz):
        optimal = optimal_flow_graph(
            scenario.requirement,
            scenario.overlay,
            source_instance=scenario.source_instance,
        )
        tree = ServiceTreeAlgorithm().solve(
            scenario.requirement,
            scenario.overlay,
            source_instance=scenario.source_instance,
        )
        sflow = SFlowAlgorithm().solve(
            scenario.requirement,
            scenario.overlay,
            source_instance=scenario.source_instance,
        )
        base = optimal.bottleneck_bandwidth()
        tree_ratio.append(tree.bottleneck_bandwidth() / base)
        sflow_ratio.append(sflow.bottleneck_bandwidth() / base)
    return mean(tree_ratio), mean(sflow_ratio)


def test_service_tree_benchmark(benchmark):
    scenario = _scenarios(RequirementClass.TREE)[0]
    algorithm = ServiceTreeAlgorithm()
    graph = benchmark(
        algorithm.solve,
        scenario.requirement,
        scenario.overlay,
        source_instance=scenario.source_instance,
    )
    assert graph.is_complete()


def test_tree_vs_sflow_table(benchmark):
    def sweep():
        return {
            clazz.value: _bandwidth_ratios(clazz)
            for clazz in (
                RequirementClass.TREE,
                RequirementClass.SPLIT_MERGE,
                RequirementClass.GENERAL,
            )
        }

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("bandwidth / optimal: service multicast tree vs sFlow")
    print(f"  {'class':<14}{'tree':>8}{'sflow':>8}")
    for clazz, (tree, sflow) in table.items():
        print(f"  {clazz:<14}{tree:>8.3f}{sflow:>8.3f}")
    # On its home turf the tree heuristic is competitive (may even edge out
    # the horizon-limited distributed sFlow slightly)...
    assert table["tree"][0] >= 0.75
    assert table["tree"][1] >= table["tree"][0] - 0.05
    # ...but on requirements that actually split and merge, sFlow wins
    # decisively -- the paper's motivation for going beyond trees.
    for clazz in ("split_merge", "general"):
        assert table[clazz][1] >= table[clazz][0]
    dag_tree = mean([table["split_merge"][0], table["general"][0]])
    dag_sflow = mean([table["split_merge"][1], table["general"][1]])
    assert dag_sflow > dag_tree + 0.03
