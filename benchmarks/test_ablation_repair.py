"""Ablation: incremental repair vs. from-scratch re-federation.

Quantifies the "agile" half of the paper's title: after killing service
instances under an established federation, incremental repair

* touches only the broken neighbourhood (high preserved fraction),
* runs faster than a full re-federation, and
* stays within a small quality factor of the from-scratch optimum.
"""

import random

import pytest

from repro.core.reductions import ReductionSolver
from repro.core.repair import repair_flow_graph
from repro.eval.stats import mean
from repro.network.failures import FailureInjector
from repro.services.workloads import ScenarioConfig, generate_scenario

SEEDS = range(8)


def _cases(kill: int):
    """(pre-failure graph, post-failure overlay, scenario) triples."""
    cases = []
    for seed in SEEDS:
        scenario = generate_scenario(
            ScenarioConfig(
                network_size=24,
                n_services=6,
                instances_per_service=(3, 4),
                seed=seed,
            )
        )
        graph = ReductionSolver().solve(
            scenario.requirement,
            scenario.overlay,
            source_instance=scenario.source_instance,
        )
        injector = FailureInjector(
            random.Random(seed), protect=[scenario.source_instance]
        )
        plan = injector.instance_failures(scenario.overlay, count=kill)
        cases.append((graph, plan.apply(scenario.overlay), scenario))
    return cases


def test_repair_benchmark(benchmark):
    graph, after, scenario = _cases(kill=2)[0]
    report = benchmark(repair_flow_graph, graph, after)
    assert report.graph.is_complete()


def test_refederation_benchmark(benchmark):
    _graph, after, scenario = _cases(kill=2)[0]
    solver = ReductionSolver()
    fresh = benchmark(
        solver.solve,
        scenario.requirement,
        after,
        source_instance=scenario.source_instance,
    )
    assert fresh.is_complete()


@pytest.mark.parametrize("kill", [1, 2, 4])
def test_repair_locality_and_quality(benchmark, kill):
    def sweep():
        preserved, ratios, full = [], [], 0
        for graph, after, scenario in _cases(kill):
            report = repair_flow_graph(graph, after)
            fresh = ReductionSolver().solve(
                scenario.requirement,
                after,
                source_instance=scenario.source_instance,
            )
            preserved.append(report.preserved_fraction)
            ratios.append(
                report.graph.bottleneck_bandwidth()
                / fresh.bottleneck_bandwidth()
            )
            full += report.full_refederation
        return mean(preserved), mean(ratios), full

    preserved, ratio, full = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(
        f"\nrepair after {kill} failures: preserved={preserved:.2f}, "
        f"bandwidth vs fresh={ratio:.2f}, full re-federations={full}/{len(list(SEEDS))}"
    )
    # Repair is local: most surviving assignments stay put.
    assert preserved >= 0.8
    # And the quality cost of locality stays bounded.
    assert ratio >= 0.75
