"""Multi-tenant federation with bandwidth reservation.

"Resource-efficient" matters most when federations *share* the overlay: a
flow graph that hogs wide links leaves less for the next consumer.  This
module adds admission control on top of any federation algorithm:

* a :class:`ReservationManager` owns the **residual overlay** -- link
  capacities minus everything already reserved;
* :meth:`~ReservationManager.admit` federates a new requirement on the
  residual overlay and, if the result sustains the requested ``demand``
  (its bottleneck bandwidth covers it), reserves that demand on **every
  overlay link its realised paths traverse** (once per traversal -- two
  streams of one federation crossing the same link reserve it twice);
* :meth:`~ReservationManager.release` returns a tenant's capacity, so
  churn in tenants composes with churn in the overlay.

Links reserved down to (or below) zero capacity disappear from the
residual overlay, which is exactly how later tenants get pushed onto
alternative instances -- the load-spreading behaviour quantified in
``benchmarks/test_multitenancy.py``.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.reductions import ReductionSolver
from repro.errors import FederationError
from repro.network.metrics import PathQuality
from repro.network.overlay import OverlayGraph, ServiceInstance
from repro.services.flowgraph import ServiceFlowGraph
from repro.services.requirement import ServiceRequirement

#: A directed overlay link, identified by its endpoints.
LinkKey = Tuple[ServiceInstance, ServiceInstance]


@dataclass
class Admission:
    """One tenant's admitted federation and its reservation."""

    ticket: int
    requirement: ServiceRequirement
    flow_graph: ServiceFlowGraph
    demand: float
    #: Reserved units per overlay link (with traversal multiplicity).
    reservations: Dict[LinkKey, float] = field(default_factory=dict)


class ReservationManager:
    """Admission control over a shared service overlay."""

    def __init__(
        self,
        overlay: OverlayGraph,
        *,
        solver=None,
    ) -> None:
        self._base = overlay
        self._overlay = overlay
        self._solver = solver or ReductionSolver()
        self._active: Dict[int, Admission] = {}
        self._tickets = itertools.count(1)

    @property
    def overlay(self) -> OverlayGraph:
        """The residual overlay currently offered to new tenants."""
        return self._overlay

    @property
    def active_admissions(self) -> Tuple[Admission, ...]:
        return tuple(self._active[t] for t in sorted(self._active))

    # -- admission ---------------------------------------------------------------

    def admit(
        self,
        requirement: ServiceRequirement,
        demand: float,
        *,
        source_instance: Optional[ServiceInstance] = None,
        rng: Optional[random.Random] = None,
    ) -> Admission:
        """Federate ``requirement`` and reserve ``demand`` along its paths.

        Raises:
            FederationError: when no federation on the residual overlay can
                sustain ``demand`` (the tenant is rejected; nothing is
                reserved).
        """
        if demand <= 0:
            raise ValueError(f"demand must be > 0, got {demand}")
        graph = self._solver.solve(
            requirement,
            self._overlay,
            source_instance=source_instance,
            rng=rng,
        )
        if graph.bottleneck_bandwidth() < demand:
            raise FederationError(
                f"residual overlay sustains only "
                f"{graph.bottleneck_bandwidth():.3f} of the demanded "
                f"{demand:.3f}"
            )
        reservations = self._reservations_of(graph, demand)
        admission = Admission(
            ticket=next(self._tickets),
            requirement=requirement,
            flow_graph=graph,
            demand=demand,
            reservations=reservations,
        )
        self._active[admission.ticket] = admission
        self._overlay = self._apply(self._overlay, reservations, sign=-1)
        return admission

    def release(self, admission: Admission) -> None:
        """Return an admitted tenant's reserved capacity."""
        if admission.ticket not in self._active:
            raise FederationError(
                f"admission #{admission.ticket} is not active"
            )
        del self._active[admission.ticket]
        self._overlay = self._apply(
            self._overlay, admission.reservations, sign=+1
        )

    # -- internals ----------------------------------------------------------------

    @staticmethod
    def _reservations_of(
        graph: ServiceFlowGraph, demand: float
    ) -> Dict[LinkKey, float]:
        reservations: Dict[LinkKey, float] = {}
        for edge in graph.edges():
            path = edge.overlay_path or (edge.src, edge.dst)
            for a, b in zip(path, path[1:]):
                key = (a, b)
                reservations[key] = reservations.get(key, 0.0) + demand
        return reservations

    def _apply(
        self,
        overlay: OverlayGraph,
        reservations: Dict[LinkKey, float],
        *,
        sign: int,
    ) -> OverlayGraph:
        """A new overlay with capacities adjusted by ``sign * reservation``.

        Releases (+) restore links that reservation had removed, taking
        the pristine metrics from the base overlay.
        """
        result = OverlayGraph()
        for inst in self._base.instances():
            result.add_instance(inst)
        seen: set = set()
        for inst in overlay.instances():
            for link in overlay.out_links(inst):
                key = (link.src, link.dst)
                seen.add(key)
                delta = reservations.get(key, 0.0) * sign
                capacity = link.metrics.bandwidth + delta
                if capacity > 1e-12:
                    result.add_link(
                        link.src,
                        link.dst,
                        PathQuality(capacity, link.metrics.latency),
                        link.underlay_path,
                    )
        if sign > 0:
            # Restore links that had been fully consumed (absent from the
            # residual overlay but present in the base).
            for inst in self._base.instances():
                for link in self._base.out_links(inst):
                    key = (link.src, link.dst)
                    if key in seen or key not in reservations:
                        continue
                    consumed = self._consumed(key)
                    capacity = link.metrics.bandwidth - consumed
                    if capacity > 1e-12:
                        result.add_link(
                            link.src,
                            link.dst,
                            PathQuality(capacity, link.metrics.latency),
                            link.underlay_path,
                        )
        return result

    def _consumed(self, key: LinkKey) -> float:
        """Total capacity still reserved on ``key`` by active tenants."""
        return sum(
            admission.reservations.get(key, 0.0)
            for admission in self._active.values()
        )
