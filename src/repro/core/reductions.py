"""Reduction heuristics for generic service requirements (paper Sec. 3.4).

The paper reduces complex requirements to primitives the baseline algorithm
can solve:

* **Path reduction** -- disjoint source->sink chains are split off and each
  solved optimally as a single service path (Fig. 8 a-c);
* **Split-and-merge reduction** -- a split...merge sub-topology is isolated,
  solved, and replaced by a single abstract edge between the splitting and
  the merging service (Fig. 8 b-d).

We implement both as one recursive *block decomposition* of the two-terminal
requirement DAG:

* a :class:`PathBlock` is a chain (solved by the baseline's layered DP);
* a :class:`SeriesBlock` concatenates blocks at *cut services* (services
  every source->sink stream passes through);
* a :class:`ParallelBlock` puts blocks side by side between the same two
  terminals -- exactly the paper's disjoint paths / split-and-merge shape;
* a :class:`GeneralBlock` is an irreducible residue, handled by bounded
  exhaustive enumeration (the paper concedes its reductions are best-effort
  heuristics; arbitrary DAGs cannot always be reduced).

The accompanying :class:`ReductionSolver` runs a dynamic program over the
block tree.  Per block and per pair of terminal instances it keeps either

* the single lexicographically-best quality (``pareto=False`` -- the
  paper's shortest-widest-everywhere heuristic), or
* the full **Pareto frontier** of ``(bandwidth, latency)`` values
  (``pareto=True``, default) -- necessary for exactness because the
  shortest-widest order does not compose: a narrower-but-faster sub-block
  may win once another block becomes the global bottleneck.

With Pareto frontiers the solver is *exact* for series-parallel
requirements (given the paper's edge-quality model where every abstract
edge is priced by its own shortest-widest overlay path); this is verified
against brute force in ``tests/core/test_reductions.py``.
"""

from __future__ import annotations

import itertools
import math
import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Protocol, Sequence, Tuple

from repro.errors import FederationError, RequirementError
from repro.network.metrics import IDEAL, PathQuality, UNREACHABLE
from repro.network.overlay import OverlayGraph, ServiceInstance
from repro.services.abstract_graph import AbstractGraph
from repro.services.flowgraph import ServiceFlowGraph
from repro.services.requirement import ServiceRequirement, Sid

#: Virtual service used to make multi-sink requirements two-terminal.
VIRTUAL_SINK = "__virtual_sink__"


class AbstractView(Protocol):
    """The minimal abstract-graph interface the solver consumes."""

    def instances_of(self, sid: Sid) -> Tuple[ServiceInstance, ...]:
        ...  # pragma: no cover - protocol

    def quality(self, src: ServiceInstance, dst: ServiceInstance) -> PathQuality:
        ...  # pragma: no cover - protocol


# ---------------------------------------------------------------------------
# Block decomposition
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Block:
    """A two-terminal fragment of the requirement: terminals ``u`` -> ``v``."""

    u: Sid
    v: Sid

    def services(self) -> Tuple[Sid, ...]:
        raise NotImplementedError

    def describe(self, indent: int = 0) -> str:
        """Human-readable decomposition tree (used in docs and tests)."""
        raise NotImplementedError


@dataclass(frozen=True)
class PathBlock(Block):
    """A chain ``u -> ... -> v`` -- the baseline algorithm's home turf."""

    chain: Tuple[Sid, ...]

    def services(self) -> Tuple[Sid, ...]:
        return self.chain

    def describe(self, indent: int = 0) -> str:
        return " " * indent + "Path(" + " -> ".join(self.chain) + ")"


@dataclass(frozen=True)
class SeriesBlock(Block):
    """Blocks concatenated at cut services: ``children[i].v == children[i+1].u``."""

    children: Tuple[Block, ...]

    def services(self) -> Tuple[Sid, ...]:
        seen: List[Sid] = []
        for child in self.children:
            for sid in child.services():
                if sid not in seen:
                    seen.append(sid)
        return tuple(seen)

    def describe(self, indent: int = 0) -> str:
        lines = [" " * indent + f"Series({self.u} -> {self.v})"]
        lines += [child.describe(indent + 2) for child in self.children]
        return "\n".join(lines)


@dataclass(frozen=True)
class ParallelBlock(Block):
    """Blocks side by side between the same terminals (split-and-merge)."""

    children: Tuple[Block, ...]

    def services(self) -> Tuple[Sid, ...]:
        seen: List[Sid] = []
        for child in self.children:
            for sid in child.services():
                if sid not in seen:
                    seen.append(sid)
        return tuple(seen)

    def describe(self, indent: int = 0) -> str:
        lines = [" " * indent + f"Parallel({self.u} || {self.v})"]
        lines += [child.describe(indent + 2) for child in self.children]
        return "\n".join(lines)


@dataclass(frozen=True)
class GeneralBlock(Block):
    """An irreducible two-terminal DAG fragment."""

    requirement: ServiceRequirement

    def services(self) -> Tuple[Sid, ...]:
        return self.requirement.services()

    def describe(self, indent: int = 0) -> str:
        return (
            " " * indent
            + f"General({self.u} => {self.v}, services={list(self.services())})"
        )


def decompose(requirement: ServiceRequirement) -> Block:
    """Decompose a two-terminal requirement into a block tree.

    The requirement must have a single sink (augment multi-sink requirements
    first; :class:`ReductionSolver` does this automatically).
    """
    return _decompose(requirement, requirement.source, requirement.sink)


def _decompose(req: ServiceRequirement, u: Sid, v: Sid) -> Block:
    if _is_chain(req):
        return PathBlock(u, v, req.topological_order())

    cuts = _cut_services(req, u, v)
    if cuts:
        terminals = [u, *cuts, v]
        try:
            children: List[Block] = []
            for a, b in zip(terminals, terminals[1:]):
                segment = _segment(req, a, b)
                children.append(_decompose(segment, a, b))
            return SeriesBlock(u, v, tuple(children))
        except RequirementError:
            # Defensive: a malformed segment means the cut structure was not
            # cleanly separable; fall back to exhaustive handling.
            return GeneralBlock(u, v, req)

    branches = _parallel_branches(req, u, v)
    if len(branches) > 1:
        children = [
            _decompose(branch, u, v) for branch in branches
        ]
        return ParallelBlock(u, v, tuple(children))

    return GeneralBlock(u, v, req)


def _is_chain(req: ServiceRequirement) -> bool:
    return all(
        req.out_degree(s) <= 1 and req.in_degree(s) <= 1 for s in req.services()
    )


def _cut_services(req: ServiceRequirement, u: Sid, v: Sid) -> List[Sid]:
    """Services (other than the terminals) on *every* ``u -> v`` stream.

    A service ``w`` is a cut iff removing it disconnects ``v`` from ``u``.
    Requirements are small (the paper's evaluation uses a handful of
    services), so the quadratic removal test is plenty fast.
    """
    cuts = []
    for w in req.topological_order():
        if w in (u, v):
            continue
        if not _reaches(req, u, v, without=w):
            cuts.append(w)
    return cuts  # topological order is preserved


def _reaches(req: ServiceRequirement, src: Sid, dst: Sid, *, without: Sid) -> bool:
    seen = {src}
    stack = [src]
    while stack:
        node = stack.pop()
        if node == dst:
            return True
        for nxt in req.successors(node):
            if nxt == without or nxt in seen:
                continue
            seen.add(nxt)
            stack.append(nxt)
    return False


def _segment(req: ServiceRequirement, a: Sid, b: Sid) -> ServiceRequirement:
    """The sub-requirement strictly between two consecutive cuts."""
    keep = (req.descendants(a) & (req.ancestors(b) | {b})) | {a, b}
    # Drop the direct a -> b skip edges? No: they belong to this segment.
    edges = [(x, y) for x, y in req.edges() if x in keep and y in keep]
    return ServiceRequirement(edges=edges, nodes=keep)


def _parallel_branches(
    req: ServiceRequirement, u: Sid, v: Sid
) -> List[ServiceRequirement]:
    """Split into branches sharing only the terminals, if possible.

    Branches are the undirected connected components of the requirement with
    the terminals removed; a direct ``u -> v`` edge forms its own branch.
    """
    interior = [s for s in req.services() if s not in (u, v)]
    neighbor: Dict[Sid, List[Sid]] = {s: [] for s in interior}
    for a, b in req.edges():
        if a in neighbor and b in neighbor:
            neighbor[a].append(b)
            neighbor[b].append(a)
    components: List[List[Sid]] = []
    unvisited = set(interior)
    while unvisited:
        start = min(unvisited)
        comp = [start]
        unvisited.discard(start)
        stack = [start]
        while stack:
            node = stack.pop()
            for nxt in neighbor[node]:
                if nxt in unvisited:
                    unvisited.discard(nxt)
                    comp.append(nxt)
                    stack.append(nxt)
        components.append(sorted(comp))

    branches: List[ServiceRequirement] = []
    for comp in components:
        keep = set(comp) | {u, v}
        edges = [
            (a, b)
            for a, b in req.edges()
            if a in keep and b in keep and (a, b) != (u, v)
        ]
        try:
            branches.append(ServiceRequirement(edges=edges, nodes=keep))
        except RequirementError:
            return [req]  # not separable after all; treat as one block
    if req.has_edge(u, v):
        branches.append(ServiceRequirement(edges=[(u, v)]))
    return branches if len(branches) > 1 else [req]


# ---------------------------------------------------------------------------
# Pareto machinery
# ---------------------------------------------------------------------------

#: One DP entry: achievable quality plus the assignment realising it.
Entry = Tuple[PathQuality, Dict[Sid, ServiceInstance]]


def pareto_prune(entries: Iterable[Entry], *, keep_all: bool) -> List[Entry]:
    """Remove dominated entries.

    ``keep_all=True`` keeps the whole ``(bandwidth, latency)`` Pareto
    frontier; ``keep_all=False`` keeps only the lexicographically best entry
    (the paper's pure shortest-widest heuristic).
    """
    candidates = [e for e in entries if e[0].reachable]
    if not candidates:
        return []
    # Sort best-first: bandwidth desc, then latency asc.
    candidates.sort(key=lambda e: (-e[0].bandwidth, e[0].latency))
    if not keep_all:
        return [candidates[0]]
    frontier: List[Entry] = []
    best_latency = math.inf
    for quality, assignment in candidates:
        if quality.latency < best_latency:
            frontier.append((quality, assignment))
            best_latency = quality.latency
    return frontier


def _combine_series(a: Entry, b: Entry) -> Entry:
    qa, aa = a
    qb, ab = b
    quality = PathQuality(min(qa.bandwidth, qb.bandwidth), qa.latency + qb.latency)
    merged = dict(aa)
    merged.update(ab)
    return (quality, merged)


def _combine_parallel(a: Entry, b: Entry) -> Entry:
    qa, aa = a
    qb, ab = b
    quality = PathQuality(
        min(qa.bandwidth, qb.bandwidth), max(qa.latency, qb.latency)
    )
    merged = dict(aa)
    merged.update(ab)
    return (quality, merged)


# ---------------------------------------------------------------------------
# The solver
# ---------------------------------------------------------------------------

#: DP table: (u_instance, v_instance) -> Pareto list of entries.
BlockTable = Dict[Tuple[ServiceInstance, ServiceInstance], List[Entry]]


class _AugmentedView:
    """An :class:`AbstractView` with a virtual sink gluing multi-sink
    requirements into two-terminal form (ideal zero-cost edges)."""

    def __init__(self, base: AbstractView, real_sinks: Sequence[Sid]) -> None:
        self._base = base
        self._real_sinks = set(real_sinks)
        self._virtual = ServiceInstance(VIRTUAL_SINK, -1)

    @property
    def virtual_instance(self) -> ServiceInstance:
        return self._virtual

    def instances_of(self, sid: Sid) -> Tuple[ServiceInstance, ...]:
        if sid == VIRTUAL_SINK:
            return (self._virtual,)
        return self._base.instances_of(sid)

    def quality(self, src: ServiceInstance, dst: ServiceInstance) -> PathQuality:
        if dst == self._virtual:
            return IDEAL if src.sid in self._real_sinks else UNREACHABLE
        if src == self._virtual:
            return UNREACHABLE
        return self._base.quality(src, dst)


class ReductionSolver:
    """Requirement-reduction federation (the centralised sFlow core).

    Args:
        pareto: keep full Pareto frontiers in the block DP (exact for
            series-parallel requirements) instead of single
            shortest-widest-best entries (the paper's heuristic).
        enumeration_limit: cap on the number of assignments a
            :class:`GeneralBlock` may enumerate before falling back to the
            greedy widest-first completion.
    """

    name = "reduction"

    def __init__(self, *, pareto: bool = True, enumeration_limit: int = 200_000):
        self.pareto = pareto
        self.enumeration_limit = enumeration_limit

    # -- public API -----------------------------------------------------------

    def solve(
        self,
        requirement: ServiceRequirement,
        overlay: OverlayGraph,
        *,
        source_instance: Optional[ServiceInstance] = None,
        rng: Optional[random.Random] = None,
        abstract: Optional[AbstractGraph] = None,
        latency_bound: Optional[float] = None,
    ) -> ServiceFlowGraph:
        """Federate ``requirement`` over ``overlay``; returns the flow graph.

        ``latency_bound`` turns the problem into its QoS-constrained
        variant: maximise bottleneck bandwidth *subject to* a critical-path
        latency of at most the bound.  With Pareto frontiers this costs
        nothing extra -- the bound simply filters the frontier at the top
        (requires ``pareto=True``; the single-best heuristic discards the
        slower-but-wider entries a bound might need).
        """
        if abstract is None:
            abstract = AbstractGraph.build(requirement, overlay)
        assignment, _quality = self.solve_assignment(
            requirement,
            abstract,
            source_instance=source_instance,
            latency_bound=latency_bound,
        )
        return ServiceFlowGraph.realize(abstract, assignment)

    def solve_assignment(
        self,
        requirement: ServiceRequirement,
        view: AbstractView,
        *,
        source_instance: Optional[ServiceInstance] = None,
        latency_bound: Optional[float] = None,
    ) -> Tuple[Dict[Sid, ServiceInstance], PathQuality]:
        """Pick one instance per service; returns ``(assignment, quality)``.

        ``quality`` is the block-DP value of the chosen solution: bottleneck
        bandwidth and critical-path latency under the series/parallel
        composition rules.  See :meth:`solve` for ``latency_bound``.
        """
        if latency_bound is not None:
            if latency_bound < 0:
                raise ValueError(f"latency_bound must be >= 0, got {latency_bound}")
            if not self.pareto:
                raise FederationError(
                    "latency-bounded federation needs pareto=True: the "
                    "single-best heuristic drops the slower-but-wider "
                    "frontier entries a bound may require"
                )
        work_req, work_view = self._two_terminal(requirement, view)
        block = decompose(work_req)
        table = self._solve_block(block, work_view)
        sources = self._source_candidates(work_view, work_req.source, source_instance)
        best: Optional[Entry] = None
        for src in sources:
            for dst in work_view.instances_of(work_req.sink):
                for quality, assignment in table.get((src, dst), ()):
                    if latency_bound is not None and quality.latency > latency_bound:
                        continue
                    if best is None or quality.is_better_than(best[0]):
                        best = (quality, assignment)
        if best is None:
            constraint = (
                f" within latency bound {latency_bound}"
                if latency_bound is not None
                else ""
            )
            raise FederationError(
                f"no feasible federation of {requirement!r}{constraint} "
                f"(source candidates: {list(sources)})"
            )
        assignment = {
            sid: inst for sid, inst in best[1].items() if sid != VIRTUAL_SINK
        }
        return assignment, best[0]

    # -- setup -----------------------------------------------------------------

    def _two_terminal(
        self, requirement: ServiceRequirement, view: AbstractView
    ) -> Tuple[ServiceRequirement, AbstractView]:
        if len(requirement.sinks) == 1:
            return requirement, view
        edges = list(requirement.edges())
        edges.extend((sink, VIRTUAL_SINK) for sink in requirement.sinks)
        augmented = ServiceRequirement(edges=edges)
        return augmented, _AugmentedView(view, requirement.sinks)

    def _source_candidates(
        self,
        view: AbstractView,
        source_sid: Sid,
        pinned: Optional[ServiceInstance],
    ) -> Tuple[ServiceInstance, ...]:
        instances = view.instances_of(source_sid)
        if not instances:
            raise FederationError(f"service {source_sid!r} has no instances")
        if pinned is None:
            return instances
        if pinned.sid != source_sid or pinned not in instances:
            raise FederationError(
                f"pinned source {pinned} is not an available instance of "
                f"{source_sid!r}"
            )
        return (pinned,)

    # -- block dynamic program ----------------------------------------------------

    def _solve_block(self, block: Block, view: AbstractView) -> BlockTable:
        if isinstance(block, PathBlock):
            return self._solve_path(block, view)
        if isinstance(block, SeriesBlock):
            return self._solve_series(block, view)
        if isinstance(block, ParallelBlock):
            return self._solve_parallel(block, view)
        if isinstance(block, GeneralBlock):
            return self._solve_general(block, view)
        raise AssertionError(f"unknown block type {type(block).__name__}")

    def _solve_path(self, block: PathBlock, view: AbstractView) -> BlockTable:
        """Layered DP along a chain -- the baseline algorithm, Pareto-ised."""
        table: BlockTable = {}
        chain = block.chain
        for src in view.instances_of(chain[0]):
            layer: Dict[ServiceInstance, List[Entry]] = {
                src: [(IDEAL, {chain[0]: src})]
            }
            for sid in chain[1:]:
                nxt: Dict[ServiceInstance, List[Entry]] = {}
                for inst in view.instances_of(sid):
                    candidates: List[Entry] = []
                    for prev_inst, entries in layer.items():
                        hop = view.quality(prev_inst, inst)
                        if not hop.reachable:
                            continue
                        for quality, assignment in entries:
                            extended = dict(assignment)
                            extended[sid] = inst
                            candidates.append((quality.extend(hop), extended))
                    pruned = pareto_prune(candidates, keep_all=self.pareto)
                    if pruned:
                        nxt[inst] = pruned
                layer = nxt
                if not layer:
                    break
            for dst, entries in layer.items():
                table[(src, dst)] = entries
        return table

    def _solve_series(self, block: SeriesBlock, view: AbstractView) -> BlockTable:
        tables = [self._solve_block(child, view) for child in block.children]
        result = tables[0]
        for nxt in tables[1:]:
            combined: BlockTable = {}
            # Join on the shared cut instance (result's dst == nxt's src).
            by_src: Dict[ServiceInstance, List[Tuple[ServiceInstance, List[Entry]]]] = {}
            for (cut, dst), entries in nxt.items():
                by_src.setdefault(cut, []).append((dst, entries))
            accum: Dict[Tuple[ServiceInstance, ServiceInstance], List[Entry]] = {}
            for (src, cut), left_entries in result.items():
                for dst, right_entries in by_src.get(cut, ()):
                    bucket = accum.setdefault((src, dst), [])
                    for left in left_entries:
                        for right in right_entries:
                            bucket.append(_combine_series(left, right))
            for key, entries in accum.items():
                pruned = pareto_prune(entries, keep_all=self.pareto)
                if pruned:
                    combined[key] = pruned
            result = combined
        return result

    def _solve_parallel(self, block: ParallelBlock, view: AbstractView) -> BlockTable:
        tables = [self._solve_block(child, view) for child in block.children]
        result = tables[0]
        for nxt in tables[1:]:
            combined: BlockTable = {}
            for key, left_entries in result.items():
                right_entries = nxt.get(key)
                if not right_entries:
                    continue  # this (u_inst, v_inst) pair can't serve all branches
                merged = [
                    _combine_parallel(left, right)
                    for left in left_entries
                    for right in right_entries
                ]
                pruned = pareto_prune(merged, keep_all=self.pareto)
                if pruned:
                    combined[key] = pruned
            result = combined
        return result

    def _solve_general(self, block: GeneralBlock, view: AbstractView) -> BlockTable:
        req = block.requirement
        interior = [s for s in req.topological_order() if s not in (block.u, block.v)]
        pools = [view.instances_of(s) for s in interior]
        combos = 1
        for pool in pools:
            if not pool:
                return {}
            combos *= len(pool)
        if combos > self.enumeration_limit:
            return self._solve_general_greedy(block, view)

        table: BlockTable = {}
        u_pool = view.instances_of(block.u)
        v_pool = view.instances_of(block.v)
        for interior_choice in itertools.product(*pools):
            partial = dict(zip(interior, interior_choice))
            for src in u_pool:
                for dst in v_pool:
                    assignment = dict(partial)
                    assignment[block.u] = src
                    assignment[block.v] = dst
                    quality = _evaluate_assignment(req, assignment, view)
                    if quality is None:
                        continue
                    table.setdefault((src, dst), []).append((quality, assignment))
        return {
            key: pareto_prune(entries, keep_all=self.pareto)
            for key, entries in table.items()
        }

    def _solve_general_greedy(
        self, block: GeneralBlock, view: AbstractView
    ) -> BlockTable:
        """Fallback for oversized general blocks: widest-first per service.

        Walks the block in topological order and, for each service, picks
        the instance maximising the worst incoming quality from the already
        assigned predecessors -- the same policy as the fixed control
        algorithm, applied block-locally.
        """
        req = block.requirement
        table: BlockTable = {}
        for src in view.instances_of(block.u):
            assignment: Dict[Sid, ServiceInstance] = {block.u: src}
            feasible = True
            for sid in req.topological_order():
                if sid == block.u:
                    continue
                best_inst: Optional[ServiceInstance] = None
                best_quality = UNREACHABLE
                for inst in view.instances_of(sid):
                    worst = IDEAL
                    for pred in req.predecessors(sid):
                        pred_inst = assignment.get(pred)
                        if pred_inst is None:
                            continue
                        hop = view.quality(pred_inst, inst)
                        if hop.bandwidth < worst.bandwidth or (
                            hop.bandwidth == worst.bandwidth
                            and hop.latency > worst.latency
                        ):
                            worst = hop
                    if best_inst is None or worst.is_better_than(best_quality):
                        best_inst = inst
                        best_quality = worst
                if best_inst is None:
                    feasible = False
                    break
                assignment[sid] = best_inst
            if not feasible:
                continue
            quality = _evaluate_assignment(req, assignment, view)
            if quality is None:
                continue
            dst = assignment[block.v]
            table.setdefault((src, dst), []).append((quality, assignment))
        return {
            key: pareto_prune(entries, keep_all=self.pareto)
            for key, entries in table.items()
        }


def _evaluate_assignment(
    req: ServiceRequirement,
    assignment: Dict[Sid, ServiceInstance],
    view: AbstractView,
) -> Optional[PathQuality]:
    """Bottleneck bandwidth + critical-path latency of a full block
    assignment; ``None`` when any edge is unreachable."""
    bandwidth = math.inf
    finish: Dict[Sid, float] = {req.source: 0.0}
    for sid in req.topological_order()[1:]:
        worst_finish = 0.0
        for pred in req.predecessors(sid):
            hop = view.quality(assignment[pred], assignment[sid])
            if not hop.reachable:
                return None
            bandwidth = min(bandwidth, hop.bandwidth)
            worst_finish = max(worst_finish, finish[pred] + hop.latency)
        finish[sid] = worst_finish
    latency = max(finish[s] for s in req.sinks)
    return PathQuality(bandwidth, latency)
