"""The three control algorithms of the evaluation (paper Sec. 5).

* :class:`RandomAlgorithm` -- "randomly chooses a direct downstream in the
  local overlay graph that leads to the corresponding downstream required in
  the service requirement".  We walk the requirement in topological order
  and draw each instance uniformly among the candidates that keep every
  incoming edge realisable (falling back to any instance when none do, so a
  flow graph is always produced and scored).
* :class:`FixedAlgorithm` -- "always chooses the direct downstream with the
  highest available bandwidth".  Greedy widest-first: per service, pick the
  instance whose *worst* incoming bandwidth from the already-assigned
  predecessors is highest (latency ignored, exactly the fixed heuristic's
  blind spot the paper exploits in Fig. 10).
* :class:`ServicePathAlgorithm` -- the end-to-end single-path federation of
  Gu et al. (HPDC 2002).  It understands only chain requirements: a PATH
  requirement is solved optimally via the baseline; for any other shape it
  federates the longest source->sink chain it can find and leaves the rest
  of the requirement unassigned -- which is why its correctness coefficient
  is the lowest in Fig. 10(a) ("it can only handle the simplest service
  requirements") and why its delivered latency is sequential rather than
  parallel (Fig. 10(c)).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.errors import FederationError
from repro.network.metrics import IDEAL, PathQuality, UNREACHABLE
from repro.network.overlay import OverlayGraph, ServiceInstance
from repro.routing.oracle import RouteOracle
from repro.services.abstract_graph import AbstractGraph
from repro.services.flowgraph import ServiceFlowGraph
from repro.services.requirement import RequirementClass, ServiceRequirement, Sid


def _source_pool(
    abstract: AbstractGraph,
    source_sid: Sid,
    pinned: Optional[ServiceInstance],
) -> Tuple[ServiceInstance, ...]:
    pool = abstract.instances_of(source_sid)
    if pinned is None:
        return pool
    if pinned.sid != source_sid or pinned not in pool:
        raise FederationError(f"bad pinned source instance {pinned}")
    return (pinned,)


class RandomAlgorithm:
    """Uniform random instance selection (reachability-aware)."""

    name = "random"

    def solve(
        self,
        requirement: ServiceRequirement,
        overlay: OverlayGraph,
        *,
        source_instance: Optional[ServiceInstance] = None,
        rng: Optional[random.Random] = None,
    ) -> ServiceFlowGraph:
        rng = rng or random.Random(0)
        abstract = AbstractGraph.build(requirement, overlay)
        assignment: Dict[Sid, ServiceInstance] = {}
        for sid in requirement.topological_order():
            if sid == requirement.source:
                pool = _source_pool(abstract, sid, source_instance)
                assignment[sid] = rng.choice(list(pool))
                continue
            pool = list(abstract.instances_of(sid))
            usable = [
                inst
                for inst in pool
                if all(
                    abstract.quality(assignment[pred], inst).reachable
                    for pred in requirement.predecessors(sid)
                )
            ]
            assignment[sid] = rng.choice(usable or pool)
        return ServiceFlowGraph.realize(abstract, assignment, strict=False)


class FixedAlgorithm:
    """Greedy widest-first instance selection (bandwidth only).

    The paper's fixed heuristic "always chooses the direct downstream with
    the highest available bandwidth": per service (topological order) it
    takes the instance whose worst **direct service link** from the already
    assigned predecessors is widest.  It is doubly myopic -- it ignores
    latency entirely and never considers relayed overlay routes -- which is
    exactly why sFlow beats it in Fig. 10(c)/(d): the chosen edges are
    still *realised* with proper shortest-widest routes, but the instance
    choices themselves were made on direct-link bandwidth alone.
    """

    name = "fixed"

    def solve(
        self,
        requirement: ServiceRequirement,
        overlay: OverlayGraph,
        *,
        source_instance: Optional[ServiceInstance] = None,
        rng: Optional[random.Random] = None,
    ) -> ServiceFlowGraph:
        abstract = AbstractGraph.build(requirement, overlay)
        assignment: Dict[Sid, ServiceInstance] = {}
        for sid in requirement.topological_order():
            if sid == requirement.source:
                pool = _source_pool(abstract, sid, source_instance)
                # With no upstream edges to compare, take the instance whose
                # best direct outgoing bandwidth is highest.
                assignment[sid] = max(
                    pool, key=lambda inst: self._best_outgoing(overlay, inst)
                )
                continue
            best_inst: Optional[ServiceInstance] = None
            best_bw = -1.0
            for inst in abstract.instances_of(sid):
                worst_bw = float("inf")
                for pred in requirement.predecessors(sid):
                    quality = overlay.link_quality(assignment[pred], inst)
                    worst_bw = min(worst_bw, quality.bandwidth)
                if worst_bw > best_bw:
                    best_bw = worst_bw
                    best_inst = inst
            assert best_inst is not None  # instances_of is never empty here
            assignment[sid] = best_inst
        return ServiceFlowGraph.realize(abstract, assignment, strict=False)

    @staticmethod
    def _best_outgoing(overlay: OverlayGraph, inst: ServiceInstance) -> float:
        qualities = [quality.bandwidth for _, quality in overlay.successors(inst)]
        return max(qualities, default=0.0)


class ServicePathAlgorithm:
    """End-to-end single service path federation (Gu et al. style).

    A path-only system cannot express a DAG requirement.  The only way it
    can deliver one is to **serialize** it: visit the services in a
    topological order and thread one compound stream through them, hop by
    hop.  That is what this control does for non-path requirements:

    * the service chain is the (deterministic) topological order of the
      requirement;
    * consecutive chain hops are routed over the overlay *ignoring link
      direction* (the proxy network relays the compound stream; data-flow
      compatibility does not apply to a serialized document), and the
      instance per service is chosen by a layered shortest-widest DP over
      that chain -- the best a path system can do;
    * the chain's quality is exposed via :attr:`last_serialized`: its
      latency is the **sum** of the hop latencies, because services execute
      strictly one after another ("fails to consider the parallel
      processing cases", Fig. 10(c)).

    Because the chain optimises a completely different objective than the
    DAG flow graph, its instance choices rarely coincide with the global
    optimum -- the paper's Fig. 10(a) "lowest success rate".  PATH
    requirements are still solved optimally via the baseline algorithm.
    """

    name = "service_path"

    def __init__(self) -> None:
        #: Serialized-chain quality of the most recent non-path solve:
        #: ``PathQuality(min hop bandwidth, sum of hop latencies)``.
        self.last_serialized: Optional[PathQuality] = None
        #: Whether the last requirement was natively supported (a PATH).
        #: Serialized deliveries move the data but do *not* satisfy the
        #: requirement's flow relationships -- the evaluation scores them as
        #: federation failures, matching the paper's "lowest success rate,
        #: since it can only handle the simplest service requirements".
        self.last_native: bool = True

    def solve(
        self,
        requirement: ServiceRequirement,
        overlay: OverlayGraph,
        *,
        source_instance: Optional[ServiceInstance] = None,
        rng: Optional[random.Random] = None,
    ) -> ServiceFlowGraph:
        from repro.core.baseline import solve_path_requirement

        if requirement.classify() in (
            RequirementClass.PATH,
            RequirementClass.SINGLE,
        ):
            self.last_native = True
            graph, quality = solve_path_requirement(
                requirement, overlay, source_instance=source_instance
            )
            self.last_serialized = PathQuality(
                graph.bottleneck_bandwidth(), graph.sequential_latency()
            )
            return graph
        self.last_native = False
        assignment, serialized = self._serialize(
            requirement, overlay, source_instance
        )
        self.last_serialized = serialized
        abstract = AbstractGraph.build(requirement, overlay)
        return ServiceFlowGraph.realize(abstract, assignment, strict=False)

    def _serialize(
        self,
        requirement: ServiceRequirement,
        overlay: OverlayGraph,
        source_instance: Optional[ServiceInstance],
    ) -> Tuple[Dict[Sid, ServiceInstance], PathQuality]:
        """Layered shortest-widest DP along the serialized service chain."""
        chain = requirement.topological_order()
        oracle = RouteOracle.default()

        def undirected(inst: ServiceInstance):
            seen = {}
            for nbr, metrics in overlay.successors(inst):
                seen[nbr] = metrics
            for nbr, metrics in overlay.predecessors(inst):
                if nbr not in seen or metrics.is_better_than(seen[nbr]):
                    seen[nbr] = metrics
            return sorted(seen.items())

        def hop_quality(a: ServiceInstance, b: ServiceInstance) -> PathQuality:
            # The serialized-chain control plans over the *undirected*
            # relaxation of the overlay; the oracle keys that adjacency
            # separately via the view tag.
            label = oracle.tree(
                overlay, a, view="undirected", neighbors=undirected
            ).get(b)
            return label.quality if label is not None else UNREACHABLE

        first_pool = overlay.instances_of(chain[0])
        if source_instance is not None:
            if source_instance not in first_pool:
                raise FederationError(f"bad pinned source {source_instance}")
            first_pool = (source_instance,)
        # layer: instance -> (serialized quality so far, assignment)
        layer: Dict[ServiceInstance, Tuple[PathQuality, Dict[Sid, ServiceInstance]]]
        layer = {inst: (IDEAL, {chain[0]: inst}) for inst in first_pool}
        for sid in chain[1:]:
            nxt: Dict[
                ServiceInstance, Tuple[PathQuality, Dict[Sid, ServiceInstance]]
            ] = {}
            for inst in overlay.instances_of(sid):
                best: Optional[Tuple[PathQuality, Dict[Sid, ServiceInstance]]] = None
                for prev_inst, (quality, assignment) in layer.items():
                    hop = hop_quality(prev_inst, inst)
                    extended = quality.extend(hop)
                    if best is None or extended.is_better_than(best[0]):
                        chosen = dict(assignment)
                        chosen[sid] = inst
                        best = (extended, chosen)
                if best is not None:
                    nxt[inst] = best
            if not nxt:
                raise FederationError(
                    f"serialized chain breaks at service {sid!r}"
                )
            layer = nxt
        quality, assignment = max(layer.values(), key=lambda entry: entry[0])
        return assignment, quality
