"""The baseline algorithm (paper Table 1): optimal single-path federation.

For a requirement that is a single service **path**, the optimal service
flow graph can be found in polynomial time:

1. compute all-pairs shortest-widest paths in the overlay (Wang-Crowcroft);
2. construct the service abstract graph for the requirement;
3. compute the shortest-widest *abstract path* from the source service's
   instances to the sink service's instances;
4. replace every abstract edge with the concrete shortest-widest overlay
   path between the two chosen instances.

Steps 1-2 are fused here: :class:`~repro.services.abstract_graph.AbstractGraph`
runs one Wang-Crowcroft tree per instance that actually sources an abstract
edge, which computes exactly the all-pairs entries Table 1 consumes (the
complexity bound ``O(N^4)`` is unchanged).  Step 3 is a shortest-widest
search over the layered abstract graph; because abstract edges only connect
instances of *adjacent* required services, any abstract source->sink path
selects exactly one instance per service, as the model demands.

Optimality for path requirements follows from the optimality of
shortest-widest path search on the abstract graph, and is cross-checked
against exhaustive search in ``tests/core/test_baseline.py``.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple

from repro.errors import FederationError
from repro.network.metrics import PathQuality, UNREACHABLE
from repro.network.overlay import OverlayGraph, ServiceInstance
from repro.routing.oracle import RouteOracle
from repro.routing.wang_crowcroft import extract_path
from repro.services.abstract_graph import AbstractGraph
from repro.services.flowgraph import ServiceFlowGraph
from repro.services.requirement import RequirementClass, ServiceRequirement


def solve_path_requirement(
    requirement: ServiceRequirement,
    overlay: OverlayGraph,
    *,
    source_instance: Optional[ServiceInstance] = None,
    abstract: Optional[AbstractGraph] = None,
) -> Tuple[ServiceFlowGraph, PathQuality]:
    """Optimal flow graph for a single-path requirement (Table 1).

    Args:
        requirement: must classify as ``PATH`` or ``SINGLE``.
        overlay: the service overlay graph.
        source_instance: pin the source service to this instance (the node
            the consumer actually contacted); ``None`` lets the algorithm
            pick the best source instance.
        abstract: reuse a pre-built abstract graph (the experiment harness
            shares one across algorithms).

    Returns:
        ``(flow_graph, quality)`` where quality is the shortest-widest value
        of the selected abstract path.

    Raises:
        FederationError: when the requirement is not a path, a required
            service has no instance, or no usable abstract path exists.
    """
    clazz = requirement.classify()
    if clazz not in (RequirementClass.PATH, RequirementClass.SINGLE):
        raise FederationError(
            f"the baseline algorithm handles single service paths; this "
            f"requirement is {clazz.value}"
        )
    if abstract is None:
        abstract = AbstractGraph.build(requirement, overlay)

    chain = requirement.as_path()
    sources = _source_candidates(abstract, chain[0], source_instance)

    if len(chain) == 1:
        # Degenerate single-service requirement: pick the pinned (or first)
        # instance; the flow graph has no edges and ideal quality.
        instance = sources[0]
        graph = ServiceFlowGraph(requirement, {chain[0]: instance})
        return graph, PathQuality(float("inf"), 0.0)

    best_quality = UNREACHABLE
    best_assignment: Optional[Dict[str, ServiceInstance]] = None
    sink_sid = chain[-1]
    oracle = RouteOracle.default()
    for src in sources:
        labels = oracle.tree(abstract, src)
        for sink_inst in abstract.instances_of(sink_sid):
            label = labels.get(sink_inst)
            if label is None or not label.quality.reachable:
                continue
            if best_assignment is not None and not label.quality.is_better_than(
                best_quality
            ):
                continue
            path = extract_path(labels, src, sink_inst)
            assignment = {inst.sid: inst for inst in path}
            if len(assignment) != len(chain):
                # Defensive: abstract edges only link adjacent services, so
                # this indicates a corrupted abstract graph.
                raise FederationError(
                    f"abstract path {path} does not visit one instance per service"
                )
            best_quality = label.quality
            best_assignment = assignment
    if best_assignment is None:
        raise FederationError(
            f"no usable abstract path from {chain[0]!r} to {sink_sid!r}"
        )
    graph = ServiceFlowGraph.realize(abstract, best_assignment)
    return graph, best_quality


def _source_candidates(
    abstract: AbstractGraph,
    source_sid: str,
    pinned: Optional[ServiceInstance],
) -> Tuple[ServiceInstance, ...]:
    instances = abstract.instances_of(source_sid)
    if pinned is None:
        return instances
    if pinned.sid != source_sid:
        raise FederationError(
            f"source instance {pinned} is not an instance of {source_sid!r}"
        )
    if pinned not in instances:
        raise FederationError(f"source instance {pinned} is not in the overlay")
    return (pinned,)


class BaselineAlgorithm:
    """Table 1 as a :class:`~repro.core.types.FederationAlgorithm`."""

    name = "baseline"

    def solve(
        self,
        requirement: ServiceRequirement,
        overlay: OverlayGraph,
        *,
        source_instance: Optional[ServiceInstance] = None,
        rng: Optional[random.Random] = None,
    ) -> ServiceFlowGraph:
        graph, _ = solve_path_requirement(
            requirement, overlay, source_instance=source_instance
        )
        return graph
