"""Adaptive failure detection for gray failures (sim-time only).

Crash-stop failures (PR 1) are detected by *retry exhaustion*: a fixed
number of unacknowledged retransmissions declares the peer dead.  That
binary rule is exactly wrong for **gray** failures -- lossy, reordering
channels and straggler nodes make a healthy peer look silent for a while,
and a flat retry count either false-suspects the slow or waits forever on
the dead.  This module provides the three adaptive pieces the sFlow
runtime composes instead:

* :class:`PhiAccrualDetector` -- a phi-accrual-style failure detector
  (Hayashibara et al.): every peer's message inter-arrival times feed a
  sliding sample window, and suspicion is a *continuous* level
  ``phi = -log10(P(silence this long | history))`` rather than a boolean.
  A straggler with honest-but-slow heartbeats keeps phi low; a dead peer's
  phi grows without bound, crossing any threshold in time proportional to
  its own observed cadence.
* :class:`RetryPolicy` -- a bounded retry budget with exponential backoff
  and seeded jitter.  Every retry loop in the runtime draws its delays
  from one of these (``sflow-check`` rule SFL009 flags unbounded
  ``while True`` retry loops), so retry storms cannot synchronise and no
  sender retries forever.
* :class:`CircuitBreaker` -- per-peer quarantine.  Repeated send failures
  open the breaker: further traffic to the peer fails *fast* (no retry
  budget burned) until a sim-time cool-off expires, after which a single
  half-open probe decides between closing the circuit and re-opening it.

Everything is driven by explicit ``now`` arguments (the DES clock); no
component reads wall time or ambient randomness, so runs replay
bit-identically from a seed.
"""

from __future__ import annotations

import enum
import math
import random
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Hashable, Iterator, List, Optional, Tuple

from repro.obs import metrics as obs_metrics

Peer = Hashable

#: Detection metrics (process-wide, resolved once at import).
_REGISTRY = obs_metrics.registry()
_M_HEARTBEATS = _REGISTRY.counter(
    "detector.heartbeats", "inter-arrival samples recorded"
)
_M_SUSPICIONS = _REGISTRY.counter(
    "detector.suspicions", "peers crossing the phi threshold"
)
_M_RECOVERIES = _REGISTRY.counter(
    "detector.recoveries", "suspected peers heard from again"
)
_H_PHI = _REGISTRY.histogram(
    "detector.phi", "phi level at suspicion time"
)
_M_BREAKER = _REGISTRY.counter(
    "detector.breaker.transitions", "circuit-breaker state transitions"
)
_M_RETRY_DELAYS = _REGISTRY.counter(
    "detector.retry.delays", "backoff delays drawn from retry policies"
)


# ---------------------------------------------------------------------------
# phi-accrual failure detection
# ---------------------------------------------------------------------------


@dataclass
class DetectorConfig:
    """Tunables of the phi-accrual detector.

    Attributes:
        threshold: suspicion level at which a peer is declared suspect.
            phi = 1 means "1 in 10 healthy silences last this long";
            phi = 8 (the Cassandra default) means 1 in 10^8.
        window: sliding window of inter-arrival samples kept per peer.
        min_samples: below this many samples the detector stays silent
            (bootstrap) and falls back to ``bootstrap_interval``.
        bootstrap_interval: assumed mean inter-arrival before enough
            samples exist.
        min_stddev: floor on the sample standard deviation -- a perfectly
            regular heartbeat would otherwise make phi explode on the
            first microsecond of jitter.
    """

    threshold: float = 8.0
    window: int = 64
    min_samples: int = 3
    bootstrap_interval: float = 30.0
    min_stddev: float = 0.5

    def __post_init__(self) -> None:
        if self.threshold <= 0:
            raise ValueError("threshold must be > 0")
        if self.window < 2:
            raise ValueError("window must be >= 2")
        if self.min_samples < 2:
            raise ValueError("min_samples must be >= 2")
        if self.bootstrap_interval <= 0:
            raise ValueError("bootstrap_interval must be > 0")
        if self.min_stddev <= 0:
            raise ValueError("min_stddev must be > 0")


class _PeerHistory:
    """Sliding inter-arrival window plus the last-arrival timestamp."""

    __slots__ = ("last_arrival", "intervals")

    def __init__(self, now: float) -> None:
        self.last_arrival = now
        self.intervals: Deque[float] = deque()

    def record(self, now: float, window: int) -> None:
        interval = now - self.last_arrival
        self.last_arrival = now
        self.intervals.append(interval)
        while len(self.intervals) > window:
            self.intervals.popleft()


class PhiAccrualDetector:
    """Continuous, per-peer suspicion over message inter-arrival times.

    Feed every message arrival through :meth:`heartbeat`; query
    :meth:`phi` / :meth:`suspect` with the current sim time.  The detector
    also tracks which peers it has *reported* suspect, so callers get
    clean edge-triggered ``suspect -> recovered`` transitions from
    :meth:`poll`.
    """

    def __init__(self, config: Optional[DetectorConfig] = None) -> None:
        self.config = config or DetectorConfig()
        self._history: Dict[Peer, _PeerHistory] = {}
        self._suspected: Dict[Peer, float] = {}

    # -- feeding ---------------------------------------------------------------

    def heartbeat(self, peer: Peer, now: float) -> None:
        """Record a message arrival from ``peer`` at sim time ``now``."""
        history = self._history.get(peer)
        if history is None:
            self._history[peer] = _PeerHistory(now)
        else:
            history.record(now, self.config.window)
        _M_HEARTBEATS.inc()
        if peer in self._suspected:
            del self._suspected[peer]
            _M_RECOVERIES.inc()

    def forget(self, peer: Peer) -> None:
        """Drop all state about ``peer`` (e.g. it left the overlay)."""
        self._history.pop(peer, None)
        self._suspected.pop(peer, None)

    # -- querying --------------------------------------------------------------

    def _mean_stddev(self, history: _PeerHistory) -> Tuple[float, float]:
        samples = history.intervals
        if len(samples) < self.config.min_samples:
            return self.config.bootstrap_interval, max(
                self.config.min_stddev, self.config.bootstrap_interval / 4.0
            )
        mean = sum(samples) / len(samples)
        variance = sum((s - mean) ** 2 for s in samples) / len(samples)
        return mean, max(self.config.min_stddev, math.sqrt(variance))

    def phi(self, peer: Peer, now: float) -> float:
        """Current suspicion level of ``peer`` (0.0 for unknown peers).

        Uses the exponential-tail approximation of the phi-accrual paper:
        the probability that a healthy peer stays silent ``t`` after its
        last arrival decays like ``exp(-t / mean_interval)`` (scaled by
        the observed jitter), so ``phi = t / (mean + stddev) * log10(e)``
        -- monotone in silence, adaptive to the peer's own cadence.
        """
        history = self._history.get(peer)
        if history is None:
            return 0.0
        silence = now - history.last_arrival
        if silence <= 0:
            return 0.0
        mean, stddev = self._mean_stddev(history)
        return silence / (mean + stddev) * math.log10(math.e)

    def suspect(self, peer: Peer, now: float) -> bool:
        """Whether ``peer``'s phi currently exceeds the threshold."""
        return self.phi(peer, now) >= self.config.threshold

    def poll(self, now: float) -> List[Tuple[Peer, float]]:
        """Edge-triggered sweep: peers *newly* crossing the threshold.

        Returns ``(peer, phi)`` pairs for peers that crossed since the
        last poll; peers already reported stay quiet until a heartbeat
        clears them.  Sorted by ``repr`` for deterministic iteration.
        """
        newly: List[Tuple[Peer, float]] = []
        for peer in sorted(self._history, key=repr):
            if peer in self._suspected:
                continue
            level = self.phi(peer, now)
            if level >= self.config.threshold:
                self._suspected[peer] = now
                _M_SUSPICIONS.inc()
                _H_PHI.observe(level)
                newly.append((peer, level))
        return newly

    def suspected_peers(self) -> Tuple[Peer, ...]:
        return tuple(sorted(self._suspected, key=repr))


# ---------------------------------------------------------------------------
# bounded retries with backoff + jitter
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """A bounded retry budget with exponential backoff and seeded jitter.

    ``delay(attempt, rng)`` is the wait *before* retry ``attempt`` (the
    first transmission is attempt 0 and waits ``base`` for its answer):
    ``base * multiplier**attempt``, capped at ``cap``, plus a uniform
    jitter drawn from the caller's seeded RNG so concurrent retry loops
    decorrelate instead of stampeding in lock-step.
    """

    max_attempts: int = 4
    base: float = 10.0
    multiplier: float = 2.0
    cap: float = 120.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base <= 0:
            raise ValueError("base must be > 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.cap < self.base:
            raise ValueError("cap must be >= base")
        if not (0.0 <= self.jitter < 1.0):
            raise ValueError("jitter must be in [0, 1)")

    def delay(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        if attempt < 0:
            raise ValueError("attempt must be >= 0")
        nominal = min(self.cap, self.base * (self.multiplier ** attempt))
        _M_RETRY_DELAYS.inc()
        if rng is None or self.jitter == 0.0:
            return nominal
        return nominal * (1.0 + rng.uniform(-self.jitter, self.jitter))

    def delays(self, rng: Optional[random.Random] = None) -> Iterator[float]:
        """The full (bounded) delay sequence -- ``max_attempts`` entries."""
        for attempt in range(self.max_attempts):
            yield self.delay(attempt, rng)


# ---------------------------------------------------------------------------
# circuit breaker (quarantine instead of retrying forever)
# ---------------------------------------------------------------------------


class BreakerState(enum.Enum):
    """Classic three-state circuit."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass
class BreakerConfig:
    """Circuit-breaker policy.

    Attributes:
        failure_threshold: consecutive failures that open the circuit.
        reset_timeout: sim time an open circuit stays closed to traffic
            before allowing one half-open probe.
        half_open_probes: probes allowed through a half-open circuit.
    """

    failure_threshold: int = 2
    reset_timeout: float = 60.0
    half_open_probes: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.reset_timeout <= 0:
            raise ValueError("reset_timeout must be > 0")
        if self.half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")


@dataclass
class _Circuit:
    state: BreakerState = BreakerState.CLOSED
    consecutive_failures: int = 0
    opened_at: float = 0.0
    half_open_inflight: int = 0


class CircuitBreaker:
    """Per-peer circuits: fail fast on known-bad peers, probe politely.

    The caller asks :meth:`allows` before an expensive send and reports
    the result with :meth:`record_success` / :meth:`record_failure`.  A
    peer whose circuit is OPEN is *quarantined*: sends are refused without
    burning a retry budget until ``reset_timeout`` sim time has passed,
    then a limited number of half-open probes decide its fate.
    """

    def __init__(self, config: Optional[BreakerConfig] = None) -> None:
        self.config = config or BreakerConfig()
        self._circuits: Dict[Peer, _Circuit] = {}

    def _circuit(self, peer: Peer) -> _Circuit:
        circuit = self._circuits.get(peer)
        if circuit is None:
            circuit = _Circuit()
            self._circuits[peer] = circuit
        return circuit

    def state(self, peer: Peer, now: float) -> BreakerState:
        """Current state, promoting OPEN to HALF_OPEN after the cool-off."""
        circuit = self._circuits.get(peer)
        if circuit is None:
            return BreakerState.CLOSED
        if (
            circuit.state is BreakerState.OPEN
            and now - circuit.opened_at >= self.config.reset_timeout
        ):
            circuit.state = BreakerState.HALF_OPEN
            circuit.half_open_inflight = 0
            _M_BREAKER.inc(transition="half_open")
        return circuit.state

    def allows(self, peer: Peer, now: float) -> bool:
        """Whether a send to ``peer`` may proceed right now."""
        state = self.state(peer, now)
        if state is BreakerState.CLOSED:
            return True
        if state is BreakerState.OPEN:
            return False
        circuit = self._circuit(peer)
        if circuit.half_open_inflight >= self.config.half_open_probes:
            return False
        circuit.half_open_inflight += 1
        return True

    def record_success(self, peer: Peer, now: float) -> None:
        circuit = self._circuits.get(peer)
        if circuit is None:
            return
        if circuit.state is not BreakerState.CLOSED:
            _M_BREAKER.inc(transition="close")
        circuit.state = BreakerState.CLOSED
        circuit.consecutive_failures = 0
        circuit.half_open_inflight = 0

    def record_failure(self, peer: Peer, now: float) -> bool:
        """Report a failed send; returns True when the circuit (re-)opens."""
        circuit = self._circuit(peer)
        circuit.consecutive_failures += 1
        if circuit.state is BreakerState.HALF_OPEN:
            circuit.state = BreakerState.OPEN
            circuit.opened_at = now
            _M_BREAKER.inc(transition="reopen")
            return True
        if (
            circuit.state is BreakerState.CLOSED
            and circuit.consecutive_failures >= self.config.failure_threshold
        ):
            circuit.state = BreakerState.OPEN
            circuit.opened_at = now
            _M_BREAKER.inc(transition="open")
            return True
        return False

    def quarantined(self, now: float) -> Tuple[Peer, ...]:
        """Peers whose circuit refuses traffic right now (sorted)."""
        return tuple(
            sorted(
                (
                    peer
                    for peer in self._circuits
                    if self.state(peer, now) is BreakerState.OPEN
                ),
                key=repr,
            )
        )
