"""sFlow: the fully distributed service federation algorithm (paper Sec. 4).

The federation process is message-driven:

1. The consumer delivers the service requirement to the **source service
   node** in an ``sfederate`` message.
2. Every service node that receives ``sfederate`` messages from *all* of its
   upstream services analyses its **local overlay view** (the two-hop
   vicinity of the paper, generalised to a configurable ``horizon``), runs
   the baseline algorithm plus the reduction heuristics on the residual
   requirement, commits its local decisions, and forwards new ``sfederate``
   messages -- carrying the shrunken residual requirement, the accumulated
   *pins* (service -> instance decisions) and the partial flow graph -- to
   the chosen instances of its immediate downstream services.
3. The sink service node(s) finalise the complete service flow graph.

Decision responsibility follows the paper's remark that "the tasks of
computing optimal service flow graphs are generally assumed by the
splitting node": the instance of service ``Y`` is pinned by ``Y``'s
**immediate dominator** in the requirement DAG.  For chain segments the
dominator is simply the upstream service (fully local decisions); for merge
services it is the split node where the branches diverged, which guarantees
all branches deliver their streams to the *same* merge instance.  Because a
dominator precedes ``Y`` on every requirement path, its pin is always
embedded in whatever ``sfederate`` message later reaches ``Y`` -- no extra
coordination round is needed.

Local knowledge model: each node plans over its ``horizon``-hop ego view of
the overlay (optionally materialised by the actual link-state protocol of
:mod:`repro.routing.link_state`).  Instances *outside* the view are known
only by directory (SID listings); the planner prices edges to them with an
optimistic uniform prior estimated from the links the node can see.  This
is what makes sFlow degrade gracefully -- but measurably -- as the network
grows, reproducing the downward trend of Fig. 10(a).

Crash tolerance (the "agile" half of the paper's title, carried into the
protocol itself): a :class:`~repro.network.failures.ChaosPlan` can kill
service nodes *while the federation is running*.  The runtime then behaves
like a real distributed system rather than a batch solver:

* a crashed node silently drops traffic; the upstream sender detects it by
  **retry exhaustion** of the acknowledged transport;
* the sender **fails over**: it re-runs its local baseline/reduction step
  with every suspected-dead instance excluded, re-pins the lost service to
  its next-best candidate, and re-sends -- with exponential backoff between
  attempts.  Re-pins carry a per-service generation so downstream merge
  points deterministically prefer the freshest decision over stale pins
  still in flight;
* failovers that cannot be decided locally (a merge service pinned by a
  remote dominator, an exhausted failover budget, no live alternative)
  escalate to a bounded number of **re-federations**: the consumer restarts
  the protocol for the residual requirement -- everything not safely
  delivered, i.e. the full requirement -- with the suspects excluded;
* the sink side enforces an optional end-to-end **deadline**; each expiry
  burns one re-federation, and exhausting them fails the run;
* every recovery step lands in a structured :class:`RecoveryEvent` log on
  the :class:`SFlowResult`, and an unrecoverable run returns
  ``outcome=FederationOutcome.FAILED`` instead of leaking an exception out
  of :meth:`~repro.sim.engine.Environment.run`.

Everything runs on the discrete-event simulator: ``sfederate`` messages
take the latency of the realised overlay path they travel, so the reported
convergence time and message counts are measured, not modelled.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.errors import FederationError, SimulationError
from repro.network.failures import ChaosPlan
from repro.obs import metrics as obs_metrics
from repro.obs.clock import Stopwatch
from repro.obs.timeseries import SeriesSampler
from repro.obs.trace import NULL_SPAN, SimClock, tracer as obs_tracer
from repro.network.metrics import PathQuality, UNREACHABLE
from repro.network.overlay import OverlayGraph, ServiceInstance
from repro.routing.link_state import collect_local_views
from repro.routing.oracle import RouteOracle
from repro.services.abstract_graph import AbstractGraph
from repro.services.flowgraph import FlowEdge, ServiceFlowGraph
from repro.services.requirement import ServiceRequirement, Sid
from repro.core.degradation import DegradationRecord, SessionState
from repro.core.detector import (
    BreakerConfig,
    CircuitBreaker,
    DetectorConfig,
    PhiAccrualDetector,
    RetryPolicy,
)
from repro.core.reductions import AbstractView, ReductionSolver
from repro.core.repair import repair_flow_graph
from repro.sim.channels import Envelope, MessageNetwork
from repro.sim.engine import Environment, Event

#: Protocol metrics (process-wide, resolved once at import).  Counters are
#: always on; spans/events below additionally feed the flight recorder
#: when one is attached (:mod:`repro.obs`), at zero cost otherwise.
_REGISTRY = obs_metrics.registry()
_M_SESSIONS = _REGISTRY.counter("sflow.sessions", "federation runs by outcome")
_M_SFEDERATE = _REGISTRY.counter("sflow.sfederate.sent", "sfederate dispatches")
_M_ACKS = _REGISTRY.counter("sflow.acks.sent", "acknowledgements sent")
_M_RETRANSMISSIONS = _REGISTRY.counter(
    "sflow.retransmissions", "sfederate retransmissions"
)
_M_SUSPECTS = _REGISTRY.counter(
    "sflow.suspects", "instances declared dead by retry exhaustion"
)
_M_FAILOVERS = _REGISTRY.counter("sflow.failovers", "local re-pins after suspicion")
_M_REFEDERATIONS = _REGISTRY.counter(
    "sflow.refederations", "consumer-side protocol restarts"
)
_M_CRASHES = _REGISTRY.counter("sflow.crashes", "chaos crash-stop events")
_M_ACTIVATIONS = _REGISTRY.counter(
    "sflow.node.activations", "local planning steps executed"
)
_M_RECOVERY = _REGISTRY.counter(
    "sflow.recovery.events", "structured recovery-log entries by kind"
)
_H_FEDERATION_TIME = _REGISTRY.histogram(
    "sflow.federation.sim_time", "per-session federation latency (virtual time)"
)
_H_RECOVERY_TIME = _REGISTRY.histogram(
    "sflow.recovery.sim_time",
    "first recovery event to completion (virtual time), disturbed runs only",
)
_M_DEGRADE_DETECTED = _REGISTRY.counter(
    "degrade.detected", "completions that fell below the bandwidth requirement"
)
_M_DEGRADE_REPAIRS = _REGISTRY.counter(
    "degrade.repairs", "in-place repairs attempted on degraded sessions"
)
_M_DEGRADE_SESSIONS = _REGISTRY.counter(
    "degrade.sessions", "sessions served below requirement (explicit record)"
)
_M_DEGRADE_RECOVERED = _REGISTRY.counter(
    "degrade.recovered", "degraded sessions restored to full bandwidth"
)
_H_DELIVERED_FRACTION = _REGISTRY.histogram(
    "degrade.delivered_fraction",
    "achieved / required bandwidth at completion (requirement-bearing runs)",
)


@dataclass(frozen=True)
class SFederate:
    """The ``sfederate`` message: residual requirement + decisions so far."""

    residual: ServiceRequirement
    pins: Tuple[Tuple[Sid, ServiceInstance], ...]
    edges: Tuple[FlowEdge, ...]
    #: Non-zero when the transport is lossy: retransmission/dedup handle.
    msg_id: int = 0
    #: Protocol round: bumped by every re-federation; stale rounds are dropped.
    generation: int = 0
    #: Failover lineage: ``sid -> re-pin generation`` for re-decided services
    #: (absent = 0).  Higher generations win when pins conflict downstream.
    repins: Tuple[Tuple[Sid, int], ...] = ()

    def pin_map(self) -> Dict[Sid, ServiceInstance]:
        return dict(self.pins)

    @property
    def size(self) -> int:
        """Abstract wire size used for byte accounting."""
        return (
            1
            + len(self.residual)
            + len(self.pins)
            + 3 * len(self.edges)
            + len(self.repins)
        )


@dataclass(frozen=True)
class Ack:
    """Acknowledgement of an ``sfederate`` message under a lossy transport."""

    msg_id: int


class FederationOutcome(enum.Enum):
    """How a federation run ended.

    ``COMMITTED`` is an alias of ``SUCCEEDED``: a session that meets its
    requirement is committed.  ``DEGRADED`` sessions are *served* -- they
    carry a flow graph -- but below their bandwidth requirement, with an
    explicit :class:`~repro.core.degradation.DegradationRecord`.
    """

    SUCCEEDED = "succeeded"
    COMMITTED = "succeeded"
    DEGRADED = "degraded"
    FAILED = "failed"


@dataclass(frozen=True)
class RecoveryEvent:
    """One structured entry of a run's recovery log.

    ``kind`` is one of: ``crash``, ``revival``, ``retry_exhausted``,
    ``suspect``, ``unsuspect``, ``quarantine``, ``failover``, ``abandon``,
    ``refederate``, ``deadline_expired``, ``degrade_detected``,
    ``degrade_repair``, ``degraded``, ``recovered``, ``failed``.
    ``instance`` names the affected instance when the event concerns one
    (detection-latency accounting keys on it).
    """

    time: float
    kind: str
    detail: str
    instance: str = ""


@dataclass
class SFlowConfig:
    """Tunables of the distributed algorithm.

    Attributes:
        horizon: overlay-hop radius of each node's local view (paper: 2).
        pareto: whether local solvers keep Pareto frontiers (exact local
            optimisation) or single shortest-widest-best entries (the
            paper's pure heuristic).
        use_link_state: materialise local views by running the bounded
            link-state protocol on the simulator instead of reading them off
            the overlay directly (slower, but fully distributed end to end).
        gossip_hints: let planners use the per-instance scalar quality
            summaries published in the directory when pricing edges beyond
            the horizon (see ``_PlanningView``); disable for the strictly
            local ablation.
        enumeration_limit: cap forwarded to the local
            :class:`~repro.core.reductions.ReductionSolver` instances.
        initial_latency: delay of the consumer's first ``sfederate`` message.
        loss_rate: probability that the transport loses any one protocol
            message (sfederate or ack).  Non-zero rates switch the protocol
            into reliable mode: receivers acknowledge and deduplicate,
            senders retransmit after ``retransmit_timeout`` up to
            ``max_retries`` times.  The consumer's initial request is
            assumed to use a reliable channel.
        loss_seed: RNG seed of the loss process (runs are reproducible).
        retransmit_timeout: virtual time before an unacknowledged
            ``sfederate`` is resent.
        max_retries: retransmissions before the sender declares the
            receiver dead (suspected) and hands over to failover.
        failover: whether an upstream node re-pins a suspected-dead
            downstream instance to its next-best candidate (re-running the
            local reduction step with suspects excluded).  With failover
            off, retry exhaustion fails the run -- but still through the
            structured :class:`SFlowResult` path, never by raising out of
            the simulation.
        max_failovers: total failover budget of one run; exhausting it
            escalates to re-federation.
        failover_backoff: base of the exponential virtual-time backoff
            between failover attempts (doubles per attempt of a send).
        deadline: optional end-to-end virtual-time deadline enforced on the
            sink side; every expiry triggers a re-federation until
            ``max_refederations`` is exhausted.
        max_refederations: how many times the consumer may restart the
            protocol for the residual requirement (``k`` in the docs).
        required_bandwidth: optional end-to-end bandwidth requirement.
            When set, a completing run evaluates its delivered bandwidth
            (flow-graph bottleneck, gray degradation ramps applied) and,
            when short, climbs the degradation ladder -- in-place repair,
            hysteresis-bounded re-federation, serve DEGRADED -- instead of
            silently committing a starved graph.  ``None`` (default)
            preserves the legacy behaviour bit for bit.
        refederate_hysteresis: minimum virtual time between two
            degradation-triggered re-federations (flap-storm damping).
        detector: optional phi-accrual detector config; when set, every
            message arrival feeds per-peer inter-arrival histories and a
            periodic sweep suspects silent peers *before* retry exhaustion
            does.
        breaker: optional circuit-breaker config; when set, peers that
            exhaust their retries are quarantined and later sends fail
            over immediately instead of burning a full retry cycle.
        retry_policy: optional bounded retry budget with exponential
            backoff + jitter, replacing the fixed
            ``retransmit_timeout`` x ``max_retries`` schedule.
        sample_interval: optional sim-time interval at which a
            :class:`~repro.obs.timeseries.SeriesSampler` scrapes the
            metrics registry during the run.  ``None`` (default) disables
            sampling entirely -- no sampler process is created and the
            legacy event schedule is preserved bit for bit.
    """

    horizon: int = 2
    pareto: bool = True
    use_link_state: bool = False
    gossip_hints: bool = True
    enumeration_limit: int = 100_000
    initial_latency: float = 0.0
    loss_rate: float = 0.0
    loss_seed: int = 0
    retransmit_timeout: float = 30.0
    max_retries: int = 25
    failover: bool = True
    max_failovers: int = 8
    failover_backoff: float = 10.0
    deadline: Optional[float] = None
    max_refederations: int = 2
    required_bandwidth: Optional[float] = None
    refederate_hysteresis: float = 50.0
    detector: Optional[DetectorConfig] = None
    breaker: Optional[BreakerConfig] = None
    retry_policy: Optional[RetryPolicy] = None
    sample_interval: Optional[float] = None

    def __post_init__(self) -> None:
        if self.horizon < 0:
            raise ValueError("horizon must be >= 0")
        if not (0.0 <= self.loss_rate < 1.0):
            raise ValueError("loss_rate must be in [0, 1)")
        if self.retransmit_timeout <= 0:
            raise ValueError("retransmit_timeout must be > 0")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.max_failovers < 0:
            raise ValueError("max_failovers must be >= 0")
        if self.failover_backoff <= 0:
            raise ValueError("failover_backoff must be > 0")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be > 0 (or None)")
        if self.max_refederations < 0:
            raise ValueError("max_refederations must be >= 0")
        if self.required_bandwidth is not None and self.required_bandwidth <= 0:
            raise ValueError("required_bandwidth must be > 0 (or None)")
        if self.refederate_hysteresis < 0:
            raise ValueError("refederate_hysteresis must be >= 0")
        if self.sample_interval is not None and self.sample_interval <= 0:
            raise ValueError("sample_interval must be > 0 (or None)")


@dataclass
class SFlowResult:
    """Everything a federation run produced and measured.

    ``flow_graph`` is ``None`` exactly when ``outcome`` is
    :attr:`FederationOutcome.FAILED`; ``failure_reason`` then says why and
    ``recovery_log`` records every step the runtime took trying to save the
    run (crashes observed, failovers, re-federations, abandonments).
    A :attr:`FederationOutcome.DEGRADED` run *does* carry a flow graph --
    served at the best achievable bandwidth -- plus the explicit
    :class:`~repro.core.degradation.DegradationRecord` saying how far
    short it falls.
    """

    flow_graph: Optional[ServiceFlowGraph]
    convergence_time: float
    messages: int
    bytes: int
    local_compute_seconds: float
    node_activations: int
    link_state_messages: int = 0
    per_node_compute: Dict[ServiceInstance, float] = field(default_factory=dict)
    #: Reliability accounting (zero on a lossless transport).
    retransmissions: int = 0
    lost_messages: int = 0
    acks: int = 0
    #: Crash-tolerance accounting (empty/zero on an undisturbed run).
    outcome: FederationOutcome = FederationOutcome.SUCCEEDED
    failure_reason: str = ""
    recovery_log: Tuple[RecoveryEvent, ...] = ()
    crashes: int = 0
    failovers: int = 0
    refederations: int = 0
    #: Graceful-degradation accounting (None/empty on requirement-free runs).
    degradation: Optional[DegradationRecord] = None
    achieved_bandwidth: Optional[float] = None
    suspected: Tuple[str, ...] = ()
    #: Sampled metric series over the run (empty unless
    #: :attr:`SFlowConfig.sample_interval` was set); a plain-dict bank --
    #: see :mod:`repro.obs.timeseries`.
    series: Dict[str, dict] = field(default_factory=dict)

    @property
    def succeeded(self) -> bool:
        return self.outcome is FederationOutcome.SUCCEEDED

    @property
    def session_state(self) -> SessionState:
        """The run's lifecycle state (served runs are COMMITTED/DEGRADED)."""
        if self.outcome is FederationOutcome.FAILED:
            return SessionState.FAILED
        if self.outcome is FederationOutcome.DEGRADED:
            return SessionState.DEGRADED
        return SessionState.COMMITTED


class _PlanningView(AbstractView):
    """What one node knows when it plans: its local view plus the directory.

    * Instances inside the local view are priced by shortest-widest routing
      *within the view*.
    * Services invisible from here fall back to the global instance
      directory (SID listings are assumed discoverable, path qualities are
      not).  Edges touching out-of-view instances are priced with the
      per-instance **gossip hints**: a single scalar summary (mean incident
      link quality) each instance publishes alongside its directory entry.
      That is a realistic, cheap aggregate -- constant state per instance,
      propagated like any membership record -- and it gives blind decisions
      a fighting chance without leaking actual topology, so sFlow's
      correctness decays gracefully with network size (Fig. 10(a)) instead
      of collapsing to a coin flip.
    * ``excluded`` removes suspected-dead instances from every candidate
      pool (failover re-planning); pinned decisions are honoured verbatim.
    """

    def __init__(
        self,
        residual: ServiceRequirement,
        local_view: OverlayGraph,
        directory: Dict[Sid, Tuple[ServiceInstance, ...]],
        pins: Dict[Sid, ServiceInstance],
        hints: Optional[Dict[ServiceInstance, PathQuality]] = None,
        excluded: FrozenSet[ServiceInstance] = frozenset(),
    ) -> None:
        self._local = local_view
        self._hints = hints or {}
        self._pools: Dict[Sid, Tuple[ServiceInstance, ...]] = {}
        for sid in residual.services():
            pinned = pins.get(sid)
            if pinned is not None:
                self._pools[sid] = (pinned,)
                continue
            known = tuple(
                inst
                for inst in local_view.instances_of(sid)
                if inst not in excluded
            )
            if known:
                self._pools[sid] = known
            else:
                self._pools[sid] = tuple(
                    inst
                    for inst in directory.get(sid, ())
                    if inst not in excluded
                )
        self._prior = self._estimate_prior(local_view)

    @staticmethod
    def _estimate_prior(view: OverlayGraph) -> PathQuality:
        bandwidths: List[float] = []
        latencies: List[float] = []
        for inst in view.instances():
            for _, metrics in view.successors(inst):
                if metrics.reachable and metrics.bandwidth != float("inf"):
                    bandwidths.append(metrics.bandwidth)
                    latencies.append(metrics.latency)
        if not bandwidths:
            return PathQuality(1.0, 1.0)
        return PathQuality(
            sum(bandwidths) / len(bandwidths),
            sum(latencies) / len(latencies),
        )

    def instances_of(self, sid: Sid) -> Tuple[ServiceInstance, ...]:
        return self._pools.get(sid, ())

    def quality(self, src: ServiceInstance, dst: ServiceInstance) -> PathQuality:
        if src in self._local and dst in self._local:
            # Local views persist across planning steps (and failover
            # re-planning) of one federation, so the process oracle turns
            # the repeated per-node tree computations into cache hits.
            label = RouteOracle.default().tree(self._local, src).get(dst)
            if label is not None and label.quality.reachable:
                return label.quality
            return UNREACHABLE
        # At least one endpoint is beyond the horizon: combine whatever
        # gossip hints exist, defaulting to the local-view prior.
        estimates = [
            self._hints.get(inst, self._prior) for inst in (src, dst)
        ]
        return PathQuality(
            min(e.bandwidth for e in estimates),
            sum(e.latency for e in estimates) / 2.0,
        )


class _SFlowNode:
    """The per-instance protocol endpoint (a simulation process)."""

    def __init__(self, me: ServiceInstance, federation: "_Federation") -> None:
        self.me = me
        self.fed = federation
        self.mailbox = federation.network.register(me)
        self.inbox: List[SFederate] = []
        self.generation = 0
        self._seen_ids: set = set()

    def reset(self) -> None:
        """Crash-stop: the node's volatile protocol state is lost."""
        self.inbox.clear()
        self._seen_ids.clear()

    def run(self):
        while True:
            envelope: Envelope = yield self.mailbox.get()
            payload = envelope.payload
            self.fed.observe_peer(envelope.src)
            if isinstance(payload, Ack):
                self.fed.acknowledge(payload.msg_id)
                continue
            message: SFederate = payload
            if message.generation < self.generation:
                # Stale protocol round: acknowledge (to silence the
                # retransmitter) but never act on it.
                if message.msg_id:
                    self.fed.send_ack(self.me, envelope.src, message.msg_id)
                continue
            if message.generation > self.generation:
                # A re-federation superseded everything this node had.
                self.generation = message.generation
                self.inbox.clear()
                self._seen_ids.clear()
            if message.msg_id:
                # Reliable mode: always (re-)acknowledge -- the previous ack
                # may have been lost -- but process each message once.
                self.fed.send_ack(self.me, envelope.src, message.msg_id)
                if message.msg_id in self._seen_ids:
                    continue
                self._seen_ids.add(message.msg_id)
            self.inbox.append(message)
            expected = max(1, self.fed.requirement.in_degree(self.me.sid))
            if len(self.inbox) < expected:
                continue
            self._activate(envelope.mid)

    def _activate(self, cause: int = 0) -> None:
        fed = self.fed
        my_sid = self.me.sid
        fed.node_activations += 1
        _M_ACTIVATIONS.inc()
        # ``cause`` is the network msg_id of the delivery that completed
        # this node's in-degree -- the causal profiler's join key.
        fed._span.event("node.activate", instance=str(self.me), cause=cause)
        pins: Dict[Sid, ServiceInstance] = {}
        pin_gens: Dict[Sid, int] = {}
        edges: Dict[Tuple[Sid, Sid], FlowEdge] = {}
        for message in self.inbox:
            gens = dict(message.repins)
            for sid, inst in message.pins:
                gen = gens.get(sid, 0)
                if sid not in pins:
                    pins[sid] = inst
                    pin_gens[sid] = gen
                    continue
                if gen > pin_gens[sid]:
                    # A failover re-pin supersedes the stale decision.
                    pins[sid] = inst
                    pin_gens[sid] = gen
                elif gen == pin_gens[sid] and pins[sid] != inst:
                    raise FederationError(
                        f"inconsistent pins for {sid!r} at {self.me}: "
                        f"{pins[sid]} vs {inst}"
                    )
            for edge in message.edges:
                edges[edge.requirement_edge] = edge
        # Drop flow edges that still reference a superseded pin.
        edges = {
            key: edge
            for key, edge in edges.items()
            if pins.get(edge.src.sid) == edge.src
            and pins.get(edge.dst.sid) == edge.dst
        }
        if pins.get(my_sid) != self.me:
            raise FederationError(
                f"{self.me} received an sfederate pinned to {pins.get(my_sid)}"
            )

        successors = fed.requirement.successors(my_sid)
        if not successors:
            fed.complete_sink(my_sid, pins, pin_gens, edges, self.generation)
            return

        started = fed.stopwatch.read()
        residual = fed.requirement.downstream_closure(my_sid)
        view = fed.local_view(self.me)
        planning = _PlanningView(
            residual,
            view,
            fed.directory,
            pins,
            fed.hints,
            excluded=frozenset(fed.suspected),
        )
        solver = ReductionSolver(
            pareto=fed.config.pareto,
            enumeration_limit=fed.config.enumeration_limit,
        )
        try:
            assignment, _quality = solver.solve_assignment(
                residual, planning, source_instance=self.me
            )
        except FederationError:
            # The local view offers no feasible plan (e.g. a partitioned
            # vicinity); fall back to blind directory choices so the
            # federation still terminates -- with poor quality, as it should.
            assignment = {
                sid: pins.get(sid) or fed.live_choice(sid)
                for sid in residual.services()
            }
            assignment[my_sid] = self.me
        elapsed = fed.stopwatch.read() - started
        fed.record_compute(self.me, elapsed)

        # Pin every service whose decision responsibility lies here.
        new_pins = dict(pins)
        for sid in residual.services():
            if sid == my_sid or sid in new_pins:
                continue
            if fed.idom[sid] == my_sid:
                new_pins[sid] = assignment[sid]

        pin_tuple = tuple(sorted(new_pins.items()))
        repin_tuple = tuple(
            sorted((sid, gen) for sid, gen in pin_gens.items() if gen > 0)
        )
        for succ_sid in successors:
            succ_inst = new_pins.get(succ_sid)
            if succ_inst is None:
                raise FederationError(
                    f"no pin for immediate downstream {succ_sid!r} at {self.me}; "
                    f"dominator {fed.idom[succ_sid]!r} failed to decide"
                )
            flow_edge = fed.realize_edge(self.me, succ_inst)
            out_edges = dict(edges)
            out_edges[flow_edge.requirement_edge] = flow_edge
            message = SFederate(
                residual=fed.requirement.downstream_closure(succ_sid),
                pins=pin_tuple,
                edges=tuple(out_edges[k] for k in sorted(out_edges)),
                msg_id=fed.next_msg_id(),
                generation=self.generation,
                repins=repin_tuple,
            )
            latency = (
                flow_edge.quality.latency
                if flow_edge.quality.reachable
                else fed.fallback_latency
            )
            fed.dispatch(self.me, succ_inst, message, latency)


class _Federation:
    """Shared state of one distributed federation run."""

    def __init__(
        self,
        requirement: ServiceRequirement,
        overlay: OverlayGraph,
        source_instance: ServiceInstance,
        config: SFlowConfig,
        chaos: Optional[ChaosPlan] = None,
        stopwatch: Optional[Stopwatch] = None,
    ) -> None:
        self.requirement = requirement
        self.overlay = overlay
        self.source_instance = source_instance
        self.config = config
        #: Host-compute measurements (solver timing, setup cost) go through
        #: an injectable clock; protocol code never reads wall time directly.
        self.stopwatch = stopwatch if stopwatch is not None else Stopwatch()
        self.env = Environment()
        self.chaos = chaos if chaos is not None and chaos.active else None
        if self.chaos is not None:
            self.chaos.schedule.validate_against(overlay)
        #: The gray-failure plan (lossy/duplicating/reordering channels,
        #: stragglers, flaps, partitions, bandwidth ramps), when active.
        self.gray = None
        if (
            self.chaos is not None
            and self.chaos.gray is not None
            and self.chaos.gray.active
        ):
            self.gray = self.chaos.gray
            self.gray.validate_against(overlay)
        #: Reliable (acknowledged) transport is needed whenever messages can
        #: vanish -- seeded loss or a chaos plan that crashes nodes.
        self.reliable = config.loss_rate > 0 or self.chaos is not None
        self._loss_rng = random.Random(config.loss_seed)
        self._chaos_rng = (
            random.Random(self.chaos.seed)
            if self.chaos is not None and self.chaos.loss_rate > 0
            else None
        )
        loss_fn = None
        if config.loss_rate > 0 or self._chaos_rng is not None:
            loss_fn = self._lose
        jitter_fn = None
        if self.chaos is not None and self.chaos.delay_jitter > 0:
            jitter_rng = random.Random(self.chaos.seed ^ 0x9E3779B9)
            jitter = self.chaos.delay_jitter

            def jitter_fn(src, dst, envelope):
                if src == "consumer":
                    return 0.0
                return jitter_rng.uniform(0.0, jitter)

        self.network = MessageNetwork(self.env, loss_fn=loss_fn, jitter_fn=jitter_fn)
        if self.gray is not None:
            self.network.install_gray(self.gray.channel_model())
        #: Adaptive failure detection (all optional; ``None`` leaves the
        #: legacy retry-exhaustion-only path bit-identical).
        self.detector = (
            PhiAccrualDetector(config.detector)
            if config.detector is not None
            else None
        )
        self.breaker = (
            CircuitBreaker(config.breaker) if config.breaker is not None else None
        )
        self._retry_rng = (
            random.Random(config.loss_seed ^ 0x5F3759DF)
            if config.retry_policy is not None
            else None
        )
        #: Peers suspected by the phi detector alone (cleared on the next
        #: heartbeat -- unlike retry-exhaustion suspects, which stay).
        self._phi_suspects: Set[ServiceInstance] = set()
        self._msg_ids = 0
        self._pending_acks: Dict[int, Event] = {}
        self.retransmissions = 0
        self.acks_sent = 0
        self.idom = requirement.immediate_dominators()
        _t0 = self.stopwatch.read()
        self.directory: Dict[Sid, Tuple[ServiceInstance, ...]] = {
            sid: overlay.instances_of(sid) for sid in requirement.services()
        }
        for sid, pool in self.directory.items():
            if not pool:
                raise FederationError(
                    f"required service {sid!r} has no instance in the overlay"
                )
        _t1 = self.stopwatch.read()
        # Ground-truth abstract graph used only to realise committed edges
        # (established routing state), never for decision making.
        self.abstract = AbstractGraph.build(requirement, overlay)
        _t2 = self.stopwatch.read()
        self.fallback_latency = self._mean_latency()
        self.hints: Dict[ServiceInstance, PathQuality] = (
            self._gossip_hints() if config.gossip_hints else {}
        )
        self.link_state_messages = 0
        self._views: Dict[ServiceInstance, OverlayGraph] = {}
        if config.use_link_state:
            report = collect_local_views(overlay, config.horizon)
            self._views = report.views
            self.link_state_messages = report.messages
        _t3 = self.stopwatch.read()
        #: Wall-clock setup cost, reported as zero-length sim-time spans by
        #: :meth:`run` -- setup happens before the DES clock starts ticking.
        self._setup_seconds = {
            "discovery": (_t1 - _t0) + (_t3 - _t2),
            "abstract_graph": _t2 - _t1,
        }
        #: Root span of the session; a real span only while a trace sink is
        #: attached, otherwise the free no-op singleton.
        self._span = NULL_SPAN
        self.node_activations = 0
        self.local_compute_seconds = 0.0
        self.per_node_compute: Dict[ServiceInstance, float] = {}
        self._sink_parts: Dict[
            Sid, Tuple[Dict, Dict, Dict]
        ] = {}
        self._nodes: Dict[ServiceInstance, _SFlowNode] = {}
        #: Instances this run believes are dead (retry exhaustion, crashes
        #: observed through failed sends -- never via global knowledge).
        self.suspected: Set[ServiceInstance] = set()
        self.generation = 0
        self.crashes = 0
        self.failovers = 0
        self.refederations = 0
        self.failed = False
        self.failure_reason = ""
        self.recovery_log: List[RecoveryEvent] = []
        #: Graceful-degradation ladder state (requirement-bearing runs).
        self.degradation: Optional[DegradationRecord] = None
        self.achieved_bandwidth: Optional[float] = None
        self._final_graph: Optional[ServiceFlowGraph] = None
        self._best_graph: Optional[ServiceFlowGraph] = None
        self._best_bandwidth = 0.0
        self._degrade_seen = False
        self._repair_used = False
        self._last_refederate_at = -float("inf")
        self.done: Event = self.env.event()

    def _lose(self, src, dst, envelope) -> bool:
        if src == "consumer":
            return False
        lost = False
        if self.config.loss_rate > 0:
            lost |= self._loss_rng.random() < self.config.loss_rate
        if self._chaos_rng is not None:
            lost |= self._chaos_rng.random() < self.chaos.loss_rate
        return lost

    def _mean_latency(self) -> float:
        latencies = [
            metrics.latency
            for inst in self.overlay.instances()
            for _, metrics in self.overlay.successors(inst)
            if metrics.reachable
        ]
        return sum(latencies) / len(latencies) if latencies else 1.0

    def _gossip_hints(self) -> Dict[ServiceInstance, PathQuality]:
        """Per-instance scalar summaries: mean incident link quality.

        Each instance publishes one ``(bandwidth, latency)`` aggregate over
        its incident service links -- constant-size state a directory or
        gossip layer can carry -- which planners use to price edges to
        instances beyond their horizon."""
        hints: Dict[ServiceInstance, PathQuality] = {}
        for inst in self.overlay.instances():
            bandwidths: List[float] = []
            latencies: List[float] = []
            for _, metrics in self.overlay.successors(inst):
                if metrics.reachable and metrics.bandwidth != float("inf"):
                    bandwidths.append(metrics.bandwidth)
                    latencies.append(metrics.latency)
            for _, metrics in self.overlay.predecessors(inst):
                if metrics.reachable and metrics.bandwidth != float("inf"):
                    bandwidths.append(metrics.bandwidth)
                    latencies.append(metrics.latency)
            if bandwidths:
                hints[inst] = PathQuality(
                    sum(bandwidths) / len(bandwidths),
                    sum(latencies) / len(latencies),
                )
        return hints

    # -- recovery bookkeeping ----------------------------------------------------

    def _log(self, kind: str, detail: str, *, instance: str = "") -> None:
        self.recovery_log.append(
            RecoveryEvent(self.env.now, kind, detail, instance)
        )
        _M_RECOVERY.inc(kind=kind)
        self._span.event("recovery." + kind, detail=detail)

    def observe_peer(self, peer) -> None:
        """Feed the adaptive detector: every received envelope (sfederate
        or ack) is a liveness proof of its sender."""
        if self.detector is None or not isinstance(peer, ServiceInstance):
            return
        self.detector.heartbeat(peer, self.env.now)
        if peer in self._phi_suspects:
            # The phi detector was wrong (straggler, healed partition):
            # take the suspicion back so failover planning sees the peer.
            self._phi_suspects.discard(peer)
            self.suspected.discard(peer)
            self._log(
                "unsuspect",
                f"{peer} heartbeated again; phi suspicion withdrawn",
                instance=str(peer),
            )

    def _detector_sweep(self):
        """Periodic phi evaluation over every tracked peer: silence beyond
        the adaptive threshold turns into a suspicion *before* any retry
        budget runs out."""
        interval = self.config.detector.bootstrap_interval
        while True:
            yield self.env.timeout(interval)
            if self.done.triggered:
                return
            for peer, phi in self.detector.poll(self.env.now):
                if peer in self.suspected or peer == self.source_instance:
                    continue
                self.suspected.add(peer)
                self._phi_suspects.add(peer)
                _M_SUSPECTS.inc()
                self._log(
                    "suspect",
                    f"phi-accrual suspects {peer} (phi={phi:.2f})",
                    instance=str(peer),
                )

    def _fail_run(self, reason: str, *, force: bool = False) -> None:
        """End the run as FAILED -- structured, never by raising."""
        if self.done.triggered and not force:
            return
        if not self.failed:
            self.failed = True
            self.failure_reason = reason
            self._log("failed", reason)
        if not self.done.triggered:
            self.done.succeed()

    def live_choice(self, sid: Sid) -> ServiceInstance:
        """First directory instance not currently suspected dead (falling
        back to the directory head so blind planning still terminates)."""
        pool = self.directory[sid]
        for inst in pool:
            if inst not in self.suspected:
                return inst
        return pool[0]

    def _live_alternative(self, sid: Sid) -> Optional[ServiceInstance]:
        for inst in self.directory.get(sid, ()):
            if inst not in self.suspected:
                return inst
        return None

    # -- chaos (crash-stop schedule) ---------------------------------------------

    def _chaos_driver(self, event):
        yield self.env.timeout(event.at)
        self._crash(event.instance)
        if event.revive_at is not None:
            yield self.env.timeout(event.revive_at - event.at)
            self._revive(event.instance)

    def _crash(self, instance: ServiceInstance) -> None:
        self.network.crash(instance)
        node = self._nodes.get(instance)
        if node is not None:
            node.reset()
        self.crashes += 1
        _M_CRASHES.inc()
        # Scoped invalidation: cached planning trees that route *through*
        # the dead instance are operationally stale -- bump the epoch of
        # every materialised local view, dropping exactly those trees.
        # (Restrictive mutation: surviving trees stay exact, so planning
        # behaviour is bit-identical, only recomputation cost changes.)
        oracle = RouteOracle.default()
        for view in self._views.values():
            oracle.mutate(view, removed_instances=(instance,))
        self._log("crash", f"{instance} crashed (crash-stop)")

    def _revive(self, instance: ServiceInstance) -> None:
        self.network.revive(instance)
        self.suspected.discard(instance)
        self._phi_suspects.discard(instance)
        if self.detector is not None:
            # Pre-crash inter-arrival history would insta-suspect the fresh
            # incarnation; let it bootstrap cleanly.
            self.detector.forget(instance)
        # A revival is additive (paths through the instance become viable
        # again), so the affected views cold-start their tree caches.
        oracle = RouteOracle.default()
        for view in self._views.values():
            if instance in view:
                oracle.mutate(view, additive=True)
        self._log("revival", f"{instance} revived with empty state")

    # -- transport (reliability layer) -------------------------------------------

    def next_msg_id(self) -> int:
        """Fresh ``sfederate`` id; 0 (no reliability) on a safe transport."""
        if not self.reliable:
            return 0
        self._msg_ids += 1
        return self._msg_ids

    def dispatch(
        self,
        src: ServiceInstance,
        dst: ServiceInstance,
        message: SFederate,
        latency: float,
    ) -> None:
        """Send an ``sfederate``: fire-and-forget when the transport is
        safe, supervised (acks, retransmission, failover) otherwise."""
        _M_SFEDERATE.inc()
        if message.msg_id == 0:
            self.network.send(src, dst, message, latency=latency, size=message.size)
            return
        self.env.process(self._supervised_send(src, dst, message, latency))

    def _reliable_send(
        self,
        src: ServiceInstance,
        dst: ServiceInstance,
        message: SFederate,
        latency: float,
        ack_event: Event,
    ):
        """Acknowledged transmission; returns True when acked, False when
        the retry budget went unanswered.  Never raises: retry exhaustion
        is the *caller's* signal to start failing over.

        The budget is the fixed ``max_retries`` x ``retransmit_timeout``
        schedule by default; an :class:`~repro.core.detector.RetryPolicy`
        replaces it with a bounded attempt count and exponential backoff +
        seeded jitter."""
        policy = self.config.retry_policy
        attempts = (
            policy.max_attempts
            if policy is not None
            else self.config.max_retries + 1
        )
        for attempt in range(attempts):
            self.network.send(
                src, dst, message, latency=latency, size=message.size
            )
            if attempt > 0:
                self.retransmissions += 1
                _M_RETRANSMISSIONS.inc()
            wait = (
                policy.delay(attempt, self._retry_rng)
                if policy is not None
                else self.config.retransmit_timeout
            )
            timeout = self.env.timeout(wait)
            yield self.env.any_of([ack_event, timeout])
            if ack_event.processed:
                return True
        return False

    def _supervised_send(
        self,
        src: ServiceInstance,
        dst: ServiceInstance,
        message: SFederate,
        latency: float,
    ):
        """Drive one ``sfederate`` to *some* live instance of its service.

        The happy path is a single acknowledged send.  On retry exhaustion
        the target is suspected dead and, failover permitting, the sender
        re-runs its local planning step (suspects excluded), re-pins the
        service, and re-sends to the next-best candidate -- backing off
        exponentially between attempts.  Everything that cannot be resolved
        locally escalates to a bounded re-federation."""
        target, msg, lat = dst, message, latency
        round_index = 0
        while True:
            quarantined = (
                self.breaker is not None
                and not self.breaker.allows(target, self.env.now)
            )
            if quarantined:
                # The circuit is open: the target already burned through a
                # retry cycle recently.  Fail over immediately instead of
                # spending another full budget on a suspect peer.
                self._log(
                    "quarantine",
                    f"{target} is quarantined; sfederate {msg.msg_id} from "
                    f"{src} fails over without retrying",
                    instance=str(target),
                )
            else:
                ack_event = self.env.event()
                self._pending_acks[msg.msg_id] = ack_event
                acked = yield from self._reliable_send(
                    src, target, msg, lat, ack_event
                )
                if acked:
                    if self.breaker is not None:
                        self.breaker.record_success(target, self.env.now)
                    return
                self._pending_acks.pop(msg.msg_id, None)
            if self.done.triggered or msg.generation < self.generation:
                return  # run settled or superseded by a re-federation
            if not quarantined:
                attempts = (
                    self.config.retry_policy.max_attempts
                    if self.config.retry_policy is not None
                    else self.config.max_retries + 1
                )
                self.suspected.add(target)
                self._phi_suspects.discard(target)
                _M_SUSPECTS.inc()
                self._log(
                    "retry_exhausted",
                    f"{target} never acked sfederate {msg.msg_id} from {src} "
                    f"({attempts} transmissions)",
                    instance=str(target),
                )
                if self.breaker is not None and self.breaker.record_failure(
                    target, self.env.now
                ):
                    self._log(
                        "quarantine",
                        f"circuit opened for {target} after consecutive "
                        "retry exhaustions",
                        instance=str(target),
                    )
            if not self.config.failover:
                self._fail_run(
                    f"sfederate {msg.msg_id} from {src} to {target} lost "
                    f"{self.config.max_retries + 1} times; failover disabled"
                )
                return
            if self.requirement.in_degree(target.sid) > 1:
                self._log(
                    "abandon",
                    f"{target.sid!r} is a merge service pinned by a remote "
                    f"dominator; local failover at {src} would fork the pin",
                )
                self._try_refederate(
                    f"merge service {target.sid!r} lost instance {target}"
                )
                return
            if self.failovers >= self.config.max_failovers:
                self._log(
                    "abandon",
                    f"failover budget ({self.config.max_failovers}) exhausted",
                )
                self._try_refederate("failover budget exhausted")
                return
            backoff = self.config.failover_backoff * (2 ** round_index)
            round_index += 1
            yield self.env.timeout(backoff)
            if self.done.triggered or msg.generation < self.generation:
                return
            replacement = self._plan_failover(src, target, msg)
            if replacement is None:
                self._log(
                    "abandon",
                    f"no live alternative instance for {target.sid!r}",
                )
                self._try_refederate(
                    f"service {target.sid!r} has no live alternative"
                )
                return
            self.failovers += 1
            _M_FAILOVERS.inc()
            new_target, new_msg, new_lat = replacement
            self._log(
                "failover",
                f"{src} re-pinned {target.sid!r}: {target} -> {new_target} "
                f"(backoff {backoff:g})",
            )
            target, msg, lat = new_target, new_msg, new_lat

    def _plan_failover(
        self,
        src: ServiceInstance,
        dead: ServiceInstance,
        message: SFederate,
    ) -> Optional[Tuple[ServiceInstance, SFederate, float]]:
        """Re-run ``src``'s local planning step with suspects excluded and
        rebuild the sfederate for the next-best instance of ``dead.sid``."""
        my_sid = src.sid
        residual = self.requirement.downstream_closure(my_sid)
        pins = {
            sid: inst
            for sid, inst in message.pins
            if inst not in self.suspected
        }
        pins[my_sid] = src
        started = self.stopwatch.read()
        planning = _PlanningView(
            residual,
            self.local_view(src),
            self.directory,
            pins,
            self.hints,
            excluded=frozenset(self.suspected),
        )
        solver = ReductionSolver(
            pareto=self.config.pareto,
            enumeration_limit=self.config.enumeration_limit,
        )
        replacement: Optional[ServiceInstance] = None
        try:
            assignment, _quality = solver.solve_assignment(
                residual, planning, source_instance=src
            )
            replacement = assignment.get(dead.sid)
        except FederationError:
            replacement = None
        self.record_compute(src, self.stopwatch.read() - started)
        if replacement is None or replacement in self.suspected:
            replacement = self._live_alternative(dead.sid)
        if replacement is None:
            return None
        new_pins = message.pin_map()
        new_pins[dead.sid] = replacement
        repins = dict(message.repins)
        repins[dead.sid] = repins.get(dead.sid, 0) + 1
        flow_edge = self.realize_edge(src, replacement)
        out_edges = {
            edge.requirement_edge: edge
            for edge in message.edges
            if dead not in (edge.src, edge.dst)
        }
        out_edges[flow_edge.requirement_edge] = flow_edge
        new_msg = SFederate(
            residual=message.residual,
            pins=tuple(sorted(new_pins.items())),
            edges=tuple(out_edges[k] for k in sorted(out_edges)),
            msg_id=self.next_msg_id(),
            generation=message.generation,
            repins=tuple(sorted(repins.items())),
        )
        latency = (
            flow_edge.quality.latency
            if flow_edge.quality.reachable
            else self.fallback_latency
        )
        return replacement, new_msg, latency

    def send_ack(
        self, src: ServiceInstance, dst, msg_id: int
    ) -> None:
        self.acks_sent += 1
        _M_ACKS.inc()
        self.network.send(
            src, dst, Ack(msg_id), latency=self.fallback_latency, size=1
        )

    def acknowledge(self, msg_id: int) -> None:
        pending = self._pending_acks.pop(msg_id, None)
        if pending is not None and not pending.triggered:
            pending.succeed()

    # -- re-federation (consumer-side recovery) ----------------------------------

    def _try_refederate(self, reason: str) -> bool:
        """Restart the protocol for the residual requirement (which, seen
        from the consumer, is the full requirement: partially committed
        branches upstream of a loss cannot be trusted).  Bounded by
        ``max_refederations``; exhaustion fails the run structurally."""
        if self.done.triggered:
            return False
        if self.refederations >= self.config.max_refederations:
            self._fail_run(
                f"unrecoverable: {reason} "
                f"(after {self.refederations} re-federation(s))"
            )
            return False
        for sid, pool in self.directory.items():
            if all(inst in self.suspected for inst in pool):
                self._fail_run(
                    f"unrecoverable: required service {sid!r} has no live "
                    f"instance ({reason})"
                )
                return False
        if self.source_instance in self.suspected:
            self._fail_run(
                f"unrecoverable: pinned source instance "
                f"{self.source_instance} is dead ({reason})"
            )
            return False
        self.refederations += 1
        _M_REFEDERATIONS.inc()
        self.generation += 1
        self._sink_parts.clear()
        self._log(
            "refederate",
            f"round {self.generation}: restarting the residual requirement "
            f"({reason}); {len(self.suspected)} suspect(s) excluded",
        )
        initial = SFederate(
            residual=self.requirement,
            pins=((self.requirement.source, self.source_instance),),
            edges=(),
            generation=self.generation,
        )
        self.network.send(
            "consumer",
            self.source_instance,
            initial,
            latency=self.config.initial_latency,
            size=initial.size,
        )
        return True

    def _watchdog(self):
        """Sink-side deadline enforcement: every expired window burns one
        re-federation; running out of them fails the run."""
        while True:
            yield self.env.timeout(self.config.deadline)
            if self.done.triggered:
                return
            self._log(
                "deadline_expired",
                f"no complete flow graph by t={self.env.now:g}",
            )
            if not self._try_refederate("deadline expired"):
                return

    # -- services used by nodes ------------------------------------------------

    def local_view(self, instance: ServiceInstance) -> OverlayGraph:
        if instance not in self._views:
            self._views[instance] = self.overlay.ego_view(
                instance, self.config.horizon
            )
        return self._views[instance]

    def realize_edge(
        self, src: ServiceInstance, dst: ServiceInstance
    ) -> FlowEdge:
        abstract_edge = self.abstract.edge(src, dst)
        if abstract_edge is None:
            return FlowEdge(src, dst, UNREACHABLE, ())
        return FlowEdge(src, dst, abstract_edge.quality, abstract_edge.overlay_path)

    def record_compute(self, instance: ServiceInstance, seconds: float) -> None:
        self.local_compute_seconds += seconds
        self.per_node_compute[instance] = (
            self.per_node_compute.get(instance, 0.0) + seconds
        )

    def complete_sink(
        self,
        sink_sid: Sid,
        pins: Dict[Sid, ServiceInstance],
        pin_gens: Dict[Sid, int],
        edges: Dict[Tuple[Sid, Sid], FlowEdge],
        generation: int,
    ) -> None:
        if generation != self.generation:
            return  # a stale round's sink part; the restart superseded it
        self._sink_parts[sink_sid] = (dict(pins), dict(pin_gens), dict(edges))
        if len(self._sink_parts) == len(self.requirement.sinks) and not (
            self.done.triggered
        ):
            if self.config.required_bandwidth is None:
                self.done.succeed()
                return
            self._evaluate_completion()

    # -- graceful degradation (requirement-bearing runs) -------------------------

    def _delivered_bandwidth(self, graph: Optional[ServiceFlowGraph]) -> float:
        """Bottleneck bandwidth the graph delivers *right now*: committed
        edge qualities scaled by any active gray degradation ramps along
        each edge's realised overlay path."""
        if graph is None:
            return 0.0
        bottleneck = float("inf")
        for edge in graph.edges():
            bandwidth = edge.quality.bandwidth
            if not edge.quality.reachable:
                return 0.0
            if self.gray is not None:
                hops = (
                    list(zip(edge.overlay_path, edge.overlay_path[1:]))
                    if len(edge.overlay_path) >= 2
                    else [(edge.src, edge.dst)]
                )
                for hop_src, hop_dst in hops:
                    bandwidth *= self.gray.bandwidth_factor(
                        hop_src, hop_dst, self.env.now
                    )
            bottleneck = min(bottleneck, bandwidth)
        return 0.0 if bottleneck == float("inf") else bottleneck

    def _attempt_repair(
        self, graph: ServiceFlowGraph, required: float
    ) -> Optional[ServiceFlowGraph]:
        """Rung 1 of the ladder: re-decide only the weak services against
        alternative instances, suspects excluded, survivors pinned."""
        overlay = self.overlay
        if self.suspected:
            live = [
                inst
                for inst in overlay.instances()
                if inst not in self.suspected
            ]
            if self.source_instance in live:
                overlay = overlay.subgraph(live)
        weak: Set[Sid] = set()
        for edge in graph.edges():
            bandwidth = edge.quality.bandwidth
            if self.gray is not None:
                hops = (
                    list(zip(edge.overlay_path, edge.overlay_path[1:]))
                    if len(edge.overlay_path) >= 2
                    else [(edge.src, edge.dst)]
                )
                for hop_src, hop_dst in hops:
                    bandwidth *= self.gray.bandwidth_factor(
                        hop_src, hop_dst, self.env.now
                    )
            if bandwidth < required:
                weak.add(edge.src.sid)
                weak.add(edge.dst.sid)
        weak.discard(self.requirement.source)
        started = self.stopwatch.read()
        try:
            report = repair_flow_graph(
                graph,
                overlay,
                source_instance=self.source_instance,
                solver=ReductionSolver(
                    pareto=self.config.pareto,
                    enumeration_limit=self.config.enumeration_limit,
                ),
                force_repair=weak,
            )
        except FederationError:
            return None
        finally:
            self.record_compute(self.source_instance, self.stopwatch.read() - started)
        return report.graph

    def _evaluate_completion(self) -> None:
        """The degradation ladder, run at every tentative completion:
        commit when the requirement is met, otherwise repair in place,
        then re-federate (hysteresis-bounded), then serve DEGRADED."""
        if self.done.triggered:
            return
        required = self.config.required_bandwidth
        try:
            graph: Optional[ServiceFlowGraph] = self._assemble()
        except FederationError:
            graph = None
        achieved = self._delivered_bandwidth(graph)
        if graph is not None and achieved > self._best_bandwidth:
            self._best_graph, self._best_bandwidth = graph, achieved
        if graph is not None and achieved >= required:
            if self._degrade_seen:
                _M_DEGRADE_RECOVERED.inc()
                self._log(
                    "recovered",
                    f"re-federation restored bandwidth to {achieved:g} "
                    f">= {required:g}",
                )
            self._final_graph = graph
            self.achieved_bandwidth = achieved
            self.done.succeed()
            return
        self._degrade_seen = True
        _M_DEGRADE_DETECTED.inc()
        self._log(
            "degrade_detected",
            f"flow graph delivers {achieved:g} < required {required:g}",
        )
        # Rung 1: in-place repair against alternative instances (once).
        if graph is not None and not self._repair_used:
            self._repair_used = True
            _M_DEGRADE_REPAIRS.inc()
            repaired = self._attempt_repair(graph, required)
            if repaired is not None:
                repaired_achieved = self._delivered_bandwidth(repaired)
                self._log(
                    "degrade_repair",
                    f"in-place repair delivers {repaired_achieved:g} "
                    f"(was {achieved:g})",
                )
                if repaired_achieved > achieved:
                    graph, achieved = repaired, repaired_achieved
                    if achieved > self._best_bandwidth:
                        self._best_graph, self._best_bandwidth = graph, achieved
                if repaired_achieved >= required:
                    _M_DEGRADE_RECOVERED.inc()
                    self._log(
                        "recovered",
                        f"repair restored bandwidth to {repaired_achieved:g} "
                        f">= {required:g}",
                    )
                    self._final_graph = graph
                    self.achieved_bandwidth = achieved
                    self.done.succeed()
                    return
        # Rung 2: re-federate -- bounded, and hysteresis-damped so a
        # sagging overlay cannot trigger a flap storm of restarts.
        elapsed = self.env.now - self._last_refederate_at
        if (
            elapsed >= self.config.refederate_hysteresis
            and self.refederations < self.config.max_refederations
        ):
            self._last_refederate_at = self.env.now
            if self._try_refederate(
                f"delivered bandwidth {achieved:g} below requirement {required:g}"
            ):
                return  # a fresh round is in flight; its sinks re-evaluate
            if self.done.triggered:
                return  # the attempt was unrecoverable; the run is FAILED
        # Rung 3: serve at the best achievable bandwidth, explicitly.
        graph, achieved = self._best_graph, self._best_bandwidth
        if graph is None:
            self._fail_run(
                "degraded completion yielded no assemblable flow graph"
            )
            return
        self.degradation = DegradationRecord(
            time=self.env.now,
            required_bandwidth=required,
            achieved_bandwidth=achieved,
            reason=(
                "re-federation hysteresis window open"
                if elapsed < self.config.refederate_hysteresis
                else "re-federation budget exhausted"
            ),
        )
        _M_DEGRADE_SESSIONS.inc()
        self._log(
            "degraded",
            f"serving at {achieved:g}/{required:g} "
            f"({self.degradation.reason})",
        )
        self._final_graph = graph
        self.achieved_bandwidth = achieved
        self.done.succeed()

    # -- driving -----------------------------------------------------------------

    def run(self) -> SFlowResult:
        nodes = [_SFlowNode(inst, self) for inst in self.overlay.instances()]
        self._nodes = {node.me: node for node in nodes}
        self._span = obs_tracer().session(
            "sflow.federate",
            clock=SimClock(self.env),
            services=len(self.directory),
            instances=len(nodes),
            source=str(self.source_instance),
            chaos=self.chaos is not None,
        )
        # Causal stamping: while the session span is live, the transport
        # tags every send/deliver with a msg_id so the profiler can join
        # activations back through each hop (repro.obs.causal).
        self.network.set_trace_span(self._span)
        # Setup happened before the DES clock started ticking: report the
        # discovery and abstract-graph phases as zero-length sim-time spans
        # carrying their wall-clock cost.
        for phase in ("discovery", "abstract_graph"):
            self._span.child(phase).end(
                wall_seconds=self._setup_seconds[phase]
            )
        sampler: Optional[SeriesSampler] = None
        if self.config.sample_interval is not None:
            sampler = SeriesSampler(
                self.env, interval=self.config.sample_interval
            )
            sampler.install()
        for node in nodes:
            self.env.process(node.run())
        if self.chaos is not None:
            for event in self.chaos.schedule.events:
                self.env.process(self._chaos_driver(event))
        if self.config.deadline is not None:
            self.env.process(self._watchdog())
        if self.detector is not None:
            self.env.process(self._detector_sweep())
        initial = SFederate(
            residual=self.requirement,
            pins=((self.requirement.source, self.source_instance),),
            edges=(),
        )
        negotiate = self._span.child("negotiate")
        self.network.send(
            "consumer",
            self.source_instance,
            initial,
            latency=self.config.initial_latency,
            size=initial.size,
        )
        try:
            self.env.run(until=self.done)
        except FederationError as exc:
            # A node hit a protocol invariant violation mid-simulation;
            # surface it as a structured failure, never as an exception
            # escaping Environment.run().
            self._fail_run(f"protocol error: {exc}", force=True)
        except SimulationError as exc:
            # The event queue drained without completing -- e.g. every
            # message path died with no failover/deadline left to drive
            # recovery.  Starvation is a failure, not a crash.
            self._fail_run(f"protocol starved: {exc}", force=True)
        negotiate.end(generations=self.generation + 1)
        graph: Optional[ServiceFlowGraph] = None
        if self.config.required_bandwidth is not None:
            # The degradation ladder assembled (and possibly repaired) the
            # graph in-run; a failed run left it None.
            graph = self._final_graph if not self.failed else None
        elif not self.failed:
            try:
                graph = self._assemble()
            except FederationError as exc:
                self._fail_run(f"assembly failed: {exc}", force=True)
        if graph is None:
            outcome = FederationOutcome.FAILED
        elif self.degradation is not None:
            outcome = FederationOutcome.DEGRADED
        else:
            outcome = FederationOutcome.SUCCEEDED
        _M_SESSIONS.inc(outcome=outcome.value)
        _H_FEDERATION_TIME.observe(self.env.now)
        if self.config.required_bandwidth is not None and graph is not None:
            _H_DELIVERED_FRACTION.observe(
                min(
                    1.0,
                    (self.achieved_bandwidth or 0.0)
                    / self.config.required_bandwidth,
                )
            )
        recovery_latency: Optional[float] = None
        if self.recovery_log:
            recovery_latency = self.env.now - self.recovery_log[0].time
            _H_RECOVERY_TIME.observe(recovery_latency)
        series_bank: Dict[str, dict] = {}
        if sampler is not None:
            # One final manual scrape so the outcome metrics recorded just
            # above land in the series even when the run ended mid-interval.
            sampler.sample()
            series_bank = sampler.bank()
            sink = obs_tracer().sink
            if sink is not None:
                sampler.emit(sink)
        self._span.end(
            outcome=outcome.value,
            messages=self.network.stats.messages,
            bytes=self.network.stats.bytes,
            convergence_time=self.env.now,
            crashes=self.crashes,
            failovers=self.failovers,
            refederations=self.refederations,
            retransmissions=self.retransmissions,
            recovery_latency=recovery_latency,
            failure_reason=self.failure_reason,
        )
        self.network.set_trace_span(None)
        self._span = NULL_SPAN
        return SFlowResult(
            flow_graph=graph,
            convergence_time=self.env.now,
            messages=self.network.stats.messages,
            bytes=self.network.stats.bytes,
            local_compute_seconds=self.local_compute_seconds,
            node_activations=self.node_activations,
            link_state_messages=self.link_state_messages,
            per_node_compute=dict(self.per_node_compute),
            retransmissions=self.retransmissions,
            lost_messages=self.network.stats.lost,
            acks=self.acks_sent,
            outcome=outcome,
            failure_reason=self.failure_reason,
            recovery_log=tuple(self.recovery_log),
            crashes=self.crashes,
            failovers=self.failovers,
            refederations=self.refederations,
            degradation=self.degradation,
            achieved_bandwidth=self.achieved_bandwidth,
            suspected=tuple(sorted(str(inst) for inst in self.suspected)),
            series=series_bank,
        )

    def _assemble(self) -> ServiceFlowGraph:
        assignment: Dict[Sid, ServiceInstance] = {}
        gens: Dict[Sid, int] = {}
        edges: Dict[Tuple[Sid, Sid], FlowEdge] = {}
        for pins, pin_gens, part_edges in self._sink_parts.values():
            for sid, inst in pins.items():
                gen = pin_gens.get(sid, 0)
                existing = assignment.get(sid)
                if existing is None or gen > gens[sid]:
                    assignment[sid] = inst
                    gens[sid] = gen
                elif gen == gens[sid] and existing != inst:
                    raise FederationError(
                        f"sinks disagree on {sid!r}: {existing} vs {inst}"
                    )
            edges.update(part_edges)
        edges = {
            key: edge
            for key, edge in edges.items()
            if assignment.get(edge.src.sid) == edge.src
            and assignment.get(edge.dst.sid) == edge.dst
        }
        return ServiceFlowGraph(self.requirement, assignment, edges.values())


class SFlowAlgorithm:
    """The distributed algorithm behind the
    :class:`~repro.core.types.FederationAlgorithm` interface.

    ``solve`` runs a complete simulated federation and returns the final
    flow graph; the full :class:`SFlowResult` (convergence time, message
    counts, per-node compute, recovery log) of the most recent run is kept
    in :attr:`last_result`.
    """

    name = "sflow"

    def __init__(
        self,
        config: Optional[SFlowConfig] = None,
        *,
        stopwatch: Optional[Stopwatch] = None,
    ):
        self.config = config or SFlowConfig()
        #: Injectable host clock used for the solver-timing measurements
        #: (``local_compute_seconds``); tests pass a scripted fake.
        self.stopwatch = stopwatch if stopwatch is not None else Stopwatch()
        self.last_result: Optional[SFlowResult] = None

    def solve(
        self,
        requirement: ServiceRequirement,
        overlay: OverlayGraph,
        *,
        source_instance: Optional[ServiceInstance] = None,
        rng: Optional[random.Random] = None,
        chaos: Optional[ChaosPlan] = None,
    ) -> ServiceFlowGraph:
        result = self.federate(
            requirement, overlay, source_instance=source_instance, chaos=chaos
        )
        if result.flow_graph is None:
            raise FederationError(
                result.failure_reason or "federation failed"
            )
        return result.flow_graph

    def federate(
        self,
        requirement: ServiceRequirement,
        overlay: OverlayGraph,
        *,
        source_instance: Optional[ServiceInstance] = None,
        chaos: Optional[ChaosPlan] = None,
    ) -> SFlowResult:
        """Run the distributed federation and return the full result.

        With a :class:`~repro.network.failures.ChaosPlan` the run is
        disturbed mid-protocol; recovery is attempted per the config and an
        unrecoverable run comes back as a structured
        ``outcome=FederationOutcome.FAILED`` result -- this method never
        raises for in-protocol failures."""
        if source_instance is None:
            pool = overlay.instances_of(requirement.source)
            if not pool:
                raise FederationError(
                    f"source service {requirement.source!r} has no instance"
                )
            source_instance = pool[0]
        federation = _Federation(
            requirement, overlay, source_instance, self.config, chaos,
            stopwatch=self.stopwatch,
        )
        self.last_result = federation.run()
        return self.last_result
