"""sFlow: the fully distributed service federation algorithm (paper Sec. 4).

The federation process is message-driven:

1. The consumer delivers the service requirement to the **source service
   node** in an ``sfederate`` message.
2. Every service node that receives ``sfederate`` messages from *all* of its
   upstream services analyses its **local overlay view** (the two-hop
   vicinity of the paper, generalised to a configurable ``horizon``), runs
   the baseline algorithm plus the reduction heuristics on the residual
   requirement, commits its local decisions, and forwards new ``sfederate``
   messages -- carrying the shrunken residual requirement, the accumulated
   *pins* (service -> instance decisions) and the partial flow graph -- to
   the chosen instances of its immediate downstream services.
3. The sink service node(s) finalise the complete service flow graph.

Decision responsibility follows the paper's remark that "the tasks of
computing optimal service flow graphs are generally assumed by the
splitting node": the instance of service ``Y`` is pinned by ``Y``'s
**immediate dominator** in the requirement DAG.  For chain segments the
dominator is simply the upstream service (fully local decisions); for merge
services it is the split node where the branches diverged, which guarantees
all branches deliver their streams to the *same* merge instance.  Because a
dominator precedes ``Y`` on every requirement path, its pin is always
embedded in whatever ``sfederate`` message later reaches ``Y`` -- no extra
coordination round is needed.

Local knowledge model: each node plans over its ``horizon``-hop ego view of
the overlay (optionally materialised by the actual link-state protocol of
:mod:`repro.routing.link_state`).  Instances *outside* the view are known
only by directory (SID listings); the planner prices edges to them with an
optimistic uniform prior estimated from the links the node can see.  This
is what makes sFlow degrade gracefully -- but measurably -- as the network
grows, reproducing the downward trend of Fig. 10(a).

Everything runs on the discrete-event simulator: ``sfederate`` messages
take the latency of the realised overlay path they travel, so the reported
convergence time and message counts are measured, not modelled.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import FederationError, SimulationError
from repro.network.metrics import PathQuality, UNREACHABLE
from repro.network.overlay import OverlayGraph, ServiceInstance
from repro.routing.link_state import collect_local_views
from repro.routing.wang_crowcroft import shortest_widest_tree
from repro.services.abstract_graph import AbstractGraph
from repro.services.flowgraph import FlowEdge, ServiceFlowGraph
from repro.services.requirement import ServiceRequirement, Sid
from repro.core.reductions import AbstractView, ReductionSolver
from repro.sim.channels import Envelope, MessageNetwork
from repro.sim.engine import Environment, Event


@dataclass(frozen=True)
class SFederate:
    """The ``sfederate`` message: residual requirement + decisions so far."""

    residual: ServiceRequirement
    pins: Tuple[Tuple[Sid, ServiceInstance], ...]
    edges: Tuple[FlowEdge, ...]
    #: Non-zero when the transport is lossy: retransmission/dedup handle.
    msg_id: int = 0

    def pin_map(self) -> Dict[Sid, ServiceInstance]:
        return dict(self.pins)

    @property
    def size(self) -> int:
        """Abstract wire size used for byte accounting."""
        return 1 + len(self.residual) + len(self.pins) + 3 * len(self.edges)


@dataclass(frozen=True)
class Ack:
    """Acknowledgement of an ``sfederate`` message under a lossy transport."""

    msg_id: int


@dataclass
class SFlowConfig:
    """Tunables of the distributed algorithm.

    Attributes:
        horizon: overlay-hop radius of each node's local view (paper: 2).
        pareto: whether local solvers keep Pareto frontiers (exact local
            optimisation) or single shortest-widest-best entries (the
            paper's pure heuristic).
        use_link_state: materialise local views by running the bounded
            link-state protocol on the simulator instead of reading them off
            the overlay directly (slower, but fully distributed end to end).
        gossip_hints: let planners use the per-instance scalar quality
            summaries published in the directory when pricing edges beyond
            the horizon (see ``_PlanningView``); disable for the strictly
            local ablation.
        enumeration_limit: cap forwarded to the local
            :class:`~repro.core.reductions.ReductionSolver` instances.
        initial_latency: delay of the consumer's first ``sfederate`` message.
        loss_rate: probability that the transport loses any one protocol
            message (sfederate or ack).  Non-zero rates switch the protocol
            into reliable mode: receivers acknowledge and deduplicate,
            senders retransmit after ``retransmit_timeout`` up to
            ``max_retries`` times.  The consumer's initial request is
            assumed to use a reliable channel.
        loss_seed: RNG seed of the loss process (runs are reproducible).
        retransmit_timeout: virtual time before an unacknowledged
            ``sfederate`` is resent.
        max_retries: retransmissions before the sender gives up (which
            fails the federation loudly).
    """

    horizon: int = 2
    pareto: bool = True
    use_link_state: bool = False
    gossip_hints: bool = True
    enumeration_limit: int = 100_000
    initial_latency: float = 0.0
    loss_rate: float = 0.0
    loss_seed: int = 0
    retransmit_timeout: float = 30.0
    max_retries: int = 25

    def __post_init__(self) -> None:
        if self.horizon < 0:
            raise ValueError("horizon must be >= 0")
        if not (0.0 <= self.loss_rate < 1.0):
            raise ValueError("loss_rate must be in [0, 1)")
        if self.retransmit_timeout <= 0:
            raise ValueError("retransmit_timeout must be > 0")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")


@dataclass
class SFlowResult:
    """Everything a federation run produced and measured."""

    flow_graph: ServiceFlowGraph
    convergence_time: float
    messages: int
    bytes: int
    local_compute_seconds: float
    node_activations: int
    link_state_messages: int = 0
    per_node_compute: Dict[ServiceInstance, float] = field(default_factory=dict)
    #: Reliability accounting (zero on a lossless transport).
    retransmissions: int = 0
    lost_messages: int = 0
    acks: int = 0


class _PlanningView(AbstractView):
    """What one node knows when it plans: its local view plus the directory.

    * Instances inside the local view are priced by shortest-widest routing
      *within the view*.
    * Services invisible from here fall back to the global instance
      directory (SID listings are assumed discoverable, path qualities are
      not).  Edges touching out-of-view instances are priced with the
      per-instance **gossip hints**: a single scalar summary (mean incident
      link quality) each instance publishes alongside its directory entry.
      That is a realistic, cheap aggregate -- constant state per instance,
      propagated like any membership record -- and it gives blind decisions
      a fighting chance without leaking actual topology, so sFlow's
      correctness decays gracefully with network size (Fig. 10(a)) instead
      of collapsing to a coin flip.
    """

    def __init__(
        self,
        residual: ServiceRequirement,
        local_view: OverlayGraph,
        directory: Dict[Sid, Tuple[ServiceInstance, ...]],
        pins: Dict[Sid, ServiceInstance],
        hints: Optional[Dict[ServiceInstance, PathQuality]] = None,
    ) -> None:
        self._local = local_view
        self._hints = hints or {}
        self._pools: Dict[Sid, Tuple[ServiceInstance, ...]] = {}
        for sid in residual.services():
            pinned = pins.get(sid)
            if pinned is not None:
                self._pools[sid] = (pinned,)
                continue
            known = local_view.instances_of(sid)
            self._pools[sid] = known if known else directory.get(sid, ())
        self._trees: Dict[ServiceInstance, Dict] = {}
        self._prior = self._estimate_prior(local_view)

    @staticmethod
    def _estimate_prior(view: OverlayGraph) -> PathQuality:
        bandwidths: List[float] = []
        latencies: List[float] = []
        for inst in view.instances():
            for _, metrics in view.successors(inst):
                if metrics.reachable and metrics.bandwidth != float("inf"):
                    bandwidths.append(metrics.bandwidth)
                    latencies.append(metrics.latency)
        if not bandwidths:
            return PathQuality(1.0, 1.0)
        return PathQuality(
            sum(bandwidths) / len(bandwidths),
            sum(latencies) / len(latencies),
        )

    def instances_of(self, sid: Sid) -> Tuple[ServiceInstance, ...]:
        return self._pools.get(sid, ())

    def quality(self, src: ServiceInstance, dst: ServiceInstance) -> PathQuality:
        if src in self._local and dst in self._local:
            if src not in self._trees:
                self._trees[src] = shortest_widest_tree(self._local.successors, src)
            label = self._trees[src].get(dst)
            if label is not None and label.quality.reachable:
                return label.quality
            return UNREACHABLE
        # At least one endpoint is beyond the horizon: combine whatever
        # gossip hints exist, defaulting to the local-view prior.
        estimates = [
            self._hints.get(inst, self._prior) for inst in (src, dst)
        ]
        return PathQuality(
            min(e.bandwidth for e in estimates),
            sum(e.latency for e in estimates) / 2.0,
        )


class _SFlowNode:
    """The per-instance protocol endpoint (a simulation process)."""

    def __init__(self, me: ServiceInstance, federation: "_Federation") -> None:
        self.me = me
        self.fed = federation
        self.mailbox = federation.network.register(me)
        self.inbox: List[SFederate] = []
        self._seen_ids: set = set()

    def run(self):
        while True:
            envelope: Envelope = yield self.mailbox.get()
            payload = envelope.payload
            if isinstance(payload, Ack):
                self.fed.acknowledge(payload.msg_id)
                continue
            message: SFederate = payload
            if message.msg_id:
                # Reliable mode: always (re-)acknowledge -- the previous ack
                # may have been lost -- but process each message once.
                self.fed.send_ack(self.me, envelope.src, message.msg_id)
                if message.msg_id in self._seen_ids:
                    continue
                self._seen_ids.add(message.msg_id)
            self.inbox.append(message)
            expected = max(1, self.fed.requirement.in_degree(self.me.sid))
            if len(self.inbox) < expected:
                continue
            self._activate()

    def _activate(self) -> None:
        fed = self.fed
        my_sid = self.me.sid
        fed.node_activations += 1
        pins: Dict[Sid, ServiceInstance] = {}
        edges: Dict[Tuple[Sid, Sid], FlowEdge] = {}
        for message in self.inbox:
            for sid, inst in message.pins:
                existing = pins.get(sid)
                if existing is not None and existing != inst:
                    raise FederationError(
                        f"inconsistent pins for {sid!r} at {self.me}: "
                        f"{existing} vs {inst}"
                    )
                pins[sid] = inst
            for edge in message.edges:
                edges[edge.requirement_edge] = edge
        if pins.get(my_sid) != self.me:
            raise FederationError(
                f"{self.me} received an sfederate pinned to {pins.get(my_sid)}"
            )

        successors = fed.requirement.successors(my_sid)
        if not successors:
            fed.complete_sink(my_sid, pins, edges)
            return

        started = time.perf_counter()
        residual = fed.requirement.downstream_closure(my_sid)
        view = fed.local_view(self.me)
        planning = _PlanningView(residual, view, fed.directory, pins, fed.hints)
        solver = ReductionSolver(
            pareto=fed.config.pareto,
            enumeration_limit=fed.config.enumeration_limit,
        )
        try:
            assignment, _quality = solver.solve_assignment(
                residual, planning, source_instance=self.me
            )
        except FederationError:
            # The local view offers no feasible plan (e.g. a partitioned
            # vicinity); fall back to blind directory choices so the
            # federation still terminates -- with poor quality, as it should.
            assignment = {
                sid: pins.get(sid) or fed.directory[sid][0]
                for sid in residual.services()
            }
            assignment[my_sid] = self.me
        elapsed = time.perf_counter() - started
        fed.record_compute(self.me, elapsed)

        # Pin every service whose decision responsibility lies here.
        new_pins = dict(pins)
        for sid in residual.services():
            if sid == my_sid or sid in new_pins:
                continue
            if fed.idom[sid] == my_sid:
                new_pins[sid] = assignment[sid]

        pin_tuple = tuple(sorted(new_pins.items()))
        for succ_sid in successors:
            succ_inst = new_pins.get(succ_sid)
            if succ_inst is None:
                raise FederationError(
                    f"no pin for immediate downstream {succ_sid!r} at {self.me}; "
                    f"dominator {fed.idom[succ_sid]!r} failed to decide"
                )
            flow_edge = fed.realize_edge(self.me, succ_inst)
            out_edges = dict(edges)
            out_edges[flow_edge.requirement_edge] = flow_edge
            message = SFederate(
                residual=fed.requirement.downstream_closure(succ_sid),
                pins=pin_tuple,
                edges=tuple(out_edges[k] for k in sorted(out_edges)),
                msg_id=fed.next_msg_id(),
            )
            latency = (
                flow_edge.quality.latency
                if flow_edge.quality.reachable
                else fed.fallback_latency
            )
            fed.dispatch(self.me, succ_inst, message, latency)


class _Federation:
    """Shared state of one distributed federation run."""

    def __init__(
        self,
        requirement: ServiceRequirement,
        overlay: OverlayGraph,
        source_instance: ServiceInstance,
        config: SFlowConfig,
    ) -> None:
        self.requirement = requirement
        self.overlay = overlay
        self.source_instance = source_instance
        self.config = config
        self.env = Environment()
        self._loss_rng = random.Random(config.loss_seed)
        loss_fn = None
        if config.loss_rate > 0:
            loss_fn = (
                lambda src, dst, envelope: src != "consumer"
                and self._loss_rng.random() < config.loss_rate
            )
        self.network = MessageNetwork(self.env, loss_fn=loss_fn)
        self._msg_ids = 0
        self._pending_acks: Dict[int, Event] = {}
        self.retransmissions = 0
        self.acks_sent = 0
        self.idom = requirement.immediate_dominators()
        self.directory: Dict[Sid, Tuple[ServiceInstance, ...]] = {
            sid: overlay.instances_of(sid) for sid in requirement.services()
        }
        for sid, pool in self.directory.items():
            if not pool:
                raise FederationError(
                    f"required service {sid!r} has no instance in the overlay"
                )
        # Ground-truth abstract graph used only to realise committed edges
        # (established routing state), never for decision making.
        self.abstract = AbstractGraph.build(requirement, overlay)
        self.fallback_latency = self._mean_latency()
        self.hints: Dict[ServiceInstance, PathQuality] = (
            self._gossip_hints() if config.gossip_hints else {}
        )
        self.link_state_messages = 0
        self._views: Dict[ServiceInstance, OverlayGraph] = {}
        if config.use_link_state:
            report = collect_local_views(overlay, config.horizon)
            self._views = report.views
            self.link_state_messages = report.messages
        self.node_activations = 0
        self.local_compute_seconds = 0.0
        self.per_node_compute: Dict[ServiceInstance, float] = {}
        self._sink_parts: Dict[Sid, Tuple[Dict, Dict]] = {}
        self.done: Event = self.env.event()

    def _mean_latency(self) -> float:
        latencies = [
            metrics.latency
            for inst in self.overlay.instances()
            for _, metrics in self.overlay.successors(inst)
            if metrics.reachable
        ]
        return sum(latencies) / len(latencies) if latencies else 1.0

    def _gossip_hints(self) -> Dict[ServiceInstance, PathQuality]:
        """Per-instance scalar summaries: mean incident link quality.

        Each instance publishes one ``(bandwidth, latency)`` aggregate over
        its incident service links -- constant-size state a directory or
        gossip layer can carry -- which planners use to price edges to
        instances beyond their horizon."""
        hints: Dict[ServiceInstance, PathQuality] = {}
        for inst in self.overlay.instances():
            bandwidths: List[float] = []
            latencies: List[float] = []
            for _, metrics in self.overlay.successors(inst):
                if metrics.reachable and metrics.bandwidth != float("inf"):
                    bandwidths.append(metrics.bandwidth)
                    latencies.append(metrics.latency)
            for _, metrics in self.overlay.predecessors(inst):
                if metrics.reachable and metrics.bandwidth != float("inf"):
                    bandwidths.append(metrics.bandwidth)
                    latencies.append(metrics.latency)
            if bandwidths:
                hints[inst] = PathQuality(
                    sum(bandwidths) / len(bandwidths),
                    sum(latencies) / len(latencies),
                )
        return hints

    # -- transport (reliability layer) -------------------------------------------

    def next_msg_id(self) -> int:
        """Fresh ``sfederate`` id; 0 (no reliability) on a lossless link."""
        if self.config.loss_rate == 0:
            return 0
        self._msg_ids += 1
        return self._msg_ids

    def dispatch(
        self,
        src: ServiceInstance,
        dst: ServiceInstance,
        message: SFederate,
        latency: float,
    ) -> None:
        """Send an ``sfederate``: fire-and-forget when the transport is
        lossless, acknowledged-with-retransmission otherwise."""
        if message.msg_id == 0:
            self.network.send(src, dst, message, latency=latency, size=message.size)
            return
        ack_event = self.env.event()
        self._pending_acks[message.msg_id] = ack_event
        self.env.process(self._reliable_send(src, dst, message, latency, ack_event))

    def _reliable_send(
        self,
        src: ServiceInstance,
        dst: ServiceInstance,
        message: SFederate,
        latency: float,
        ack_event: Event,
    ):
        for attempt in range(self.config.max_retries + 1):
            self.network.send(
                src, dst, message, latency=latency, size=message.size
            )
            if attempt > 0:
                self.retransmissions += 1
            timeout = self.env.timeout(self.config.retransmit_timeout)
            yield self.env.any_of([ack_event, timeout])
            if ack_event.processed:
                return
        raise FederationError(
            f"sfederate {message.msg_id} from {src} to {dst} lost "
            f"{self.config.max_retries + 1} times; giving up"
        )

    def send_ack(
        self, src: ServiceInstance, dst, msg_id: int
    ) -> None:
        self.acks_sent += 1
        self.network.send(
            src, dst, Ack(msg_id), latency=self.fallback_latency, size=1
        )

    def acknowledge(self, msg_id: int) -> None:
        pending = self._pending_acks.pop(msg_id, None)
        if pending is not None and not pending.triggered:
            pending.succeed()

    # -- services used by nodes ------------------------------------------------

    def local_view(self, instance: ServiceInstance) -> OverlayGraph:
        if instance not in self._views:
            self._views[instance] = self.overlay.ego_view(
                instance, self.config.horizon
            )
        return self._views[instance]

    def realize_edge(
        self, src: ServiceInstance, dst: ServiceInstance
    ) -> FlowEdge:
        abstract_edge = self.abstract.edge(src, dst)
        if abstract_edge is None:
            return FlowEdge(src, dst, UNREACHABLE, ())
        return FlowEdge(src, dst, abstract_edge.quality, abstract_edge.overlay_path)

    def record_compute(self, instance: ServiceInstance, seconds: float) -> None:
        self.local_compute_seconds += seconds
        self.per_node_compute[instance] = (
            self.per_node_compute.get(instance, 0.0) + seconds
        )

    def complete_sink(
        self,
        sink_sid: Sid,
        pins: Dict[Sid, ServiceInstance],
        edges: Dict[Tuple[Sid, Sid], FlowEdge],
    ) -> None:
        self._sink_parts[sink_sid] = (pins, edges)
        if len(self._sink_parts) == len(self.requirement.sinks) and not (
            self.done.triggered
        ):
            self.done.succeed()

    # -- driving -----------------------------------------------------------------

    def run(self) -> SFlowResult:
        nodes = [_SFlowNode(inst, self) for inst in self.overlay.instances()]
        for node in nodes:
            self.env.process(node.run())
        initial = SFederate(
            residual=self.requirement,
            pins=((self.requirement.source, self.source_instance),),
            edges=(),
        )
        self.network.send(
            "consumer",
            self.source_instance,
            initial,
            latency=self.config.initial_latency,
            size=initial.size,
        )
        self.env.run(until=self.done)
        assignment: Dict[Sid, ServiceInstance] = {}
        edges: Dict[Tuple[Sid, Sid], FlowEdge] = {}
        for pins, part_edges in self._sink_parts.values():
            for sid, inst in pins.items():
                existing = assignment.get(sid)
                if existing is not None and existing != inst:
                    raise FederationError(
                        f"sinks disagree on {sid!r}: {existing} vs {inst}"
                    )
                assignment[sid] = inst
            edges.update(part_edges)
        graph = ServiceFlowGraph(self.requirement, assignment, edges.values())
        return SFlowResult(
            flow_graph=graph,
            convergence_time=self.env.now,
            messages=self.network.stats.messages,
            bytes=self.network.stats.bytes,
            local_compute_seconds=self.local_compute_seconds,
            node_activations=self.node_activations,
            link_state_messages=self.link_state_messages,
            per_node_compute=dict(self.per_node_compute),
            retransmissions=self.retransmissions,
            lost_messages=self.network.stats.lost,
            acks=self.acks_sent,
        )


class SFlowAlgorithm:
    """The distributed algorithm behind the
    :class:`~repro.core.types.FederationAlgorithm` interface.

    ``solve`` runs a complete simulated federation and returns the final
    flow graph; the full :class:`SFlowResult` (convergence time, message
    counts, per-node compute) of the most recent run is kept in
    :attr:`last_result`.
    """

    name = "sflow"

    def __init__(self, config: Optional[SFlowConfig] = None):
        self.config = config or SFlowConfig()
        self.last_result: Optional[SFlowResult] = None

    def solve(
        self,
        requirement: ServiceRequirement,
        overlay: OverlayGraph,
        *,
        source_instance: Optional[ServiceInstance] = None,
        rng: Optional[random.Random] = None,
    ) -> ServiceFlowGraph:
        result = self.federate(
            requirement, overlay, source_instance=source_instance
        )
        return result.flow_graph

    def federate(
        self,
        requirement: ServiceRequirement,
        overlay: OverlayGraph,
        *,
        source_instance: Optional[ServiceInstance] = None,
    ) -> SFlowResult:
        """Run the distributed federation and return the full result."""
        if source_instance is None:
            pool = overlay.instances_of(requirement.source)
            if not pool:
                raise FederationError(
                    f"source service {requirement.source!r} has no instance"
                )
            source_instance = pool[0]
        federation = _Federation(requirement, overlay, source_instance, self.config)
        self.last_result = federation.run()
        return self.last_result
