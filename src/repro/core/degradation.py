"""Shared graceful-degradation vocabulary.

A session that can no longer meet its bandwidth requirement has three
futures, tried in order by both the sFlow runtime
(:mod:`repro.core.sflow`) and the QoS monitor (:mod:`repro.core.monitor`):

1. **in-place repair** -- re-decide only the weak services against
   alternative instances (:mod:`repro.core.repair`);
2. **re-federation** -- restart the decision process from scratch,
   rate-limited by a hysteresis window so a sagging overlay cannot cause
   a flap storm;
3. **serve degraded** -- keep the best achievable flow graph and record
   the deficit explicitly instead of failing the session.

:class:`SessionState` names the resulting lifecycle
(``COMMITTED -> DEGRADED -> COMMITTED | FAILED``) and
:class:`DegradationRecord` is the explicit deficit record carried by
results and reports.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class SessionState(enum.Enum):
    """Lifecycle of a served federation session.

    ``COMMITTED``: the flow graph meets its bandwidth requirement.
    ``DEGRADED``: the session is still served, at the best achievable
    bandwidth, below requirement -- with an explicit
    :class:`DegradationRecord`.  ``FAILED``: no flow graph can be served
    at all.
    """

    COMMITTED = "committed"
    DEGRADED = "degraded"
    FAILED = "failed"


@dataclass(frozen=True)
class DegradationRecord:
    """One explicit below-requirement episode.

    Attributes:
        time: sim time the degradation was declared.
        required_bandwidth: what the session is supposed to deliver.
        achieved_bandwidth: what it actually delivers right now.
        reason: why the runtime settled for less (repair infeasible,
            re-federation budget exhausted, hysteresis window, ...).
    """

    time: float
    required_bandwidth: float
    achieved_bandwidth: float
    reason: str = ""

    def __post_init__(self) -> None:
        if self.required_bandwidth <= 0:
            raise ValueError("required_bandwidth must be > 0")
        if self.achieved_bandwidth < 0:
            raise ValueError("achieved_bandwidth must be >= 0")

    @property
    def delivered_fraction(self) -> float:
        """Achieved / required bandwidth, in [0, 1]."""
        return min(1.0, self.achieved_bandwidth / self.required_bandwidth)
