"""Runtime QoS monitoring of an established federation.

Closes the agility loop: a federation is only as good as the overlay under
it *right now*.  :class:`MonitoredFederation` keeps a service flow graph
under observation on the simulator:

* a **probe process** periodically re-prices every realised edge against
  the current overlay (a probe is what a real deployment would measure on
  the wire);
* when the observed bottleneck bandwidth falls below
  ``bandwidth_threshold`` x the value at federation time -- or an edge
  breaks outright (instance gone, no route) -- the monitor invokes the
  incremental repair of :mod:`repro.core.repair` against the current
  overlay and re-baselines;
* the run produces a :class:`MonitorReport` with the full quality timeline
  and every violation/repair event, which tests and examples assert on.

Overlay dynamics are injected by the experimenter through
:meth:`MonitoredFederation.schedule_mutation` -- any function from overlay
to overlay (the combinators in :mod:`repro.network.failures` compose
directly).

With :attr:`MonitorConfig.sample_interval` set, a
:class:`~repro.obs.timeseries.SeriesSampler` additionally scrapes metric
series during the run, and :attr:`MonitorConfig.slos` objectives are
graded after every scrape; :attr:`MonitorConfig.refederate_on_alert`
(default off) lets a firing burn-rate alert drive the same
hysteresis-bounded re-federation rung the probe ladder uses.  All three
default to the legacy bit-compatible behaviour.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.degradation import DegradationRecord, SessionState
from repro.core.reductions import ReductionSolver
from repro.core.repair import repair_flow_graph
from repro.errors import FederationError
from repro.network.overlay import OverlayGraph, ServiceInstance
from repro.obs import metrics as obs_metrics
from repro.obs.slo import SloEngine, SloSpec, SloStatus
from repro.obs.timeseries import SeriesSampler
from repro.obs.trace import NULL_SPAN, SimClock, tracer as obs_tracer
from repro.routing.oracle import RouteOracle
from repro.services.flowgraph import ServiceFlowGraph
from repro.services.requirement import ServiceRequirement
from repro.sim.engine import Environment

OverlayMutation = Callable[[OverlayGraph], OverlayGraph]

_M_EVENTS = obs_metrics.registry().counter(
    "monitor.events", "monitoring log entries by kind"
)
_G_BOTTLENECK = obs_metrics.registry().gauge(
    "monitor.bottleneck", "last observed bottleneck bandwidth"
)


@dataclass
class MonitorConfig:
    """Probe cadence and repair policy.

    Attributes:
        probe_interval: virtual time between QoS probes.
        bandwidth_threshold: repair triggers when the observed bottleneck
            drops below this fraction of the post-(re)federation baseline.
        max_repairs: hard cap on repairs per run (guards runaway churn).
        required_bandwidth: optional absolute end-to-end requirement.
            When set, the monitor runs the explicit session state machine
            (``COMMITTED -> DEGRADED -> COMMITTED | FAILED``): a probe
            below the requirement degrades the session and climbs the
            ladder (in-place repair, hysteresis-bounded re-federation,
            keep serving degraded); ``None`` (default) preserves the
            legacy relative-threshold repair loop bit for bit.
        recovery_probes: consecutive healthy probes required before a
            DEGRADED session is promoted back to COMMITTED (flap damping
            on the recovery edge).
        refederate_hysteresis: minimum virtual time between two
            degradation-triggered full re-federations.
        max_refederations: budget of full re-federations per run.
        sample_interval: optional sim-time interval at which a
            :class:`~repro.obs.timeseries.SeriesSampler` scrapes metric
            series during the run.  ``None`` (default) disables sampling
            and keeps the legacy event schedule bit for bit.
        slos: declarative :class:`~repro.obs.slo.SloSpec` objectives
            evaluated after every scrape (requires ``sample_interval``).
        refederate_on_alert: treat a firing burn-rate alert as a
            re-federation trigger, reusing the same hysteresis and budget
            as the probe-driven ladder.  Off by default.
    """

    probe_interval: float = 5.0
    bandwidth_threshold: float = 0.7
    max_repairs: int = 10
    required_bandwidth: Optional[float] = None
    recovery_probes: int = 2
    refederate_hysteresis: float = 30.0
    max_refederations: int = 1
    sample_interval: Optional[float] = None
    slos: Tuple[SloSpec, ...] = ()
    refederate_on_alert: bool = False

    def __post_init__(self) -> None:
        if self.probe_interval <= 0:
            raise ValueError("probe_interval must be > 0")
        if not (0 < self.bandwidth_threshold <= 1):
            raise ValueError("bandwidth_threshold must be in (0, 1]")
        if self.max_repairs < 0:
            raise ValueError("max_repairs must be >= 0")
        if self.required_bandwidth is not None and self.required_bandwidth <= 0:
            raise ValueError("required_bandwidth must be > 0 (or None)")
        if self.recovery_probes < 1:
            raise ValueError("recovery_probes must be >= 1")
        if self.refederate_hysteresis < 0:
            raise ValueError("refederate_hysteresis must be >= 0")
        if self.max_refederations < 0:
            raise ValueError("max_refederations must be >= 0")
        if self.sample_interval is not None and self.sample_interval <= 0:
            raise ValueError("sample_interval must be > 0 (or None)")
        self.slos = tuple(self.slos)
        if self.slos and self.sample_interval is None:
            raise ValueError("slos need sample_interval to be evaluated")
        if self.refederate_on_alert and not self.slos:
            raise ValueError("refederate_on_alert needs at least one SloSpec")


@dataclass(frozen=True)
class MonitorEvent:
    """One entry of the monitoring log.

    ``seq`` is the log position assigned at append time: several events can
    share one sim timestamp (a mutation firing in the same tick as a probe
    round), and ``(time, seq)`` is the total order the monitor observed
    them in.
    """

    time: float
    #: "probe" | "violation" | "repair" | "repair_failed" | "mutation"
    #: | "degrade" | "recover" | "refederate" | "failed" | "slo_alert"
    kind: str
    bottleneck: float
    detail: str = ""
    seq: int = 0


@dataclass
class MonitorReport:
    """Outcome of a monitored run.

    ``events`` is normalised to ``(time, seq)`` order on construction, so
    the timeline is stable even when callers assemble a report from events
    collected out of order.
    """

    events: List[MonitorEvent]
    final_graph: ServiceFlowGraph
    repairs: int
    #: Session state machine outputs (requirement-bearing runs only;
    #: legacy runs report COMMITTED with no degradations).
    final_state: SessionState = SessionState.COMMITTED
    degradations: Tuple[DegradationRecord, ...] = ()
    refederations: int = 0
    #: Telemetry-pipeline outputs (empty unless sampling/SLOs configured).
    series: Dict[str, dict] = field(default_factory=dict)
    slo_results: List[dict] = field(default_factory=list)
    slo_alerts: List[dict] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.events = sorted(self.events, key=lambda e: (e.time, e.seq))

    @property
    def timeline(self) -> List[Tuple[float, float]]:
        """(time, observed bottleneck bandwidth) per probe."""
        return [
            (e.time, e.bottleneck) for e in self.events if e.kind == "probe"
        ]

    def events_of(self, kind: str) -> List[MonitorEvent]:
        """Events of one kind, in log order; ``[]`` for unknown kinds."""
        return [e for e in self.events if e.kind == kind]


class MonitoredFederation:
    """A flow graph kept healthy against a mutating overlay."""

    def __init__(
        self,
        requirement: ServiceRequirement,
        overlay: OverlayGraph,
        *,
        source_instance: Optional[ServiceInstance] = None,
        config: Optional[MonitorConfig] = None,
        solver: Optional[ReductionSolver] = None,
    ) -> None:
        self.requirement = requirement
        self.config = config or MonitorConfig()
        self.solver = solver or ReductionSolver()
        self.env = Environment()
        self._overlay = overlay
        self._events: List[MonitorEvent] = []
        self._seq = 0
        self._span = NULL_SPAN
        self._repairs = 0
        self.graph = self.solver.solve(
            requirement, overlay, source_instance=source_instance
        )
        self._baseline = self.graph.bottleneck_bandwidth()
        self._source = self.graph.instance_for(requirement.source)
        #: Session state machine (active when required_bandwidth is set).
        self._state = SessionState.COMMITTED
        self._healthy_streak = 0
        self._degradations: List[DegradationRecord] = []
        self._refederations = 0
        self._last_refederate = -math.inf
        #: The overlay the ladder last tried a repair against -- a retry
        #: on the *same* overlay object cannot find anything new, so the
        #: repair rung re-arms only when a mutation swaps the overlay.
        self._repair_tried_on: Optional[OverlayGraph] = None

    # -- dynamics -------------------------------------------------------------

    @property
    def overlay(self) -> OverlayGraph:
        """The overlay as the monitor currently sees it."""
        return self._overlay

    def schedule_mutation(
        self, time: float, mutation: OverlayMutation, label: str = ""
    ) -> None:
        """Apply ``mutation`` to the live overlay at virtual ``time``."""
        if time < self.env.now:
            raise ValueError(f"cannot schedule mutation in the past ({time})")

        def fire(_event) -> None:
            self._overlay = mutation(self._overlay)
            self._record("mutation", self._probe(), label)

        event = self.env.event()
        event.callbacks.append(fire)
        event.succeed(delay=time - self.env.now)

    # -- logging ---------------------------------------------------------------

    def _record(
        self, kind: str, bottleneck: float, detail: str = ""
    ) -> MonitorEvent:
        """Append one log entry with a stable sequence number, mirroring it
        to the metrics registry and (when recording) the trace stream."""
        event = MonitorEvent(self.env.now, kind, bottleneck, detail, self._seq)
        self._seq += 1
        self._events.append(event)
        _M_EVENTS.inc(kind=kind)
        self._span.event(
            "monitor." + kind, bottleneck=bottleneck, detail=detail
        )
        return event

    # -- probing ---------------------------------------------------------------

    def _probe_edges(self) -> Dict[Tuple[str, str], float]:
        """Observed bandwidth of every realised edge on the current overlay."""
        observations: Dict[Tuple[str, str], float] = {}
        # Probe trees come from the process-wide oracle: repeated probe
        # rounds on an unchanged overlay are cache hits, and mutations
        # produce a new overlay object (new epoch), so a stale tree can
        # never be observed.
        oracle = RouteOracle.default()
        for edge in self.graph.edges():
            src, dst = edge.src, edge.dst
            key = edge.requirement_edge
            if src not in self._overlay or dst not in self._overlay:
                observations[key] = 0.0
                continue
            label = oracle.tree(self._overlay, src).get(dst)
            if label is None or not label.quality.reachable:
                observations[key] = 0.0
            else:
                observations[key] = label.quality.bandwidth
        return observations

    def _probe(self) -> float:
        """Observed bottleneck of the current graph on the current overlay."""
        observations = self._probe_edges()
        if not observations:
            return math.inf if not self.graph.edges() else 0.0
        return min(observations.values())

    def _do_repair(self, observed: float, force: set) -> bool:
        """One in-place repair attempt; True when the graph was replaced."""
        try:
            source = (
                self._source if self._source in self._overlay else None
            )
            report = repair_flow_graph(
                self.graph,
                self._overlay,
                source_instance=source,
                solver=self.solver,
                force_repair=force,
            )
        except FederationError as exc:
            self._record("repair_failed", observed, str(exc))
            return False
        self.graph = report.graph
        self._source = self.graph.instance_for(self.requirement.source)
        self._baseline = self.graph.bottleneck_bandwidth()
        self._repairs += 1
        self._record(
            "repair",
            self._baseline,
            f"re-decided {sorted(report.touched)}",
        )
        return True

    def _weak_services(self, floor_of) -> set:
        """Endpoints of degraded-but-working edges: the repair diagnosis
        only sees *broken* edges, so these must be forced."""
        force: set = set()
        observations = self._probe_edges()
        for edge in self.graph.edges():
            seen = observations.get(edge.requirement_edge, 0.0)
            if seen < floor_of(edge):
                force.update(edge.requirement_edge)
        force.discard(self.requirement.source)
        return force

    def _monitor_process(self, until: float):
        while self.env.now < until:
            yield self.env.timeout(self.config.probe_interval)
            observed = self._probe()
            _G_BOTTLENECK.set(observed)
            self._record("probe", observed)
            if self.config.required_bandwidth is not None:
                self._step_state(observed)
                continue
            if observed >= self._baseline * self.config.bandwidth_threshold:
                continue
            self._record(
                "violation",
                observed,
                f"below {self.config.bandwidth_threshold:.0%} of "
                f"baseline {self._baseline:.2f}",
            )
            if self._repairs >= self.config.max_repairs:
                continue
            self._do_repair(
                observed,
                self._weak_services(
                    lambda edge: edge.quality.bandwidth
                    * self.config.bandwidth_threshold
                ),
            )

    # -- session state machine (requirement-bearing runs) ------------------------

    def _step_state(self, observed: float) -> None:
        """One probe's worth of the COMMITTED/DEGRADED/FAILED lifecycle.

        Below-requirement probes degrade the session and climb the ladder:
        in-place repair first, then a full re-federation (hysteresis- and
        budget-bounded), else keep serving degraded.  Recovery back to
        COMMITTED requires ``recovery_probes`` consecutive healthy probes,
        so a flapping overlay cannot flap the session state.
        """
        required = self.config.required_bandwidth
        if observed >= required:
            if self._state is not SessionState.COMMITTED:
                self._healthy_streak += 1
                if self._healthy_streak >= self.config.recovery_probes:
                    self._state = SessionState.COMMITTED
                    self._record(
                        "recover",
                        observed,
                        f"{self._healthy_streak} consecutive healthy probes "
                        f">= {required:g}",
                    )
            return
        self._healthy_streak = 0
        if self._state is SessionState.COMMITTED:
            self._state = SessionState.DEGRADED
            self._degradations.append(
                DegradationRecord(
                    time=self.env.now,
                    required_bandwidth=required,
                    achieved_bandwidth=observed,
                    reason="probe below requirement",
                )
            )
            self._record("degrade", observed, f"below requirement {required:g}")
        # Rung 1: in-place repair against alternative instances -- once
        # per overlay version (retrying on an unchanged overlay cannot
        # find anything new and would just burn the repair budget).
        if (
            self._repairs < self.config.max_repairs
            and self._overlay is not self._repair_tried_on
        ):
            self._repair_tried_on = self._overlay
            if self._do_repair(
                observed, self._weak_services(lambda edge: required)
            ):
                if self._probe() >= required:
                    return  # recovery_probes consecutive probes confirm
        # Rung 2: full re-federation, hysteresis-damped and budget-bounded.
        if self._try_refederate(observed):
            return
        # Rung 3: keep serving at the best achievable bandwidth.  Only a
        # session delivering *nothing* without repair left is FAILED.
        if observed <= 0 and self._probe() <= 0:
            if self._state is not SessionState.FAILED:
                self._state = SessionState.FAILED
                self._record(
                    "failed", 0.0, "no bandwidth deliverable on any edge"
                )

    def _try_refederate(self, observed: float, reason: str = "") -> bool:
        """One hysteresis- and budget-bounded full re-federation attempt.

        Shared by the probe-driven ladder (rung 2) and the SLO alert
        trigger; returns True when this rung consumed the opportunity
        (whether or not the re-solve succeeded), False when hysteresis or
        the budget suppressed it.
        """
        if not (
            self.env.now - self._last_refederate
            >= self.config.refederate_hysteresis
            and self._refederations < self.config.max_refederations
        ):
            return False
        self._last_refederate = self.env.now
        try:
            source = (
                self._source if self._source in self._overlay else None
            )
            graph = self.solver.solve(
                self.requirement, self._overlay, source_instance=source
            )
        except FederationError as exc:
            self._record(
                "repair_failed", observed, f"re-federation infeasible: {exc}"
            )
        else:
            self.graph = graph
            self._source = graph.instance_for(self.requirement.source)
            self._baseline = graph.bottleneck_bandwidth()
            self._refederations += 1
            self._record(
                "refederate",
                self._probe(),
                f"round {self._refederations}: full re-solve on the "
                "current overlay" + (f" ({reason})" if reason else ""),
            )
        return True

    def _on_slo_alert(self, spec: SloSpec, status: SloStatus) -> None:
        """A burn-rate alert fired mid-run: log it and, when the config
        opts in, treat it exactly like a rung-2 degradation signal."""
        observed = self._probe()
        self._record(
            "slo_alert",
            observed,
            f"{spec.name} burn rate {status.burn_rate:.2f} "
            f"(>= {spec.burn_rate_threshold:g})",
        )
        if self.config.refederate_on_alert:
            self._try_refederate(observed, reason=f"slo {spec.name}")

    # -- driving -----------------------------------------------------------------

    def run(self, until: float) -> MonitorReport:
        """Run the monitored federation until virtual time ``until``."""
        if until <= 0:
            raise ValueError("until must be > 0")
        self._span = obs_tracer().session(
            "monitor.run",
            clock=SimClock(self.env),
            until=until,
            probe_interval=self.config.probe_interval,
        )
        sampler: Optional[SeriesSampler] = None
        engine: Optional[SloEngine] = None
        if self.config.sample_interval is not None:
            sampler = SeriesSampler(
                self.env, interval=self.config.sample_interval
            )
            if self.config.slos:
                engine = SloEngine(
                    self.config.slos, on_alert=self._on_slo_alert
                )
                sampler.add_observer(engine.observe)
            sampler.install()
        self.env.process(self._monitor_process(until))
        self.env.run(until=until)
        series_bank: Dict[str, dict] = {}
        if sampler is not None:
            sampler.sample()
            series_bank = sampler.bank()
            sink = obs_tracer().sink
            if sink is not None:
                sampler.emit(sink)
                if engine is not None:
                    engine.emit(sink)
        self._span.end(
            repairs=self._repairs,
            baseline=self._baseline,
            events=len(self._events),
        )
        self._span = NULL_SPAN
        return MonitorReport(
            events=list(self._events),
            final_graph=self.graph,
            repairs=self._repairs,
            final_state=self._state,
            degradations=tuple(self._degradations),
            refederations=self._refederations,
            series=series_bank,
            slo_results=engine.summary() if engine is not None else [],
            slo_alerts=list(engine.alerts) if engine is not None else [],
        )
