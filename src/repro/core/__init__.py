"""The paper's algorithms: baseline, reductions, sFlow, and the controls.

* :mod:`repro.core.baseline` -- the polynomial-time optimal algorithm for
  single-path requirements (paper Table 1).
* :mod:`repro.core.reductions` -- path reduction and split-and-merge
  reduction (paper Sec. 3.4), generalised into a recursive block
  decomposition with an exact dynamic program over series-parallel
  requirements.
* :mod:`repro.core.optimal` -- the global optimal benchmark: exhaustive
  instance assignment with branch-and-bound pruning.
* :mod:`repro.core.alternatives` -- the three control algorithms of the
  evaluation: random, fixed (greedy widest), and single service path.
* :mod:`repro.core.sflow` -- the fully distributed sFlow algorithm running
  on the discrete-event simulator.
* :mod:`repro.core.nphardness` -- the executable SAT reduction behind
  Theorem 1 (Maximum Service Flow Graph is NP-complete).
"""

from repro.core.baseline import BaselineAlgorithm, solve_path_requirement
from repro.core.reductions import (
    Block,
    GeneralBlock,
    ParallelBlock,
    PathBlock,
    ReductionSolver,
    SeriesBlock,
    decompose,
)
from repro.core.optimal import GlobalOptimalAlgorithm, optimal_flow_graph
from repro.core.alternatives import (
    FixedAlgorithm,
    RandomAlgorithm,
    ServicePathAlgorithm,
)
from repro.core.sflow import SFlowAlgorithm, SFlowConfig, SFlowResult
from repro.core.repair import RepairReport, diagnose, repair_flow_graph
from repro.core.monitor import MonitorConfig, MonitorEvent, MonitorReport, MonitoredFederation
from repro.core.multicast import ServiceTreeAlgorithm
from repro.core.types import FederationAlgorithm, FederationResult

__all__ = [
    "MonitorConfig",
    "MonitorEvent",
    "MonitorReport",
    "MonitoredFederation",
    "ServiceTreeAlgorithm",
    "RepairReport",
    "diagnose",
    "repair_flow_graph",
    "BaselineAlgorithm",
    "Block",
    "FederationAlgorithm",
    "FederationResult",
    "FixedAlgorithm",
    "GeneralBlock",
    "GlobalOptimalAlgorithm",
    "ParallelBlock",
    "PathBlock",
    "RandomAlgorithm",
    "ReductionSolver",
    "SFlowAlgorithm",
    "SFlowConfig",
    "SFlowResult",
    "SeriesBlock",
    "ServicePathAlgorithm",
    "decompose",
    "optimal_flow_graph",
    "solve_path_requirement",
]
