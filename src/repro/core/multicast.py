"""Service multicast trees: the related-work composition model.

Before service flow graphs, the state of the art beyond single paths was
the *service multicast tree* (Jin & Nahrstedt, ICC 2003; paper Sec. 1):
"a multicast tree may be constructed by merging multiple service paths
that share a subset of common services" -- the root is the source service,
the leaves are the sinks, and every intermediate service has exactly one
upstream.

:class:`ServiceTreeAlgorithm` reproduces that system as another comparison
point:

1. a **spanning tree** of the requirement is chosen (every service keeps
   its first upstream; tree-shaped requirements are unchanged);
2. the root->sink service paths of that tree are federated one at a time,
   longest first, with the classic *path merging* rule: services already
   assigned by an earlier path are pinned, and the remainder of the chain
   is solved by the layered shortest-widest DP around those pins;
3. the final assignment realises the **full requirement** -- for DAG
   requirements, the edges the tree dropped are priced at whatever quality
   the tree's choices happen to give them, which is precisely why
   tree-based systems underperform on split-and-merge workloads (the
   quantitative comparison lives in
   ``benchmarks/test_multicast_comparison.py``).

On TREE-class requirements the first federated path is optimal for itself,
but later paths inherit its pins -- the greedy merging artifact this module
exists to measure (see ``tests/core/test_multicast.py`` for a hand-built
case where it provably loses to the exact solver).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import FederationError
from repro.network.metrics import IDEAL, PathQuality, UNREACHABLE
from repro.network.overlay import OverlayGraph, ServiceInstance
from repro.services.abstract_graph import AbstractGraph
from repro.services.flowgraph import ServiceFlowGraph
from repro.services.requirement import ServiceRequirement, Sid


class ServiceTreeAlgorithm:
    """Path-merging service multicast trees as a
    :class:`~repro.core.types.FederationAlgorithm`."""

    name = "service_tree"

    def __init__(self) -> None:
        #: The spanning-tree parent map of the most recent solve.
        self.last_tree: Dict[Sid, Sid] = {}

    def solve(
        self,
        requirement: ServiceRequirement,
        overlay: OverlayGraph,
        *,
        source_instance: Optional[ServiceInstance] = None,
        rng: Optional[random.Random] = None,
    ) -> ServiceFlowGraph:
        abstract = AbstractGraph.build(requirement, overlay)
        parent = self._spanning_tree(requirement)
        self.last_tree = dict(parent)
        chains = self._root_to_sink_chains(requirement, parent)
        assignment: Dict[Sid, ServiceInstance] = {}
        if source_instance is not None:
            if source_instance.sid != requirement.source or (
                source_instance not in abstract.instances_of(requirement.source)
            ):
                raise FederationError(f"bad pinned source {source_instance}")
            assignment[requirement.source] = source_instance
        for chain in chains:
            self._federate_chain(chain, abstract, assignment)
        if requirement.source not in assignment:
            # Degenerate single-service requirement: no chains exist.
            assignment[requirement.source] = abstract.instances_of(
                requirement.source
            )[0]
        return ServiceFlowGraph.realize(abstract, assignment, strict=False)

    # -- tree construction ----------------------------------------------------

    @staticmethod
    def _spanning_tree(requirement: ServiceRequirement) -> Dict[Sid, Sid]:
        """Every non-source service keeps its first upstream service."""
        return {
            sid: requirement.predecessors(sid)[0]
            for sid in requirement.services()
            if sid != requirement.source
        }

    @staticmethod
    def _root_to_sink_chains(
        requirement: ServiceRequirement, parent: Dict[Sid, Sid]
    ) -> List[Tuple[Sid, ...]]:
        """Root->leaf service paths of the spanning tree, longest first.

        Leaves of the *tree* (services that are nobody's parent) -- not
        just the requirement's sinks -- so that every service lands on some
        chain even when the spanning tree demoted an interior DAG service
        to a leaf.  Longest-first is the classic merging order: the longest
        path fixes the most shared services, later (shorter) paths mostly
        reuse them.
        """
        parents_in_use = set(parent.values())
        leaves = [
            sid
            for sid in requirement.services()
            if sid not in parents_in_use and sid != requirement.source
        ]
        chains = []
        for leaf in leaves:
            chain = [leaf]
            while chain[-1] in parent:
                chain.append(parent[chain[-1]])
            chain.reverse()
            chains.append(tuple(chain))
        chains.sort(key=lambda c: (-len(c), c))
        return chains

    # -- per-chain federation ----------------------------------------------------

    @staticmethod
    def _federate_chain(
        chain: Sequence[Sid],
        abstract: AbstractGraph,
        assignment: Dict[Sid, ServiceInstance],
    ) -> None:
        """Layered shortest-widest DP along ``chain`` around existing pins.

        Mutates ``assignment`` with the chain's choices.  Raises
        :class:`FederationError` when the chain cannot be federated at all
        (no usable instances at some layer).
        """

        def pool(sid: Sid) -> Tuple[ServiceInstance, ...]:
            pinned = assignment.get(sid)
            return (pinned,) if pinned is not None else abstract.instances_of(sid)

        # layer: instance -> (quality so far, choices made on this chain)
        layer: Dict[ServiceInstance, Tuple[PathQuality, Dict[Sid, ServiceInstance]]]
        layer = {inst: (IDEAL, {chain[0]: inst}) for inst in pool(chain[0])}
        for sid in chain[1:]:
            nxt: Dict[
                ServiceInstance, Tuple[PathQuality, Dict[Sid, ServiceInstance]]
            ] = {}
            for inst in pool(sid):
                best: Optional[
                    Tuple[PathQuality, Dict[Sid, ServiceInstance]]
                ] = None
                for prev_inst, (quality, choices) in layer.items():
                    hop = abstract.quality(prev_inst, inst)
                    if not hop.reachable:
                        continue
                    extended = quality.extend(hop)
                    if best is None or extended.is_better_than(best[0]):
                        chosen = dict(choices)
                        chosen[sid] = inst
                        best = (extended, chosen)
                if best is not None:
                    nxt[inst] = best
            if not nxt:
                raise FederationError(
                    f"multicast chain breaks at service {sid!r} "
                    f"(pins so far: {sorted(assignment)})"
                )
            layer = nxt
        _quality, choices = max(layer.values(), key=lambda entry: entry[0])
        assignment.update(choices)
