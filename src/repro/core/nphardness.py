"""Executable NP-completeness machinery (paper Theorem 1).

The paper proves the **Maximum Service Flow Graph Problem** NP-complete by
reduction from SAT: given clauses ``C = {c_1..c_n}`` over variables
``U = {u_1..u_m}``,

* every clause ``c_i`` becomes a required service (a *service abstract
  node*), and every literal occurrence in the clause becomes one of its
  service instances;
* every pair of instances from *different* clauses is connected; the edge
  weight is ``1`` when the two literals are complementary (``p`` and
  ``not p``) and ``2`` otherwise;
* edges are directed by clause index, making ``c_1`` the source and ``c_n``
  the sink, and the bound is ``K = 2``.

A service flow graph (one instance per clause) with minimum edge weight
``>= K`` then exists **iff** the formula is satisfiable: selected literals
are pairwise non-complementary and can all be set true.

This module builds that transformation *onto the library's own data types*
(a :class:`~repro.services.requirement.ServiceRequirement` over clause
services and an :class:`~repro.network.overlay.OverlayGraph` whose link
bandwidths are the reduction weights), so the exact solver of
:mod:`repro.core.optimal` literally decides SAT for small formulas --
demonstrated against brute force in ``tests/core/test_nphardness.py``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import FederationError, RequirementError
from repro.network.metrics import PathQuality
from repro.network.overlay import OverlayGraph, ServiceInstance
from repro.services.flowgraph import ServiceFlowGraph
from repro.services.requirement import ServiceRequirement

#: A literal is a non-zero int: ``+v`` for variable ``v``, ``-v`` negated.
Literal = int
Clause = Tuple[Literal, ...]

#: Weight given to edges between complementary literals (the bottleneck
#: every satisfying selection must avoid) and to all other edges.
CONFLICT_WEIGHT = 1.0
COMPATIBLE_WEIGHT = 2.0
BOUND_K = 2.0


@dataclass(frozen=True)
class SatInstance:
    """A CNF formula: a conjunction of clauses over integer variables."""

    clauses: Tuple[Clause, ...]

    def __post_init__(self) -> None:
        if not self.clauses:
            raise ValueError("a SAT instance needs at least one clause")
        for clause in self.clauses:
            if not clause:
                raise ValueError("empty clause: the formula is trivially false")
            if any(lit == 0 for lit in clause):
                raise ValueError("literal 0 is not allowed")

    @property
    def variables(self) -> Tuple[int, ...]:
        return tuple(sorted({abs(lit) for clause in self.clauses for lit in clause}))

    def satisfied_by(self, assignment: Dict[int, bool]) -> bool:
        """Whether ``assignment`` (variable -> truth value) satisfies all
        clauses; unassigned variables default to False."""
        for clause in self.clauses:
            if not any(
                assignment.get(abs(lit), False) == (lit > 0) for lit in clause
            ):
                return False
        return True


@dataclass
class MsfgInstance:
    """The Maximum Service Flow Graph instance produced by the reduction."""

    requirement: ServiceRequirement
    overlay: OverlayGraph
    literal_of: Dict[ServiceInstance, Literal]
    bound: float


def msfg_from_sat(sat: SatInstance) -> MsfgInstance:
    """Theorem 1's polynomial transformation, on the library's own types.

    Clause ``c_i`` becomes service ``"c{i}"``; its ``k``-th literal becomes
    instance ``c{i}/<nid>``.  The requirement is the transitive tournament
    over clauses (every pair of clauses ordered by index), so a flow graph
    must select one literal per clause and is scored by the minimum weight
    over *all* cross-clause edges -- exactly the clique semantics of the
    proof.  Edge weights become link bandwidths; latency is a constant 1.
    """
    n = len(sat.clauses)
    requirement = (
        ServiceRequirement(nodes=["c0"])
        if n == 1
        else ServiceRequirement(
            edges=[(f"c{i}", f"c{j}") for i in range(n) for j in range(i + 1, n)]
        )
    )
    overlay = OverlayGraph()
    literal_of: Dict[ServiceInstance, Literal] = {}
    nid = 0
    instances_by_clause: List[List[ServiceInstance]] = []
    for i, clause in enumerate(sat.clauses):
        group = []
        for lit in clause:
            inst = ServiceInstance(f"c{i}", nid)
            nid += 1
            overlay.add_instance(inst)
            literal_of[inst] = lit
            group.append(inst)
        instances_by_clause.append(group)
    for i in range(n):
        for j in range(i + 1, n):
            for a in instances_by_clause[i]:
                for b in instances_by_clause[j]:
                    weight = (
                        CONFLICT_WEIGHT
                        if literal_of[a] == -literal_of[b]
                        else COMPATIBLE_WEIGHT
                    )
                    overlay.add_link(a, b, PathQuality(weight, 1.0))
    return MsfgInstance(requirement, overlay, literal_of, BOUND_K)


def decode_assignment(
    instance: MsfgInstance, flow_graph: ServiceFlowGraph
) -> Dict[int, bool]:
    """Truth assignment from a flow graph's selected literals.

    Selected literals are set true; variables no literal mentions default to
    False ("set the rest of the variables randomly", says the proof -- we
    pick deterministically).  Raises :class:`FederationError` if the
    selection is internally contradictory, which a flow graph meeting the
    bound never is.
    """
    assignment: Dict[int, bool] = {}
    for inst in flow_graph.assignment.values():
        lit = instance.literal_of[inst]
        var, value = abs(lit), lit > 0
        if assignment.get(var, value) != value:
            raise FederationError(
                f"flow graph selects both {var} and its negation"
            )
        assignment[var] = value
    return assignment


def flow_graph_min_weight(flow_graph: ServiceFlowGraph) -> float:
    """``min(w(e))`` over the flow graph's edges -- the quantity Theorem 1
    bounds by ``K`` (identical to the bottleneck bandwidth here).

    A single-clause formula reduces to an edgeless flow graph, whose
    minimum over zero edges is vacuously ``+inf`` (any literal selection
    meets the bound)."""
    if not flow_graph.edges():
        return float("inf")
    return flow_graph.bottleneck_bandwidth()


def _direct_abstract(instance: MsfgInstance):
    """Abstract graph over *direct* links only.

    Theorem 1 scores a selection by the weight of the direct edges between
    the chosen literal nodes.  Routed abstract edges would let the solver
    dodge a weight-1 conflict edge by relaying through a third clause's
    instance (two weight-2 hops), which the proof's semantics forbid, so the
    reduction prices each clause pair by its direct link alone.
    """
    from repro.services.abstract_graph import AbstractEdge, AbstractGraph

    requirement, overlay = instance.requirement, instance.overlay
    instances = {sid: overlay.instances_of(sid) for sid in requirement.services()}
    edges = {}
    for a_sid, b_sid in requirement.edges():
        for a in instances[a_sid]:
            for b in instances[b_sid]:
                link = overlay.link(a, b)
                if link is not None:
                    edges[(a, b)] = AbstractEdge(a, b, link.metrics, (a, b))
    return AbstractGraph(requirement, instances, edges)


def solve_sat_via_msfg(sat: SatInstance) -> Optional[Dict[int, bool]]:
    """Decide SAT by solving the reduced MSFG instance exactly.

    Returns a satisfying assignment, or ``None`` when the optimal flow
    graph's minimum edge weight falls below ``K`` (i.e. every selection is
    forced through a complementary pair -> unsatisfiable).
    """
    from repro.core.optimal import optimal_flow_graph

    instance = msfg_from_sat(sat)
    graph = optimal_flow_graph(
        instance.requirement, instance.overlay, abstract=_direct_abstract(instance)
    )
    if flow_graph_min_weight(graph) < instance.bound:
        return None
    assignment = decode_assignment(instance, graph)
    if not sat.satisfied_by(
        {var: assignment.get(var, False) for var in sat.variables}
    ):
        raise FederationError("reduction produced a non-satisfying assignment")
    return {var: assignment.get(var, False) for var in sat.variables}


def brute_force_sat(sat: SatInstance) -> Optional[Dict[int, bool]]:
    """Reference SAT decision by enumeration (exponential; for tests)."""
    variables = sat.variables
    for values in itertools.product((False, True), repeat=len(variables)):
        assignment = dict(zip(variables, values))
        if sat.satisfied_by(assignment):
            return assignment
    return None
