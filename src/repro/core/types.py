"""Common types shared by every federation algorithm.

Each algorithm in :mod:`repro.core` implements the
:class:`FederationAlgorithm` protocol: given a requirement and an overlay
(and optionally a pinned source instance and an RNG), produce a
:class:`~repro.services.flowgraph.ServiceFlowGraph`.  The experiment harness
in :mod:`repro.eval` treats all algorithms uniformly through this interface
and wraps outputs in :class:`FederationResult` with timing attached.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Protocol, runtime_checkable

from repro.network.overlay import OverlayGraph, ServiceInstance
from repro.obs.clock import Stopwatch
from repro.services.flowgraph import ServiceFlowGraph
from repro.services.requirement import ServiceRequirement


@runtime_checkable
class FederationAlgorithm(Protocol):
    """The uniform algorithm interface used by the evaluation harness."""

    #: Short identifier used in experiment tables ("sflow", "random", ...).
    name: str

    def solve(
        self,
        requirement: ServiceRequirement,
        overlay: OverlayGraph,
        *,
        source_instance: Optional[ServiceInstance] = None,
        rng: Optional[random.Random] = None,
    ) -> ServiceFlowGraph:
        """Compute a service flow graph for ``requirement`` over ``overlay``."""
        ...  # pragma: no cover - protocol


@dataclass
class FederationResult:
    """An algorithm run plus the measurements the evaluation reports."""

    algorithm: str
    flow_graph: ServiceFlowGraph
    elapsed_seconds: float
    extras: Dict[str, Any] = field(default_factory=dict)

    @property
    def bandwidth(self) -> float:
        return self.flow_graph.bottleneck_bandwidth()

    @property
    def latency(self) -> float:
        return self.flow_graph.end_to_end_latency()


def timed_solve(
    algorithm: FederationAlgorithm,
    requirement: ServiceRequirement,
    overlay: OverlayGraph,
    *,
    source_instance: Optional[ServiceInstance] = None,
    rng: Optional[random.Random] = None,
    stopwatch: Optional[Stopwatch] = None,
) -> FederationResult:
    """Run an algorithm under injectable host-clock timing.

    Timing goes through a :class:`repro.obs.clock.Stopwatch` (a fresh
    default one unless the caller injects its own -- tests inject a fake
    clock to get deterministic elapsed values).  For the distributed
    sFlow algorithm the wall time measured here covers the whole
    simulated federation; the algorithm additionally reports its pure
    local-computation time through ``extras`` (see
    :class:`repro.core.sflow.SFlowResult`).
    """
    stopwatch = stopwatch if stopwatch is not None else Stopwatch()
    start = stopwatch.read()
    graph = algorithm.solve(
        requirement, overlay, source_instance=source_instance, rng=rng
    )
    elapsed = stopwatch.read() - start
    extras: Dict[str, Any] = {}
    last = getattr(algorithm, "last_result", None)
    if last is not None:
        extras["detail"] = last
    return FederationResult(algorithm.name, graph, elapsed, extras)
