"""Global optimal service flow graph by branch-and-bound search.

The paper proves the Maximum Service Flow Graph Problem NP-complete
(Theorem 1) and computes "the global optimal resource-efficient service flow
graph" as the evaluation benchmark.  This module is that benchmark: an exact
search over all instance assignments, pruned aggressively so the paper's
problem sizes (overlays of 10-50 nodes, requirements of a handful of
services) solve in milliseconds.

Optimality criterion (matching the flow-graph quality used everywhere in
this reproduction): lexicographically maximise

1. the **bottleneck bandwidth** -- the minimum bandwidth over every realised
   requirement edge (the paper equates overall throughput with the
   bottleneck link, Sec. 3.2), then
2. the negated **critical-path latency** from the source to the slowest
   sink.

Pruning: services are assigned in topological order.  For a partial
assignment we maintain the bandwidth of the already-realised edges and an
optimistic bound for the rest (each unassigned edge contributes the best
bandwidth over all still-possible instance pairs).  A branch dies when its
optimistic bandwidth falls below the incumbent's, or ties it while an
optimistic latency bound (critical path over per-edge minimum latencies)
cannot beat the incumbent's latency.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Tuple

from repro.errors import FederationError
from repro.network.metrics import PathQuality
from repro.network.overlay import OverlayGraph, ServiceInstance
from repro.services.abstract_graph import AbstractGraph
from repro.services.flowgraph import ServiceFlowGraph
from repro.services.requirement import ServiceRequirement, Sid


def optimal_flow_graph(
    requirement: ServiceRequirement,
    overlay: OverlayGraph,
    *,
    source_instance: Optional[ServiceInstance] = None,
    abstract: Optional[AbstractGraph] = None,
) -> ServiceFlowGraph:
    """The provably best flow graph under the bottleneck/latency order.

    Raises :class:`FederationError` when no complete feasible assignment
    exists (some requirement edge cannot be realised at all).
    """
    if abstract is None:
        abstract = AbstractGraph.build(requirement, overlay)
    searcher = _Searcher(requirement, abstract, source_instance)
    assignment = searcher.search()
    if assignment is None:
        raise FederationError(
            f"requirement {requirement!r} has no feasible federation"
        )
    return ServiceFlowGraph.realize(abstract, assignment)


class _Searcher:
    """Depth-first branch-and-bound over instance assignments."""

    def __init__(
        self,
        requirement: ServiceRequirement,
        abstract: AbstractGraph,
        source_instance: Optional[ServiceInstance],
    ) -> None:
        self.req = requirement
        self.abstract = abstract
        self.order: Tuple[Sid, ...] = requirement.topological_order()
        self.pools: Dict[Sid, Tuple[ServiceInstance, ...]] = {}
        for sid in self.order:
            pool = abstract.instances_of(sid)
            if sid == requirement.source and source_instance is not None:
                if source_instance.sid != sid or source_instance not in pool:
                    raise FederationError(
                        f"pinned source {source_instance} is not an instance "
                        f"of {sid!r}"
                    )
                pool = (source_instance,)
            self.pools[sid] = pool
        # Per requirement edge: the best achievable bandwidth and least
        # achievable latency over all instance pairs (admissible bounds).
        self.edge_best_bw: Dict[Tuple[Sid, Sid], float] = {}
        self.edge_min_lat: Dict[Tuple[Sid, Sid], float] = {}
        for a_sid, b_sid in requirement.edges():
            best_bw = 0.0
            min_lat = math.inf
            for a in self.pools[a_sid]:
                for b in self.pools[b_sid]:
                    quality = abstract.quality(a, b)
                    if not quality.reachable:
                        continue
                    best_bw = max(best_bw, quality.bandwidth)
                    min_lat = min(min_lat, quality.latency)
            self.edge_best_bw[(a_sid, b_sid)] = best_bw
            self.edge_min_lat[(a_sid, b_sid)] = min_lat
        self.incumbent: Optional[Dict[Sid, ServiceInstance]] = None
        self.incumbent_quality: Optional[PathQuality] = None
        self.nodes_explored = 0

    # -- search ------------------------------------------------------------

    def search(self) -> Optional[Dict[Sid, ServiceInstance]]:
        if any(bw <= 0 for bw in self.edge_best_bw.values()):
            return None  # some edge is unrealisable outright
        self._descend(0, {}, math.inf)
        return self.incumbent

    def _descend(
        self,
        depth: int,
        assignment: Dict[Sid, ServiceInstance],
        bottleneck: float,
    ) -> None:
        self.nodes_explored += 1
        if depth == len(self.order):
            quality = self._evaluate(assignment)
            if quality is not None and (
                self.incumbent_quality is None
                or quality.is_better_than(self.incumbent_quality)
            ):
                self.incumbent = dict(assignment)
                self.incumbent_quality = quality
            return
        sid = self.order[depth]
        candidates: List[Tuple[float, float, ServiceInstance]] = []
        for inst in self.pools[sid]:
            worst_bw = math.inf
            lat_sum = 0.0
            feasible = True
            for pred in self.req.predecessors(sid):
                quality = self.abstract.quality(assignment[pred], inst)
                if not quality.reachable:
                    feasible = False
                    break
                worst_bw = min(worst_bw, quality.bandwidth)
                lat_sum += quality.latency
            if feasible:
                candidates.append((worst_bw, lat_sum, inst))
        # Explore the widest-incoming instance first: good incumbents early
        # make the bandwidth bound bite sooner.
        candidates.sort(key=lambda c: (-c[0], c[1]))
        for worst_bw, _lat, inst in candidates:
            new_bottleneck = min(bottleneck, worst_bw)
            if not self._promising(depth, new_bottleneck, assignment, sid, inst):
                continue
            assignment[sid] = inst
            self._descend(depth + 1, assignment, new_bottleneck)
            del assignment[sid]

    def _promising(
        self,
        depth: int,
        bottleneck: float,
        assignment: Dict[Sid, ServiceInstance],
        sid: Sid,
        inst: ServiceInstance,
    ) -> bool:
        """Can this branch still strictly beat the incumbent?"""
        if self.incumbent_quality is None:
            return bottleneck > 0
        # Optimistic bandwidth: edges among later services can at best
        # achieve their precomputed maxima.
        optimistic = bottleneck
        assigned = set(assignment) | {sid}
        for edge, best_bw in self.edge_best_bw.items():
            if edge[0] in assigned and edge[1] in assigned:
                continue
            optimistic = min(optimistic, best_bw)
        target = self.incumbent_quality
        if optimistic < target.bandwidth:
            return False
        if optimistic > target.bandwidth:
            return True
        # Bandwidth tie: compare an optimistic latency lower bound.
        lower = self._latency_lower_bound(assignment, sid, inst)
        return lower < target.latency

    def _latency_lower_bound(
        self,
        assignment: Dict[Sid, ServiceInstance],
        sid: Sid,
        inst: ServiceInstance,
    ) -> float:
        """Critical path with exact latencies where both ends are assigned
        and per-edge minima elsewhere (admissible: never overestimates)."""
        chosen = dict(assignment)
        chosen[sid] = inst
        finish: Dict[Sid, float] = {}
        for service in self.order:
            best = 0.0
            for pred in self.req.predecessors(service):
                a = chosen.get(pred)
                b = chosen.get(service)
                if a is not None and b is not None:
                    lat = self.abstract.quality(a, b).latency
                else:
                    lat = self.edge_min_lat[(pred, service)]
                best = max(best, finish[pred] + lat)
            finish[service] = best
        return max(finish[s] for s in self.req.sinks)

    def _evaluate(
        self, assignment: Dict[Sid, ServiceInstance]
    ) -> Optional[PathQuality]:
        bandwidth = math.inf
        finish: Dict[Sid, float] = {self.req.source: 0.0}
        for sid in self.order[1:]:
            best = 0.0
            for pred in self.req.predecessors(sid):
                quality = self.abstract.quality(assignment[pred], assignment[sid])
                if not quality.reachable:
                    return None
                bandwidth = min(bandwidth, quality.bandwidth)
                best = max(best, finish[pred] + quality.latency)
            finish[sid] = best
        latency = max(finish[s] for s in self.req.sinks)
        return PathQuality(bandwidth, latency)


class GlobalOptimalAlgorithm:
    """The exhaustive benchmark as a
    :class:`~repro.core.types.FederationAlgorithm`."""

    name = "optimal"

    def __init__(self) -> None:
        self.last_nodes_explored = 0

    def solve(
        self,
        requirement: ServiceRequirement,
        overlay: OverlayGraph,
        *,
        source_instance: Optional[ServiceInstance] = None,
        rng: Optional[random.Random] = None,
    ) -> ServiceFlowGraph:
        abstract = AbstractGraph.build(requirement, overlay)
        searcher = _Searcher(requirement, abstract, source_instance)
        assignment = searcher.search()
        self.last_nodes_explored = searcher.nodes_explored
        if assignment is None:
            raise FederationError(
                f"requirement {requirement!r} has no feasible federation"
            )
        return ServiceFlowGraph.realize(abstract, assignment)
