"""Incremental repair of service flow graphs after failures.

The "agile" half of the paper's title: when instances or links disappear
under an established federation, re-running the whole algorithm from
scratch both wastes work and churns services that were perfectly healthy.
This module repairs incrementally:

1. **diagnose** -- find the services whose assigned instance vanished and
   the requirement edges whose realisation broke (endpoint gone, or no
   usable overlay path left);
2. **scope** -- the repair set is the broken services plus nothing else;
   every surviving assignment is *pinned*;
3. **re-solve** -- run the :class:`~repro.core.reductions.ReductionSolver`
   over the post-failure overlay with the pins in place, so only the
   repair set is actually re-decided;
4. **fall back** -- if the pinned problem is infeasible (a survivor's only
   routes died with the failure), progressively unpin the survivors
   adjacent to the broken region and retry, degenerating to a full
   re-federation in the worst case.

:func:`repair_flow_graph` returns a :class:`RepairReport` with the new
graph and locality metrics (how much of the old assignment survived), which
the ablation benchmark ``benchmarks/test_ablation_repair.py`` compares
against from-scratch re-federation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.core.reductions import AbstractView, ReductionSolver
from repro.errors import FederationError
from repro.network.overlay import OverlayGraph, ServiceInstance
from repro.services.abstract_graph import AbstractGraph
from repro.services.flowgraph import ServiceFlowGraph
from repro.services.requirement import ServiceRequirement, Sid


@dataclass
class RepairReport:
    """Outcome of an incremental repair."""

    graph: ServiceFlowGraph
    repaired_services: FrozenSet[Sid]
    unpinned_services: FrozenSet[Sid]
    preserved_fraction: float
    full_refederation: bool

    @property
    def touched(self) -> FrozenSet[Sid]:
        """Everything the repair was allowed to re-decide."""
        return self.repaired_services | self.unpinned_services


class _PinnedView(AbstractView):
    """An abstract view whose pools are collapsed to pinned instances."""

    def __init__(
        self, base: AbstractGraph, pins: Dict[Sid, ServiceInstance]
    ) -> None:
        self._base = base
        self._pins = pins

    def instances_of(self, sid: Sid) -> Tuple[ServiceInstance, ...]:
        pinned = self._pins.get(sid)
        if pinned is not None:
            return (pinned,)
        return self._base.instances_of(sid)

    def quality(self, src: ServiceInstance, dst: ServiceInstance):
        return self._base.quality(src, dst)


def diagnose(
    flow_graph: ServiceFlowGraph,
    overlay: OverlayGraph,
    abstract: Optional[AbstractGraph] = None,
) -> FrozenSet[Sid]:
    """Services whose assignment or incident edges no longer work.

    A service is broken when its assigned instance left the overlay, or
    when some incident requirement edge has no usable route between the
    assigned endpoints any more (both endpoints of a broken edge are
    flagged -- either side may be the one worth moving).
    """
    requirement = flow_graph.requirement
    if abstract is None:
        abstract = AbstractGraph.build(requirement, overlay)
    broken: Set[Sid] = set()
    assignment = flow_graph.assignment
    for sid, inst in assignment.items():
        if inst not in overlay:
            broken.add(sid)
    for a_sid, b_sid in requirement.edges():
        a, b = assignment.get(a_sid), assignment.get(b_sid)
        if a is None or b is None:
            broken.update((a_sid, b_sid))
            continue
        if a_sid in broken or b_sid in broken:
            continue
        if not abstract.quality(a, b).reachable:
            broken.update((a_sid, b_sid))
    return frozenset(broken)


def repair_flow_graph(
    flow_graph: ServiceFlowGraph,
    overlay: OverlayGraph,
    *,
    source_instance: Optional[ServiceInstance] = None,
    solver: Optional[ReductionSolver] = None,
    force_repair: Iterable[Sid] = (),
) -> RepairReport:
    """Repair ``flow_graph`` against the (post-failure) ``overlay``.

    Args:
        flow_graph: the federation established before the failure.
        overlay: the overlay as it is *now*.
        source_instance: optionally re-pin the source (it is protected by
            default when it survived the failure).
        solver: reduction solver to use (defaults to the exact Pareto one).
        force_repair: services to re-decide even though their assignment
            still *works* -- the QoS monitor passes the endpoints of
            degraded (but not broken) edges here.

    Returns:
        A :class:`RepairReport`.  ``preserved_fraction`` counts surviving
        services that kept their original instance.

    Raises:
        FederationError: when even a full re-federation is infeasible on
            the post-failure overlay.
    """
    requirement = flow_graph.requirement
    solver = solver or ReductionSolver()
    abstract = AbstractGraph.build(requirement, overlay)
    forced = frozenset(force_repair)
    unknown = forced - set(requirement.services())
    if unknown:
        raise FederationError(f"cannot force repair of unknown services {sorted(unknown)}")
    broken = diagnose(flow_graph, overlay, abstract) | forced
    old_assignment = flow_graph.assignment

    if source_instance is None:
        survivor = old_assignment.get(requirement.source)
        if survivor is not None and survivor in overlay:
            source_instance = survivor

    if not broken:
        # Nothing to do: re-realise (link qualities may have changed).
        new_graph = ServiceFlowGraph.realize(abstract, old_assignment)
        return RepairReport(
            graph=new_graph,
            repaired_services=frozenset(),
            unpinned_services=frozenset(),
            preserved_fraction=1.0,
            full_refederation=False,
        )

    # Progressively widen the repair scope until the pinned problem is
    # feasible: first just the broken services, then their requirement
    # neighbours, and so on out to a full re-federation.
    scope: Set[Sid] = set(broken)
    while True:
        pins = {
            sid: inst
            for sid, inst in old_assignment.items()
            if sid not in scope and inst in overlay
        }
        if source_instance is not None:
            pins[requirement.source] = source_instance
        try:
            assignment, _quality = solver.solve_assignment(
                requirement,
                _PinnedView(abstract, pins),
                source_instance=pins.get(requirement.source),
            )
            break
        except FederationError:
            widened = _widen(requirement, scope)
            if widened == scope:
                raise  # already a full re-federation and still infeasible
            scope = widened

    new_graph = ServiceFlowGraph.realize(abstract, assignment)
    survivors = [
        sid
        for sid, inst in old_assignment.items()
        if inst in overlay
    ]
    preserved = sum(
        1 for sid in survivors if assignment.get(sid) == old_assignment[sid]
    )
    return RepairReport(
        graph=new_graph,
        repaired_services=broken,
        unpinned_services=frozenset(scope - broken),
        preserved_fraction=(preserved / len(survivors)) if survivors else 0.0,
        full_refederation=scope >= set(requirement.services()),
    )


def _widen(requirement: ServiceRequirement, scope: Set[Sid]) -> Set[Sid]:
    """One ring of requirement-neighbours around the current scope."""
    widened = set(scope)
    for sid in scope:
        widened.update(requirement.successors(sid))
        widened.update(requirement.predecessors(sid))
    return widened
