"""Vectorized CSR routing kernel: batched Wang-Crowcroft tree builds.

The pure-Python tree functions in :mod:`repro.routing.wang_crowcroft` pay
for their generality on every relaxation: a frozen ``PathQuality``
dataclass per candidate, ``repr``-based tie comparisons, generator-backed
adjacency (``OverlayGraph.successors`` even re-sorts the neighbour dict on
every visit) and hashing of rich node objects.  For the cold paths that
dominate large campaigns -- every source of an abstract-graph build,
every host of an overlay build -- that constant factor is the wall-clock.

This module flattens one adjacency view into a **CSR snapshot**
(:class:`CSRGraph`): ``indptr``/``indices``/``bandwidth``/``latency``
numpy arrays plus a stable node-interning table, and re-runs the exact
two-phase shortest-widest scheme (and the single-pass widest-shortest
dual) against primitive arrays:

* per-source Dijkstras still use a binary heap, but heap entries are
  plain ``(float, int, int)`` tuples over interned node indices;
* each row's usable edges are laid out **bandwidth-descending**, so the
  phase-2 *distinct-bandwidth* sweeps walk the threshold subgraph by
  breaking out of a row as soon as an edge falls below the threshold --
  one shared layout serves every threshold of every source with zero
  per-threshold materialisation;
* phase-2 sweeps early-terminate once every node whose bottleneck equals
  the threshold has been settled (settled Dijkstra labels are final, so
  the extracted labels equal the exhaustive computation's).

**Exactness contract.**  :func:`batched_trees` is bit-identical to
per-source :func:`~repro.routing.wang_crowcroft.shortest_widest_tree` /
:func:`~repro.routing.wang_crowcroft.widest_shortest_tree` calls: same
label values, same deterministic tie-breaks (bandwidth, latency, hops,
lexicographically smallest path under ``repr`` order).  Two facts make
that possible without replicating heap insertion order:

1. the pure functions' results are *intrinsic* -- every candidate that
   can improve a node's label is offered from a predecessor whose heap
   key is strictly smaller (latency extensions are non-negative and
   bandwidth ties are part of the key), so the final labels depend only
   on the strict tie-break order, never on same-key pop order or on
   neighbour iteration order (which is why the bandwidth-descending
   row layout is sound); and
2. nodes are interned in ``repr``-sorted rank order, so comparing
   interned-index path tuples is equivalent to the pure functions'
   ``[repr(n) for n in path]`` comparisons (the snapshot refuses to
   build when ``repr`` is not injective over the node set).

Float arithmetic is identical because a path's latency accumulates
left-to-right along the same edges in both implementations.

``numpy`` is an optional dependency of this module alone: when it is
missing, :data:`HAVE_NUMPY` is False, :func:`snapshot` returns ``None``
and the :class:`~repro.routing.oracle.RouteOracle` falls back to the
pure-Python path.  The kernel draws no random numbers (rule SFL010
guards the package against ambient numpy RNG use).

Property-tested label-for-label against the pure implementations in
``tests/routing/test_kernel.py`` over seeded Waxman/ER/BA overlays,
including unreachable and zero-bandwidth links.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.network.metrics import IDEAL, PathQuality
from repro.routing.wang_crowcroft import NeighborFn, Node, RouteLabel

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as _np
except ImportError:  # pragma: no cover - the container ships numpy
    _np = None  # type: ignore[assignment]

#: Whether the vectorized kernel is usable in this process.
HAVE_NUMPY: bool = _np is not None

#: Orders the kernel can compute (mirrors :mod:`repro.routing.oracle`).
SHORTEST_WIDEST = "shortest_widest"
WIDEST_SHORTEST = "widest_shortest"

_INF = math.inf

#: The usable-edge adjacency: ``(indptr, indices, latency, bandwidth)``
#: python lists (lists, not ndarrays: the per-source heap loops index
#: them far faster than boxed numpy scalars).  Within each row, edges
#: are sorted bandwidth-descending so a threshold sweep can ``break``
#: out of the row at the first disqualified edge.
_UsableCSR = Tuple[List[int], List[int], List[float], List[float]]


class CSRGraph:
    """A frozen CSR snapshot of one adjacency view of one graph epoch.

    Nodes are interned in ``repr``-sorted *rank order* (see the module
    docstring); ``index`` maps node -> rank and ``nodes[rank]`` maps
    back.  Edge slot ``j`` of node ``i`` lives at positions
    ``indptr[i] <= j < indptr[i + 1]`` of ``indices``/``bandwidth``/
    ``latency``.  Instances are immutable once built; the oracle keys
    them by ``(lineage, epoch, view)`` so a snapshot can never outlive
    its topology epoch.
    """

    __slots__ = (
        "nodes",
        "index",
        "indptr",
        "indices",
        "bandwidth",
        "latency",
        "_usable_view",
        "_min_usable_bw",
    )

    def __init__(
        self,
        nodes: Tuple[Node, ...],
        indptr: "Any",
        indices: "Any",
        bandwidth: "Any",
        latency: "Any",
    ) -> None:
        self.nodes = nodes
        self.index: Dict[Node, int] = {node: i for i, node in enumerate(nodes)}
        self.indptr = indptr
        self.indices = indices
        self.bandwidth = bandwidth
        self.latency = latency
        # An edge is usable iff a pure-Python relaxation would keep it:
        # positive bandwidth and finite latency (PathQuality.reachable).
        usable = (bandwidth > 0.0) & _np.isfinite(latency)
        keep = _np.flatnonzero(usable)
        rows = _np.searchsorted(indptr, keep, side="right") - 1
        # Within each row, lay usable edges out bandwidth-descending:
        # the threshold-``w`` subgraph of every phase-2 sweep is then a
        # per-row prefix, walked with an early ``break`` -- one layout
        # serves every threshold of every source (final labels do not
        # depend on neighbour order; see the module docstring).
        order = keep[_np.lexsort((-bandwidth[keep], rows))]
        counts = _np.bincount(rows, minlength=len(nodes))
        u_indptr = _np.zeros(len(nodes) + 1, dtype=_np.int64)
        _np.cumsum(counts, out=u_indptr[1:])
        sorted_bw = bandwidth[order]
        self._usable_view: _UsableCSR = (
            u_indptr.tolist(),
            indices[order].tolist(),
            latency[order].tolist(),
            sorted_bw.tolist(),
        )
        self._min_usable_bw: float = (
            float(sorted_bw.min()) if len(sorted_bw) else 0.0
        )

    # -- construction ------------------------------------------------------

    @classmethod
    def from_adjacency(
        cls,
        nodes: Iterable[Node],
        neighbors: NeighborFn,
    ) -> "CSRGraph":
        """Snapshot ``neighbors`` over the ``nodes`` universe.

        Raises:
            ValueError: when ``repr`` is not injective over ``nodes`` (the
                tie-break equivalence would be unsound) or a neighbour
                falls outside the universe.
        """
        node_list = list(nodes)
        reprs = [repr(node) for node in node_list]
        if len(set(reprs)) != len(node_list):
            raise ValueError("node reprs are not unique; cannot intern")
        ranked = sorted(range(len(node_list)), key=lambda i: reprs[i])
        interned: Tuple[Node, ...] = tuple(node_list[i] for i in ranked)
        index = {node: i for i, node in enumerate(interned)}
        indptr = [0]
        out_indices: List[int] = []
        out_bw: List[float] = []
        out_lat: List[float] = []
        for node in interned:
            for other, link in neighbors(node):
                j = index.get(other)
                if j is None:
                    raise ValueError(
                        f"neighbor {other!r} outside the snapshot universe"
                    )
                out_indices.append(j)
                out_bw.append(link.bandwidth)
                out_lat.append(link.latency)
            indptr.append(len(out_indices))
        return cls(
            interned,
            _np.asarray(indptr, dtype=_np.int64),
            _np.asarray(out_indices, dtype=_np.int64),
            _np.asarray(out_bw, dtype=_np.float64),
            _np.asarray(out_lat, dtype=_np.float64),
        )

    @property
    def n(self) -> int:
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        return int(self.indptr[-1])

    def nbytes(self) -> int:
        """Approximate array payload (observability, not accounting)."""
        return int(
            self.indptr.nbytes
            + self.indices.nbytes
            + self.bandwidth.nbytes
            + self.latency.nbytes
        )

    # -- threshold views ---------------------------------------------------

    def usable_view(self) -> _UsableCSR:
        """The usable-edge adjacency, rows laid out bandwidth-descending.

        A phase-2 sweep at threshold ``w`` walks each row until the
        first edge with ``bandwidth < w`` and breaks -- the qualifying
        edges of a row are always a prefix.  When ``w`` does not exceed
        :attr:`min_usable_bandwidth`, every usable edge qualifies and
        the sweep can skip the bandwidth test entirely.
        """
        return self._usable_view

    @property
    def min_usable_bandwidth(self) -> float:
        """Smallest bandwidth among usable edges (0.0 when edgeless)."""
        return self._min_usable_bw


def snapshot(
    graph: "Any",
    neighbors: Optional[NeighborFn] = None,
) -> Optional[CSRGraph]:
    """Best-effort CSR snapshot of ``graph``'s adjacency.

    The node universe comes from the graph's ``routing_nodes()`` export
    hook (see :meth:`repro.network.overlay.OverlayGraph.routing_nodes`).
    Returns ``None`` when numpy is unavailable, the graph exports no
    universe, or interning fails -- callers fall back to the pure path.
    """
    if not HAVE_NUMPY:
        return None
    export = getattr(graph, "routing_nodes", None)
    if export is None:
        return None
    if neighbors is None:
        neighbors = getattr(graph, "successors", None)
        if neighbors is None:
            neighbors = getattr(graph, "neighbors", None)
        if neighbors is None:
            return None
    try:
        return CSRGraph.from_adjacency(export(), neighbors)
    except (ValueError, KeyError, TypeError):
        return None


# -- batched tree computation -------------------------------------------------


class _Scratch:
    """Per-batch work arrays, reused across every sweep of a batch.

    Validity is generation-stamped (``mark[v] == gen`` -> the slot holds
    this sweep's value) so a new sweep costs one integer bump instead of
    reallocating four n-sized lists.  One instance per :func:`batched_trees`
    call -- never shared across threads.
    """

    __slots__ = ("lat", "bw", "hops", "paths", "mark", "sgen", "gen")

    def __init__(self, n: int) -> None:
        self.lat: List[float] = [_INF] * n
        self.bw: List[float] = [0.0] * n
        self.hops: List[int] = [0] * n
        self.paths: List[Tuple[int, ...]] = [()] * n
        self.mark: List[int] = [0] * n  # label-validity stamp
        self.sgen: List[int] = [0] * n  # settled stamp
        self.gen = 0

    def next_gen(self) -> int:
        self.gen += 1
        return self.gen


def batched_trees(
    csr: CSRGraph,
    sources: Sequence[Node],
    *,
    order: str = SHORTEST_WIDEST,
) -> List[Dict[Node, RouteLabel]]:
    """Routing trees for many sources against one CSR snapshot.

    Returns one label dict per source (same order as ``sources``),
    bit-identical to the pure per-source functions.  Sources missing
    from the snapshot raise ``KeyError`` -- the snapshot and the graph
    disagree, which callers must treat as a snapshot miss.
    """
    if order == SHORTEST_WIDEST:
        builder: Callable[
            [CSRGraph, int, _Scratch], Dict[Node, RouteLabel]
        ] = _shortest_widest_csr
    elif order == WIDEST_SHORTEST:
        builder = _widest_shortest_csr
    else:
        raise ValueError(f"unknown tree order {order!r}")
    scratch = _Scratch(csr.n)
    out: List[Dict[Node, RouteLabel]] = []
    for source in sources:
        out.append(builder(csr, csr.index[source], scratch))
    return out


def _shortest_widest_csr(
    csr: CSRGraph, src: int, scratch: _Scratch
) -> Dict[Node, RouteLabel]:
    """The two-phase Wang-Crowcroft scheme on interned arrays."""
    width = _widest_widths(csr, src)
    n = csr.n
    nodes = csr.nodes
    labels: Dict[Node, RouteLabel] = {
        nodes[src]: RouteLabel(IDEAL, 0, (nodes[src],))
    }
    by_width: Dict[float, List[int]] = {}
    for v in range(n):
        w = width[v]
        if v != src and w > 0.0:
            by_width.setdefault(w, []).append(v)
    lat, hops, paths, mark = scratch.lat, scratch.hops, scratch.paths, scratch.mark
    for w in sorted(by_width, reverse=True):
        members = by_width[w]
        g = _latency_tree(csr, src, w, members, scratch)
        for v in members:
            if mark[v] != g:  # pragma: no cover - phase 1 guarantees reach
                continue
            labels[nodes[v]] = RouteLabel(
                PathQuality(w, lat[v]),
                hops[v],
                tuple(nodes[i] for i in paths[v]),
            )
    return labels


def _widest_widths(csr: CSRGraph, src: int) -> List[float]:
    """Phase 1: max-bottleneck bandwidth from ``src`` to every node."""
    indptr, indices, _, ebw = csr.usable_view()
    width = [0.0] * csr.n
    width[src] = _INF
    settled = bytearray(csr.n)
    heap: List[Tuple[float, int]] = [(-_INF, src)]
    while heap:
        neg_w, u = heappop(heap)
        if settled[u] or -neg_w < width[u]:
            continue
        settled[u] = 1
        wu = width[u]
        for j in range(indptr[u], indptr[u + 1]):
            v = indices[j]
            if settled[v]:
                continue
            b = ebw[j]
            candidate = wu if wu < b else b
            if candidate > width[v]:
                width[v] = candidate
                heappush(heap, (-candidate, v))
    return width


def _latency_tree(
    csr: CSRGraph,
    src: int,
    min_bandwidth: float,
    members: Sequence[int],
    scratch: _Scratch,
) -> int:
    """Phase 2: min-latency Dijkstra over the ``>= w`` subgraph.

    Early-terminates once every member (nodes whose bottleneck equals the
    threshold) is settled; settled labels are final, so the extracted
    member labels equal the exhaustive run's.  Ties on latency break by
    hop count, then by lexicographically smallest interned path -- the
    exact :func:`repro.routing.wang_crowcroft._lat_better` order.

    Rows are bandwidth-descending, so the ``>= w`` subgraph is walked by
    breaking out of each row at its first disqualified edge.

    Results land in ``scratch``; the returned generation stamp marks the
    valid slots (``scratch.mark[v] == gen``).
    """
    indptr, indices, elat, ebw = csr.usable_view()
    g = scratch.next_gen()
    lat, hops, paths = scratch.lat, scratch.hops, scratch.paths
    mark, sgen = scratch.mark, scratch.sgen
    lat[src] = 0.0
    hops[src] = 0
    paths[src] = (src,)
    mark[src] = g
    remaining = set(members)
    remaining.discard(src)
    heap: List[Tuple[float, int, int]] = [(0.0, 0, src)]
    while heap:
        ulat, uhops, u = heappop(heap)
        if sgen[u] == g:
            continue
        if ulat != lat[u] or uhops != hops[u]:
            continue  # stale entry
        sgen[u] = g
        remaining.discard(u)
        if not remaining:
            break
        upath = paths[u]
        for j in range(indptr[u], indptr[u + 1]):
            if ebw[j] < min_bandwidth:
                break  # rows are bandwidth-descending
            v = indices[j]
            if sgen[v] == g:
                continue
            clat = ulat + elat[j]
            chops = uhops + 1
            if mark[v] == g:
                # _lat_better(): latency, then hops, then smallest path.
                vlat = lat[v]
                if clat != vlat:
                    if clat > vlat:
                        continue
                elif chops != hops[v]:
                    if chops > hops[v]:
                        continue
                else:
                    cpath = upath + (v,)
                    if cpath >= paths[v]:
                        continue
                    lat[v] = clat
                    hops[v] = chops
                    paths[v] = cpath
                    heappush(heap, (clat, chops, v))
                    continue
            else:
                mark[v] = g
            lat[v] = clat
            hops[v] = chops
            paths[v] = upath + (v,)
            heappush(heap, (clat, chops, v))
    return g


def _widest_shortest_csr(
    csr: CSRGraph, src: int, scratch: _Scratch
) -> Dict[Node, RouteLabel]:
    """Single-pass widest-shortest Dijkstra on interned arrays.

    Mirrors :func:`repro.routing.wang_crowcroft.widest_shortest_tree`:
    the sort key is ``(latency, -bandwidth)``, ties break on hops then
    smallest path.  Latency is primary, so one label per node is exact.
    """
    indptr, indices, elat, ebw = csr.usable_view()
    nodes = csr.nodes
    g = scratch.next_gen()
    lat, bw, hops, paths = scratch.lat, scratch.bw, scratch.hops, scratch.paths
    mark, sgen = scratch.mark, scratch.sgen
    lat[src] = 0.0
    bw[src] = _INF
    hops[src] = 0
    paths[src] = (src,)
    mark[src] = g
    reached: List[int] = [src]
    heap: List[Tuple[float, float, int, int]] = [(0.0, -_INF, 0, src)]
    while heap:
        ulat, uneg_bw, uhops, u = heappop(heap)
        if sgen[u] == g:
            continue
        if ulat != lat[u] or -uneg_bw != bw[u] or uhops != hops[u]:
            continue  # stale
        sgen[u] = g
        ubw = bw[u]
        upath = paths[u]
        for j in range(indptr[u], indptr[u + 1]):
            v = indices[j]
            if sgen[v] == g:
                continue
            b = ebw[j]
            cbw = ubw if ubw < b else b
            clat = ulat + elat[j]
            chops = uhops + 1
            if mark[v] == g:
                # better(): key (latency, -bandwidth), then hops, then
                # smallest path.
                vlat = lat[v]
                vbw = bw[v]
                if clat != vlat:
                    if clat > vlat:
                        continue
                elif cbw != vbw:
                    if cbw < vbw:
                        continue
                elif chops != hops[v]:
                    if chops > hops[v]:
                        continue
                else:
                    cpath = upath + (v,)
                    if cpath >= paths[v]:
                        continue
                    lat[v] = clat
                    bw[v] = cbw
                    hops[v] = chops
                    paths[v] = cpath
                    heappush(heap, (clat, -cbw, chops, v))
                    continue
            else:
                mark[v] = g
                reached.append(v)
            lat[v] = clat
            bw[v] = cbw
            hops[v] = chops
            paths[v] = upath + (v,)
            heappush(heap, (clat, -cbw, chops, v))
    labels: Dict[Node, RouteLabel] = {}
    for v in reached:
        if v == src:
            labels[nodes[src]] = RouteLabel(IDEAL, 0, (nodes[src],))
            continue
        labels[nodes[v]] = RouteLabel(
            PathQuality(bw[v], lat[v]),
            hops[v],
            tuple(nodes[i] for i in paths[v]),
        )
    return labels


def affected_sources(
    trees: Dict[Node, Dict[Node, RouteLabel]],
    touched_nodes: Set[Node],
    touched_edges: Set[Tuple[Node, Node]],
) -> Set[Node]:
    """Sources whose cached tree traverses any touched element.

    A helper for incremental repair decisions: a source whose tree never
    crosses a degraded/removed element keeps its tree verbatim under a
    restrictive mutation (removing options cannot improve any label).
    """
    hit: Set[Node] = set()
    for source, labels in trees.items():
        for label in labels.values():
            path = label.path
            if touched_nodes and not touched_nodes.isdisjoint(path):
                hit.add(source)
                break
            if touched_edges and any(
                (a, b) in touched_edges for a, b in zip(path, path[1:])
            ):
                hit.add(source)
                break
    return hit
