"""QoS routing algorithms used by the sFlow reproduction.

* :mod:`repro.routing.wang_crowcroft` -- the centralised shortest-widest path
  computation (modified Dijkstra) used by the baseline algorithm and for
  deriving overlay edge weights from the underlay.
* :mod:`repro.routing.link_state` -- a distributed link-state protocol that
  runs on the discrete-event simulator and gives every overlay node its
  *k-hop local view* (the paper assumes a two-hop vicinity).
* :mod:`repro.routing.oracle` -- the process-wide, topology-epoch-aware
  cache of per-source routing trees that amortises the Wang-Crowcroft cost
  across requests, probes and algorithms.
* :mod:`repro.routing.kernel` -- the vectorized CSR kernel behind the
  oracle's cold path: batched, bit-identical Wang-Crowcroft tree builds
  over flattened numpy adjacency snapshots.
"""

from repro.routing.distance_vector import DistanceVectorReport, run_distance_vector
from repro.routing.kernel import CSRGraph, batched_trees
from repro.routing.link_state import LinkStateReport, collect_local_views
from repro.routing.oracle import OracleStats, RouteOracle
from repro.routing.wang_crowcroft import (
    RouteLabel,
    all_pairs_shortest_widest,
    shortest_widest_path,
    shortest_widest_tree,
    widest_bandwidths,
    widest_path_bandwidth,
    widest_shortest_tree,
)

__all__ = [
    "CSRGraph",
    "DistanceVectorReport",
    "LinkStateReport",
    "OracleStats",
    "RouteOracle",
    "batched_trees",
    "collect_local_views",
    "run_distance_vector",
    "RouteLabel",
    "all_pairs_shortest_widest",
    "shortest_widest_path",
    "shortest_widest_tree",
    "widest_bandwidths",
    "widest_path_bandwidth",
    "widest_shortest_tree",
]
