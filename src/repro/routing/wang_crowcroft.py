"""Shortest-widest path routing (Wang & Crowcroft, IEEE JSAC 1996).

The paper adopts the Wang-Crowcroft algorithm as its path quality oracle:
among all paths between two nodes, pick the one with the highest bottleneck
**bandwidth**; among equally wide paths, pick the lowest **latency**.

A subtlety this module gets right (and property-tests against brute force,
see ``tests/routing/test_wang_crowcroft.py``): shortest-widest is *not*
computable with a single-label Dijkstra.  Because bandwidth saturates under
``min``, a narrower-but-faster label at an intermediate node -- dominated
under the lexicographic order -- can still yield the best extension once a
downstream link becomes the bottleneck anyway.  Wang & Crowcroft therefore
use the classic **two-phase** scheme, which we implement per source:

1. *widest phase* -- a max-bottleneck Dijkstra computes the best achievable
   bandwidth ``B[v]`` to every node;
2. *shortest phase* -- for each distinct bandwidth value ``w``, a
   minimum-latency Dijkstra runs on the subgraph of links with bandwidth
   ``>= w``; nodes with ``B[v] == w`` take their final label (latency and
   path) from that tree.

Both phases are ordinary Dijkstras, so the per-source cost is
``O(k * E log V)`` with ``k`` distinct bandwidth values -- within the
``O(N^3)`` bound the paper quotes.  The dual rule (*widest-shortest*:
latency first, bandwidth as tie-break) IS single-label safe, because
latency accumulates strictly; :func:`widest_shortest_tree` exploits that.

Determinism: exact ties on ``(bandwidth, latency)`` are broken by fewer
hops, then by the smallest predecessor (string order), so repeated runs and
the distributed re-computations inside sFlow always agree.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Tuple

from repro.network.metrics import IDEAL, UNREACHABLE, LinkMetrics, PathQuality

Node = Hashable
#: Adjacency view: ``neighbors(u)`` yields ``(v, link_metrics)`` pairs.
NeighborFn = Callable[[Node], Iterable[Tuple[Node, LinkMetrics]]]


@dataclass(frozen=True)
class RouteLabel:
    """Routing-table entry produced by the tree computations.

    Attributes:
        quality: best quality of a path from the source under the
            algorithm's order (shortest-widest or widest-shortest).
        hops: number of edges on the selected path (-1 when unreachable).
        path: the full node path source..node (empty when unreachable).
    """

    quality: PathQuality
    hops: int
    path: Tuple[Node, ...] = ()

    @property
    def predecessor(self) -> Optional[Node]:
        """Previous node on the path (None at the source / unreachable)."""
        return self.path[-2] if len(self.path) >= 2 else None

    @property
    def reachable(self) -> bool:
        return self.quality.reachable or self.hops == 0


_UNREACHED = RouteLabel(UNREACHABLE, -1, ())


def widest_bandwidths(
    neighbors: NeighborFn,
    source: Node,
    *,
    targets: Optional[Iterable[Node]] = None,
) -> Dict[Node, float]:
    """Phase 1: maximum bottleneck bandwidth from ``source`` to every node.

    A max-bottleneck Dijkstra; exact because ``min`` is isotone under the
    single bandwidth order.  The source maps to ``inf``.

    With ``targets`` the search stops as soon as every requested target has
    been settled, instead of exhausting the graph.  Only **settled**
    entries are returned then -- every value present is exactly what the
    exhaustive computation would produce.  (Earlier revisions leaked
    tentative values for nodes the truncated search had merely reached;
    callers reading a non-target key got a plausible-looking underestimate.)
    """
    remaining: Optional[set] = None
    if targets is not None:
        remaining = set(targets)
        remaining.discard(source)
    width: Dict[Node, float] = {source: math.inf}
    settled: set = set()
    counter = itertools.count()
    heap: List[Tuple[float, int, Node]] = [(-math.inf, next(counter), source)]
    while heap:
        neg_w, _, u = heapq.heappop(heap)
        if u in settled or -neg_w < width.get(u, 0.0):
            continue
        settled.add(u)
        if remaining is not None:
            remaining.discard(u)
            if not remaining:
                break
        for v, link in neighbors(u):
            if v in settled or not link.reachable:
                continue
            candidate = min(width[u], link.bandwidth)
            if candidate > width.get(v, 0.0):
                width[v] = candidate
                heapq.heappush(heap, (-candidate, next(counter), v))
    if remaining is not None:
        # Early-terminated: drop tentative (reached-but-unsettled) values.
        return {node: w for node, w in width.items() if node in settled}
    return width


def _shortest_latency_tree(
    neighbors: NeighborFn,
    source: Node,
    min_bandwidth: float,
    *,
    targets: Optional[Iterable[Node]] = None,
) -> Dict[Node, Tuple[float, int, Tuple[Node, ...]]]:
    """Phase 2 helper: min-latency Dijkstra over links of bandwidth >= w.

    Returns ``node -> (latency, hops, path)``.  Ties on latency are broken
    by hop count, then by smallest path (lexicographic on node reprs), so
    the result is deterministic.  With ``targets`` the search stops once
    every requested target is settled and only settled entries are
    returned (each exactly what the exhaustive run would produce; see
    :func:`widest_bandwidths`).
    """
    remaining: Optional[set] = None
    if targets is not None:
        remaining = set(targets)
        remaining.discard(source)
    best: Dict[Node, Tuple[float, int, Tuple[Node, ...]]] = {
        source: (0.0, 0, (source,))
    }
    settled: set = set()
    counter = itertools.count()
    heap: List[Tuple[float, int, int, Node]] = [(0.0, 0, next(counter), source)]
    while heap:
        lat, hops, _, u = heapq.heappop(heap)
        if u in settled:
            continue
        current = best.get(u)
        if current is None or (lat, hops) != (current[0], current[1]):
            continue  # stale entry
        settled.add(u)
        if remaining is not None:
            remaining.discard(u)
            if not remaining:
                break
        _, _, path = current
        for v, link in neighbors(u):
            if v in settled or not link.reachable:
                continue
            if link.bandwidth < min_bandwidth:
                continue
            cand = (lat + link.latency, hops + 1, path + (v,))
            incumbent = best.get(v)
            if incumbent is None or _lat_better(cand, incumbent):
                best[v] = cand
                heapq.heappush(heap, (cand[0], cand[1], next(counter), v))
    if remaining is not None:
        # Early-terminated: drop tentative (reached-but-unsettled) entries.
        return {node: entry for node, entry in best.items() if node in settled}
    return best


def _lat_better(
    cand: Tuple[float, int, Tuple[Node, ...]],
    inc: Tuple[float, int, Tuple[Node, ...]],
) -> bool:
    if cand[0] != inc[0]:
        return cand[0] < inc[0]
    if cand[1] != inc[1]:
        return cand[1] < inc[1]
    return [repr(n) for n in cand[2]] < [repr(n) for n in inc[2]]


def shortest_widest_tree(
    neighbors: NeighborFn,
    source: Node,
    *,
    nodes: Optional[Iterable[Node]] = None,
    targets: Optional[Iterable[Node]] = None,
) -> Dict[Node, RouteLabel]:
    """Single-source shortest-widest labels for every reachable node.

    Args:
        neighbors: adjacency view; must be consistent across calls.
        source: the root of the routing tree.
        nodes: optional universe of nodes.  When given, unreachable nodes
            appear in the result with an :data:`UNREACHABLE` label; otherwise
            the result contains only reachable nodes.
        targets: optional target set.  When given, both Dijkstra phases
            stop as soon as every requested target is finalised instead of
            exhausting the graph, and the result is restricted to the
            source plus the reachable targets.  Labels present are exactly
            those the full computation would produce.

    Returns:
        Mapping from node to its :class:`RouteLabel`.  ``result[source]`` has
        :data:`IDEAL` quality, zero hops, and the trivial one-node path.
    """
    target_set: Optional[set] = None
    if targets is not None:
        target_set = set(targets)
    width = widest_bandwidths(neighbors, source, targets=target_set)
    labels: Dict[Node, RouteLabel] = {source: RouteLabel(IDEAL, 0, (source,))}
    by_width: Dict[float, List[Node]] = {}
    for node, w in width.items():
        if target_set is not None and node not in target_set:
            continue
        if node != source and w > 0:
            by_width.setdefault(w, []).append(node)
    for w, members in sorted(by_width.items(), reverse=True):
        tree = _shortest_latency_tree(
            neighbors, source, w, targets=members if target_set is not None else None
        )
        for node in members:
            entry = tree.get(node)
            if entry is None:
                continue  # defensive: phase 1 said reachable at this width
            lat, hops, path = entry
            labels[node] = RouteLabel(PathQuality(w, lat), hops, path)
    if nodes is not None:
        for node in nodes:
            labels.setdefault(node, _UNREACHED)
    return labels


def widest_shortest_tree(
    neighbors: NeighborFn,
    source: Node,
    *,
    nodes: Optional[Iterable[Node]] = None,
    targets: Optional[Iterable[Node]] = None,
) -> Dict[Node, RouteLabel]:
    """Single-source *widest-shortest* labels: minimise latency first, then
    maximise bandwidth among minimum-latency paths.

    This is the dual rule of [WC96] and models plain IP routing (OSPF-style
    lowest-delay forwarding): the underlay delivers packets along shortest
    paths regardless of capacity, which is how
    :meth:`repro.network.overlay.OverlayGraph.build` derives service-link
    weights by default.  A single-label Dijkstra is exact here: latency
    accumulates strictly, so a higher-latency label can never produce a
    better extension, and bandwidth only breaks exact latency ties (where
    the wider label dominates outright).

    With ``targets`` the search stops once every requested target is
    settled and the result is restricted to the source plus the reachable
    targets; labels present are exactly those the full computation would
    produce (the oracle's incremental repair recomputes only affected
    destinations through this contract).
    """
    remaining: Optional[set] = None
    target_set: Optional[set] = None
    if targets is not None:
        target_set = set(targets)
        remaining = set(target_set)
        remaining.discard(source)
    best: Dict[Node, RouteLabel] = {source: RouteLabel(IDEAL, 0, (source,))}
    settled: set = set()
    counter = itertools.count()
    heap: List[Tuple[Tuple[float, float], int, int, Node]] = [
        ((0.0, -math.inf), 0, next(counter), source)
    ]

    def sort_key(quality: PathQuality) -> Tuple[float, float]:
        return (quality.latency, -quality.bandwidth)

    def better(cand: RouteLabel, inc: RouteLabel) -> bool:
        if sort_key(cand.quality) != sort_key(inc.quality):
            return sort_key(cand.quality) < sort_key(inc.quality)
        if cand.hops != inc.hops:
            return cand.hops < inc.hops
        return [repr(n) for n in cand.path] < [repr(n) for n in inc.path]

    while heap:
        key, hops, _, u = heapq.heappop(heap)
        label = best.get(u)
        if label is None or u in settled:
            continue
        if key != sort_key(label.quality) or hops != label.hops:
            continue  # stale
        settled.add(u)
        if remaining is not None:
            remaining.discard(u)
            if not remaining:
                break
        for v, link in neighbors(u):
            if v in settled or not link.reachable:
                continue
            candidate = RouteLabel(
                label.quality.extend(link), hops + 1, label.path + (v,)
            )
            if not candidate.quality.reachable:
                continue
            incumbent = best.get(v)
            if incumbent is None or better(candidate, incumbent):
                best[v] = candidate
                heapq.heappush(
                    heap,
                    (sort_key(candidate.quality), candidate.hops, next(counter), v),
                )
    if target_set is not None:
        # Early-terminated: keep only settled source/target entries (every
        # label present is exact -- see widest_bandwidths).
        best = {
            node: label
            for node, label in best.items()
            if node in settled and (node == source or node in target_set)
        }
    if nodes is not None:
        for node in nodes:
            best.setdefault(node, _UNREACHED)
    return best


def shortest_widest_path(
    neighbors: NeighborFn,
    source: Node,
    target: Node,
) -> Tuple[PathQuality, List[Node]]:
    """Best path from ``source`` to ``target``.

    Returns ``(quality, path)`` where ``path`` lists nodes source..target
    inclusive.  An unreachable target yields ``(UNREACHABLE, [])``.  The
    zero-hop path from a node to itself has :data:`IDEAL` quality.
    """
    labels = shortest_widest_tree(neighbors, source)
    if target not in labels:
        return UNREACHABLE, []
    return labels[target].quality, extract_path(labels, source, target)


def extract_path(
    labels: Dict[Node, RouteLabel], source: Node, target: Node
) -> List[Node]:
    """The stored path to ``target``; empty list if unreachable."""
    label = labels.get(target)
    if label is None or not label.reachable:
        return []
    if label.path and label.path[0] != source:
        raise ValueError(
            f"labels were computed from {label.path[0]!r}, not {source!r}"
        )
    return list(label.path)


def all_pairs_shortest_widest(
    neighbors: NeighborFn,
    nodes: Iterable[Node],
) -> Dict[Node, Dict[Node, RouteLabel]]:
    """All-pairs shortest-widest labels (step 1 of the baseline algorithm).

    Runs one :func:`shortest_widest_tree` per node; with ``N`` nodes and the
    paper's ``O(N^3)`` bound for a single-source computation this is the
    ``O(N^4)`` step quoted in Sec. 3.3.
    """
    node_list = list(nodes)
    return {
        src: shortest_widest_tree(neighbors, src, nodes=node_list)
        for src in node_list
    }


def widest_path_bandwidth(neighbors: NeighborFn, source: Node, target: Node) -> float:
    """Maximum bottleneck bandwidth from ``source`` to ``target``.

    Convenience accessor used by the branch-and-bound optimal search to
    compute admissible bandwidth bounds.  The max-bottleneck Dijkstra
    early-exits as soon as ``target`` is popped from the frontier (its
    label is final then), instead of computing exact bandwidths to every
    node and discarding all but one.
    """
    return widest_bandwidths(neighbors, source, targets=(target,)).get(target, 0.0)
