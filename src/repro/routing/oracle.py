"""Process-wide routing-tree oracle with topology epochs (perf tentpole).

The paper's baseline is dominated by Wang-Crowcroft shortest-widest tree
computations -- the ``O(N^4)`` all-pairs step of Table 1.  Before this
module, five independent call sites (abstract-graph construction, the
distributed planner's local views, the QoS monitor's probes, the
serialized-chain control, and the baseline's abstract-path search) each
kept a throwaway per-call ``trees`` dict and recomputed identical trees
from scratch.  :class:`RouteOracle` replaces all of them with one bounded,
process-wide memo:

* **Keying.**  Cached trees are keyed ``(lineage, epoch, view, order,
  source)``.  A *lineage* identifies a family of graphs related by
  mutation; the *epoch* is a monotonic counter bumped by every mutation in
  that lineage, so a stale tree is unreachable by construction -- there is
  no code path that can serve an old epoch's tree for a new epoch's graph.
  ``view`` distinguishes adjacency views of the same graph (e.g. the
  directed overlay vs. the undirected relaxation the serialized-chain
  control plans over); ``order`` selects shortest-widest or
  widest-shortest trees.

* **Scoped invalidation.**  The failure models
  (:func:`repro.network.failures.degrade_links` and friends) are *pure*:
  they return a new graph.  They report the derivation to the oracle via
  :meth:`derive`, naming exactly which links/instances were touched.
  Because degradations and removals can only make *alternative* paths
  worse (never the chosen ones better), a cached tree that does not
  traverse any touched element is still exact -- including its
  deterministic tie-breaks -- and is carried forward into the new epoch.
  A single link failure therefore does not cold-start the whole cache;
  only sources whose trees crossed the failed link recompute.  Additive
  mutations (revival, churn join) can create *better* paths, so they
  invalidate the whole lineage (``additive=True``).

* **Bounded LRU + weakrefs.**  The cache holds at most ``max_entries``
  trees (least-recently-used eviction) and tracks graphs by weak
  reference, purging a graph's entries when it is garbage-collected, so
  long-running campaigns cannot leak memory through dead overlays.

Correctness contract: the oracle never changes results, only cost.  A
cache hit returns exactly the labels :func:`shortest_widest_tree` /
:func:`widest_shortest_tree` would compute on the same graph (property
tested in ``tests/routing/test_oracle.py`` and
``tests/services/test_abstract_graph.py``).  Returned label dicts are
shared; callers must treat them as immutable.
"""

from __future__ import annotations

import itertools
import threading
import warnings
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Optional,
    Set,
    Tuple,
)

from repro.obs import metrics as obs_metrics
from repro.routing import kernel as _kernel
from repro.routing.wang_crowcroft import (
    NeighborFn,
    Node,
    RouteLabel,
    shortest_widest_tree,
    widest_shortest_tree,
)

#: Tree orders the oracle can serve.
SHORTEST_WIDEST = "shortest_widest"
WIDEST_SHORTEST = "widest_shortest"

_TREE_FN: Dict[str, Callable[..., Dict[Node, RouteLabel]]] = {
    SHORTEST_WIDEST: shortest_widest_tree,
    WIDEST_SHORTEST: widest_shortest_tree,
}

_CacheKey = Tuple[int, int, str, str, Hashable]


@dataclass
class OracleStats:
    """Counter snapshot; taken via :meth:`RouteOracle.stats`."""

    hits: int = 0
    misses: int = 0
    carried: int = 0  # trees surviving a mutation via scoped carry-forward
    dropped: int = 0  # trees dropped by scoped invalidation
    invalidated: int = 0  # trees dropped by full (additive) invalidation
    evictions: int = 0  # LRU evictions
    warmed: int = 0  # trees computed by a batched warm() prefetch
    repaired: int = 0  # trees rebuilt by targeted repair, not full recompute

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when no lookups)."""
        return self.hits / self.lookups if self.lookups else 0.0


class _GraphMeta:
    """Lineage/epoch bookkeeping attached (weakly) to one graph object."""

    __slots__ = ("lineage", "epoch")

    def __init__(self, lineage: int, epoch: int) -> None:
        self.lineage = lineage
        self.epoch = epoch


class _Entry:
    """One cached tree plus the elements its label paths traverse."""

    __slots__ = ("labels", "nodes", "edges")

    def __init__(self, labels: Dict[Node, RouteLabel]) -> None:
        self.labels = labels
        nodes: Set[Node] = set()
        edges: Set[Tuple[Node, Node]] = set()
        for label in labels.values():
            path = label.path
            nodes.update(path)
            edges.update(zip(path, path[1:]))
        self.nodes: FrozenSet[Node] = frozenset(nodes)
        self.edges: FrozenSet[Tuple[Node, Node]] = frozenset(edges)

    def touches(
        self,
        touched_nodes: FrozenSet[Node],
        touched_edges: FrozenSet[Tuple[Node, Node]],
    ) -> bool:
        return bool(self.nodes & touched_nodes) or bool(self.edges & touched_edges)


class _PendingRepair:
    """A tree dropped by scoped invalidation, kept for targeted repair.

    ``labels`` is the pre-mutation tree; the touched sets accumulate every
    restrictive mutation between the tree's epoch and the epoch it is
    repaired at (chained failures union their touch sets).  Labels whose
    paths avoid all touched elements are still exact -- a restrictive
    mutation cannot improve any path -- so a repair recomputes only the
    affected destinations via the tree functions' ``targets`` contract.
    """

    __slots__ = ("labels", "nodes", "edges")

    def __init__(
        self,
        labels: Dict[Node, RouteLabel],
        nodes: FrozenSet[Node],
        edges: FrozenSet[Tuple[Node, Node]],
    ) -> None:
        self.labels = labels
        self.nodes = nodes
        self.edges = edges

    def merged(
        self,
        nodes: FrozenSet[Node],
        edges: FrozenSet[Tuple[Node, Node]],
    ) -> "_PendingRepair":
        return _PendingRepair(self.labels, self.nodes | nodes, self.edges | edges)


class RouteOracle:
    """Topology-epoch-aware cache of per-source routing trees.

    One process-wide instance (:meth:`default`) backs every routing-heavy
    subsystem; tests may construct private instances.  All public methods
    are thread-safe.
    """

    _default: Optional["RouteOracle"] = None
    _default_lock = threading.Lock()

    def __init__(
        self,
        max_entries: int = 4096,
        *,
        enabled: bool = True,
        use_kernel: bool = True,
        kernel_min_nodes: int = 16,
        registry: Optional[obs_metrics.MetricsRegistry] = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        #: When False every lookup computes directly (no caching, no
        #: counters) -- the A/B switch the perf harness flips.
        self.enabled = enabled
        #: Route cold misses through the vectorized CSR kernel when the
        #: graph exports a snapshot (``routing_nodes``) and numpy is
        #: available; results are bit-identical either way, so this is
        #: purely a cost switch (the perf harness A/Bs it).
        self.use_kernel = use_kernel and _kernel.HAVE_NUMPY
        #: Below this node count the pure path wins (snapshot build cost
        #: dominates); tiny ego views skip the kernel entirely.
        self.kernel_min_nodes = kernel_min_nodes
        #: The counters live in a metrics registry (``oracle.*``): the
        #: process-wide registry for :meth:`default`, so registry
        #: snapshots and :meth:`stats` read the same storage; a private
        #: registry for directly-constructed oracles, so test instances
        #: never cross-talk.
        self._registry = registry if registry is not None else (
            obs_metrics.MetricsRegistry()
        )
        # Registered one by one with literal names (rule SFL005): the
        # registry is the single backing store, so a registry snapshot and
        # :meth:`stats` can never disagree, and every ``oracle.*`` series
        # stays grep-able.
        self._counters: Dict[str, obs_metrics.Counter] = {
            "hits": self._registry.counter(
                "oracle.hits", "tree lookups served from cache"
            ),
            "misses": self._registry.counter(
                "oracle.misses", "tree lookups that computed"
            ),
            "carried": self._registry.counter(
                "oracle.carried",
                "trees surviving a mutation via scoped carry-forward",
            ),
            "dropped": self._registry.counter(
                "oracle.dropped", "trees dropped by scoped invalidation"
            ),
            "invalidated": self._registry.counter(
                "oracle.invalidated",
                "trees dropped by full (additive) invalidation",
            ),
            "evictions": self._registry.counter(
                "oracle.evictions", "LRU evictions"
            ),
            "warmed": self._registry.counter(
                "oracle.warmed", "trees computed by a batched warm() prefetch"
            ),
            "repaired": self._registry.counter(
                "oracle.repaired",
                "trees rebuilt by targeted repair instead of full recompute",
            ),
        }
        self._lock = threading.RLock()
        self._meta: "weakref.WeakKeyDictionary[Any, _GraphMeta]" = (
            weakref.WeakKeyDictionary()
        )
        self._lineage_counter = itertools.count()
        #: Highest epoch ever issued per lineage (epochs never reuse).
        self._lineage_tip: Dict[int, int] = {}
        self._cache: "OrderedDict[_CacheKey, _Entry]" = OrderedDict()
        #: ``(lineage, epoch) -> keys`` index for O(entries-of-graph)
        #: invalidation instead of full-cache scans.
        self._index: Dict[Tuple[int, int], Set[_CacheKey]] = {}
        #: CSR snapshots keyed ``(lineage, epoch, view)`` -- a snapshot can
        #: never serve a different topology epoch by construction.  ``None``
        #: marks a graph that cannot be snapshotted (no export hook, too
        #: small, non-injective reprs) so misses stop retrying.
        self._snapshots: "OrderedDict[Tuple[int, int, str], Optional[_kernel.CSRGraph]]" = (
            OrderedDict()
        )
        self._snapshots_max = 8
        #: Trees dropped by scoped invalidation, kept (bounded, FIFO) for
        #: targeted repair at their first post-mutation lookup.
        self._repairs: "OrderedDict[_CacheKey, _PendingRepair]" = OrderedDict()
        self._repair_index: Dict[Tuple[int, int], Set[_CacheKey]] = {}

    # -- singleton ---------------------------------------------------------

    @classmethod
    def default(cls) -> "RouteOracle":
        """The process-wide oracle (created on first use).

        Its counters live in the process-wide metrics registry
        (:func:`repro.obs.metrics.registry`) under ``oracle.*``.
        """
        with cls._default_lock:
            if cls._default is None:
                cls._default = cls(registry=obs_metrics.registry())
            return cls._default

    @classmethod
    def reset_default(cls) -> "RouteOracle":
        """Replace the process-wide oracle with a fresh one (tests).

        The ``oracle.*`` counters in the process registry are zeroed so
        the fresh oracle starts from a clean slate.
        """
        with cls._default_lock:
            cls._default = cls(registry=obs_metrics.registry())
            cls._default.reset_stats()
            return cls._default

    # -- lookups -----------------------------------------------------------

    def tree(
        self,
        graph: Any,
        source: Node,
        *,
        order: str = SHORTEST_WIDEST,
        view: str = "successors",
        neighbors: Optional[NeighborFn] = None,
    ) -> Dict[Node, RouteLabel]:
        """The single-source routing tree for ``source`` on ``graph``.

        Args:
            graph: any object whose topology the trees describe; used only
                as the cache identity (weakly referenced).
            source: tree root.
            order: :data:`SHORTEST_WIDEST` or :data:`WIDEST_SHORTEST`.
            view: distinguishes multiple adjacency views of one graph; the
                same ``view`` string must always denote the same adjacency.
            neighbors: adjacency function; defaults to ``graph.successors``
                (or ``graph.neighbors`` for underlay-style graphs).

        Returns the label dict of the underlying tree function.  **Treat it
        as immutable** -- it is shared across callers.
        """
        tree_fn = _TREE_FN.get(order)
        if tree_fn is None:
            raise ValueError(f"unknown tree order {order!r}")
        if neighbors is None:
            neighbors = getattr(graph, "successors", None) or graph.neighbors
        if not self.enabled:
            return tree_fn(neighbors, source)
        with self._lock:
            meta = self._meta_for(graph)
            key = (meta.lineage, meta.epoch, view, order, source)
            entry = self._cache.get(key)
            if entry is not None:
                self._cache.move_to_end(key)
                self._counters["hits"].inc()
                return entry.labels
            self._counters["misses"].inc()
            pending = self._pop_repair(key)
        labels: Optional[Dict[Node, RouteLabel]] = None
        if pending is not None:
            labels = self._repair_labels(tree_fn, neighbors, source, pending)
            if labels is not None:
                self._counters["repaired"].inc()
        if labels is None and self.use_kernel:
            csr = self._snapshot_for(graph, key[0], key[1], view, neighbors)
            if csr is not None and source in csr.index:
                labels = _kernel.batched_trees(csr, (source,), order=order)[0]
        if labels is None:
            labels = tree_fn(neighbors, source)
        with self._lock:
            self._insert(key, _Entry(labels))
        return labels

    def warm(
        self,
        graph: Any,
        sources: Iterable[Node],
        *,
        order: str = SHORTEST_WIDEST,
        view: str = "successors",
        neighbors: Optional[NeighborFn] = None,
    ) -> int:
        """Batched prefetch: compute and cache trees for many sources.

        The cold-path entry point of the vectorized kernel: one CSR
        snapshot of ``graph`` is built (and cached per ``(lineage, epoch,
        view)``), then every not-yet-cached source's tree is computed
        against it in one batch, sharing the phase-2 threshold subgraphs
        across sources.  Falls back to per-source pure computation when
        the graph cannot be snapshotted.  Subsequent :meth:`tree` calls
        for these sources are cache hits.

        Returns the number of trees actually computed (0 when disabled or
        everything was already cached).  Results are bit-identical to
        :meth:`tree`, which is bit-identical to the pure functions.
        """
        tree_fn = _TREE_FN.get(order)
        if tree_fn is None:
            raise ValueError(f"unknown tree order {order!r}")
        if not self.enabled:
            return 0
        if neighbors is None:
            neighbors = getattr(graph, "successors", None) or graph.neighbors
        with self._lock:
            meta = self._meta_for(graph)
            lineage, epoch = meta.lineage, meta.epoch
            missing: list = []
            seen: Set[Node] = set()
            for source in sources:
                if source in seen:
                    continue
                seen.add(source)
                key = (lineage, epoch, view, order, source)
                # Sources with a pending repair are cheaper to repair at
                # their first tree() lookup than to recompute here.
                if key in self._cache or key in self._repairs:
                    continue
                missing.append(source)
        if not missing:
            return 0
        trees: Optional[list] = None
        if self.use_kernel:
            csr = self._snapshot_for(graph, lineage, epoch, view, neighbors)
            if csr is not None and all(s in csr.index for s in missing):
                trees = _kernel.batched_trees(csr, missing, order=order)
        if trees is None:
            trees = [tree_fn(neighbors, source) for source in missing]
        with self._lock:
            live = self._meta.get(graph)
            if live is None or (live.lineage, live.epoch) != (lineage, epoch):
                return 0  # graph mutated mid-computation; trees are stale
            for source, labels in zip(missing, trees):
                self._insert((lineage, epoch, view, order, source), _Entry(labels))
            self._counters["warmed"].inc(len(missing))
        return len(missing)

    # -- mutation protocol -------------------------------------------------

    def derive(
        self,
        old: Any,
        new: Any,
        *,
        removed_instances: Iterable[Node] = (),
        removed_links: Iterable[Tuple[Node, Node]] = (),
        degraded_links: Iterable[Tuple[Node, Node]] = (),
        additive: bool = False,
    ) -> None:
        """Record that ``new`` is ``old`` after a mutation.

        ``new`` joins ``old``'s lineage at the next epoch.  Trees cached
        for ``old`` that do not traverse any touched element are *copied*
        into the new epoch (``old`` keeps its own entries -- the pure
        failure functions leave the input graph alive and queryable).
        ``additive=True`` marks mutations that can improve paths (revival,
        join); nothing is carried then.
        """
        if new is old:
            raise ValueError("derive() needs a distinct new graph; use mutate()")
        touched_nodes, touched_edges = _touched(
            removed_instances, removed_links, degraded_links
        )
        with self._lock:
            old_meta = self._meta_for(old)
            epoch = self._next_epoch(old_meta.lineage)
            new_meta = _GraphMeta(old_meta.lineage, epoch)
            self._register(new, new_meta)
            self._propagate(
                old_meta, new_meta, touched_nodes, touched_edges, additive,
                move=False,
            )

    def mutate(
        self,
        graph: Any,
        *,
        removed_instances: Iterable[Node] = (),
        removed_links: Iterable[Tuple[Node, Node]] = (),
        degraded_links: Iterable[Tuple[Node, Node]] = (),
        additive: bool = False,
    ) -> None:
        """Record an in-place mutation of ``graph`` (epoch bump).

        The graph object stays the same, so surviving trees are *moved* to
        the new epoch and the old epoch becomes unreachable.
        """
        touched_nodes, touched_edges = _touched(
            removed_instances, removed_links, degraded_links
        )
        with self._lock:
            meta = self._meta_for(graph)
            old_meta = _GraphMeta(meta.lineage, meta.epoch)
            meta.epoch = self._next_epoch(meta.lineage)
            self._propagate(
                old_meta, meta, touched_nodes, touched_edges, additive,
                move=True,
            )

    def invalidate(self, graph: Any) -> None:
        """Drop every cached tree for ``graph`` (all views, all orders)."""
        with self._lock:
            meta = self._meta.get(graph)
            if meta is None:
                return
            epoch_key = (meta.lineage, meta.epoch)
            for key in self._index.pop(epoch_key, ()):
                if self._cache.pop(key, None) is not None:
                    self._counters["invalidated"].inc()
            self._drop_epoch_extras(epoch_key)

    def clear(self) -> None:
        """Drop everything (stats survive; see :meth:`reset_stats`)."""
        with self._lock:
            self._cache.clear()
            self._index.clear()
            self._snapshots.clear()
            self._repairs.clear()
            self._repair_index.clear()

    # -- introspection -----------------------------------------------------

    def stats(self) -> OracleStats:
        """A snapshot of the counters, read straight from the registry."""
        with self._lock:
            return OracleStats(
                **{
                    name: int(counter.total)
                    for name, counter in self._counters.items()
                }
            )

    @property
    def counters(self) -> OracleStats:
        """Deprecated pre-registry alias for :meth:`stats`.

        The bespoke counters attribute is gone; the ``oracle.*`` counters
        in :func:`repro.obs.metrics.registry` are the single source of
        truth and this thin alias merely snapshots them.
        """
        warnings.warn(
            "RouteOracle.counters is deprecated; use RouteOracle.stats() or "
            "the oracle.* counters in repro.obs.metrics.registry()",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.stats()

    def reset_stats(self) -> None:
        with self._lock:
            for counter in self._counters.values():
                counter.reset()

    def epoch(self, graph: Any) -> int:
        """Current epoch of ``graph`` (registers it at epoch 0 if new)."""
        with self._lock:
            return self._meta_for(graph).epoch

    def lineage(self, graph: Any) -> int:
        """Lineage id of ``graph`` (registers it if new)."""
        with self._lock:
            return self._meta_for(graph).lineage

    def cached_sources(self, graph: Any, *, view: str = "successors") -> Set[Node]:
        """Sources with a live cached tree for ``graph`` (test hook)."""
        with self._lock:
            meta = self._meta.get(graph)
            if meta is None:
                return set()
            return {
                key[4]
                for key in self._index.get((meta.lineage, meta.epoch), ())
                if key[2] == view
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._cache)

    # -- internals ---------------------------------------------------------

    def _meta_for(self, graph: Any) -> _GraphMeta:
        meta = self._meta.get(graph)
        if meta is None:
            lineage = next(self._lineage_counter)
            meta = _GraphMeta(lineage, 0)
            self._lineage_tip[lineage] = 0
            self._register(graph, meta)
        return meta

    def _register(self, graph: Any, meta: _GraphMeta) -> None:
        self._meta[graph] = meta
        weakref.finalize(graph, self._purge, weakref.ref(self), meta)

    @staticmethod
    def _purge(oracle_ref: "weakref.ref[RouteOracle]", meta: _GraphMeta) -> None:
        oracle = oracle_ref()
        if oracle is None:
            return
        with oracle._lock:
            epoch_key = (meta.lineage, meta.epoch)
            for key in oracle._index.pop(epoch_key, ()):
                oracle._cache.pop(key, None)
            oracle._drop_epoch_extras(epoch_key)

    def _next_epoch(self, lineage: int) -> int:
        tip = self._lineage_tip.get(lineage, 0) + 1
        self._lineage_tip[lineage] = tip
        return tip

    def _propagate(
        self,
        old_meta: _GraphMeta,
        new_meta: _GraphMeta,
        touched_nodes: FrozenSet[Node],
        touched_edges: FrozenSet[Tuple[Node, Node]],
        additive: bool,
        *,
        move: bool,
    ) -> None:
        old_key = (old_meta.lineage, old_meta.epoch)
        keys = self._index.get(old_key, set())
        if move:
            self._index.pop(old_key, None)
        for key in sorted(keys, key=repr):
            entry = self._cache.get(key)
            if entry is None:
                continue
            if move:
                del self._cache[key]
            if additive:
                # Additive mutations can create better paths anywhere: no
                # tree survives into the new epoch.  (With ``move=False``
                # the old graph keeps its still-valid entries; the new
                # epoch simply starts cold.)
                self._counters["invalidated"].inc()
                continue
            new_key = (new_meta.lineage, new_meta.epoch) + key[2:]
            if entry.touches(touched_nodes, touched_edges):
                # The tree is stale, but most of its labels usually are
                # not: keep it aside for targeted repair at first lookup.
                self._add_repair(
                    new_key,
                    _PendingRepair(entry.labels, touched_nodes, touched_edges),
                )
                self._counters["dropped"].inc()
                continue
            self._insert(new_key, entry)
            self._counters["carried"].inc()
        # Pending repairs of the old epoch chain forward: their touch sets
        # accumulate so a later repair accounts for every mutation since
        # the tree was computed.
        repair_keys = self._repair_index.get(old_key, set())
        for key in sorted(repair_keys, key=repr):
            pending = self._repairs.get(key)
            if pending is None:
                continue
            if additive:
                self._discard_repair(key)
                continue
            new_key = (new_meta.lineage, new_meta.epoch) + key[2:]
            self._add_repair(new_key, pending.merged(touched_nodes, touched_edges))
        if move:
            # The old epoch is unreachable now: its snapshots and pending
            # repairs can never be used again.  (With a derive the old
            # graph stays alive and keeps serving its own epoch.)
            self._drop_epoch_extras(old_key)

    def _insert(self, key: _CacheKey, entry: _Entry) -> None:
        stale = self._cache.pop(key, None)
        if stale is not None:
            self._index.get(key[:2], set()).discard(key)
        self._cache[key] = entry
        self._index.setdefault(key[:2], set()).add(key)
        while len(self._cache) > self.max_entries:
            evicted_key, _ = self._cache.popitem(last=False)
            bucket = self._index.get(evicted_key[:2])
            if bucket is not None:
                bucket.discard(evicted_key)
                if not bucket:
                    del self._index[evicted_key[:2]]
            self._counters["evictions"].inc()

    # -- kernel snapshots --------------------------------------------------

    def _snapshot_for(
        self,
        graph: Any,
        lineage: int,
        epoch: int,
        view: str,
        neighbors: NeighborFn,
    ) -> Optional[_kernel.CSRGraph]:
        """The CSR snapshot for one ``(lineage, epoch, view)``, or None.

        Built at most once per key (None is remembered for graphs that
        cannot be snapshotted).  The build itself runs outside the lock;
        a concurrent duplicate build is harmless (idempotent result).
        """
        key = (lineage, epoch, view)
        with self._lock:
            if key in self._snapshots:
                self._snapshots.move_to_end(key)
                return self._snapshots[key]
        csr = _kernel.snapshot(graph, neighbors)
        if csr is not None and csr.n < self.kernel_min_nodes:
            csr = None
        with self._lock:
            self._snapshots[key] = csr
            self._snapshots.move_to_end(key)
            while len(self._snapshots) > self._snapshots_max:
                self._snapshots.popitem(last=False)
        return csr

    # -- incremental repair ------------------------------------------------

    @staticmethod
    def _repair_labels(
        tree_fn: Callable[..., Dict[Node, RouteLabel]],
        neighbors: NeighborFn,
        source: Node,
        pending: _PendingRepair,
    ) -> Optional[Dict[Node, RouteLabel]]:
        """Rebuild a tree from its pre-mutation labels, or None to punt.

        Labels whose paths avoid every touched element are exact verbatim
        (a restrictive mutation cannot improve any path, so the stored
        path is still the deterministic optimum).  Affected destinations
        recompute through the tree functions' ``targets`` contract, which
        returns exactly the labels a full run would.  Destinations that
        became unreachable simply drop out, matching the full run.
        """
        touched_nodes, touched_edges = pending.nodes, pending.edges
        if source in touched_nodes:
            return None  # the root itself is gone; recompute from scratch
        repaired: Dict[Node, RouteLabel] = {}
        affected: list = []
        for dest, label in pending.labels.items():
            path = label.path
            hit = bool(touched_nodes) and not touched_nodes.isdisjoint(path)
            if not hit and touched_edges:
                hit = any(
                    (a, b) in touched_edges for a, b in zip(path, path[1:])
                )
            if hit:
                if dest not in touched_nodes:
                    affected.append(dest)
            else:
                repaired[dest] = label
        if affected:
            recomputed = tree_fn(neighbors, source, targets=affected)
            for dest in affected:
                label = recomputed.get(dest)
                if label is not None:
                    repaired[dest] = label
        return repaired

    def _add_repair(self, key: _CacheKey, pending: _PendingRepair) -> None:
        if key in self._repairs:
            self._repairs.pop(key)
            self._repair_index.get(key[:2], set()).discard(key)
        self._repairs[key] = pending
        self._repair_index.setdefault(key[:2], set()).add(key)
        while len(self._repairs) > self.max_entries:
            evicted_key, _ = self._repairs.popitem(last=False)
            bucket = self._repair_index.get(evicted_key[:2])
            if bucket is not None:
                bucket.discard(evicted_key)
                if not bucket:
                    del self._repair_index[evicted_key[:2]]

    def _pop_repair(self, key: _CacheKey) -> Optional[_PendingRepair]:
        pending = self._repairs.pop(key, None)
        if pending is not None:
            bucket = self._repair_index.get(key[:2])
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del self._repair_index[key[:2]]
        return pending

    def _discard_repair(self, key: _CacheKey) -> None:
        self._pop_repair(key)

    def _drop_epoch_extras(self, epoch_key: Tuple[int, int]) -> None:
        """Drop snapshots and pending repairs of one dead epoch."""
        for snap_key in [k for k in self._snapshots if k[:2] == epoch_key]:
            del self._snapshots[snap_key]
        for key in list(self._repair_index.pop(epoch_key, ())):
            self._repairs.pop(key, None)


def _touched(
    removed_instances: Iterable[Node],
    removed_links: Iterable[Tuple[Node, Node]],
    degraded_links: Iterable[Tuple[Node, Node]],
) -> Tuple[FrozenSet[Node], FrozenSet[Tuple[Node, Node]]]:
    nodes = frozenset(removed_instances)
    edges = frozenset(removed_links) | frozenset(degraded_links)
    return nodes, edges
