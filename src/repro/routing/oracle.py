"""Process-wide routing-tree oracle with topology epochs (perf tentpole).

The paper's baseline is dominated by Wang-Crowcroft shortest-widest tree
computations -- the ``O(N^4)`` all-pairs step of Table 1.  Before this
module, five independent call sites (abstract-graph construction, the
distributed planner's local views, the QoS monitor's probes, the
serialized-chain control, and the baseline's abstract-path search) each
kept a throwaway per-call ``trees`` dict and recomputed identical trees
from scratch.  :class:`RouteOracle` replaces all of them with one bounded,
process-wide memo:

* **Keying.**  Cached trees are keyed ``(lineage, epoch, view, order,
  source)``.  A *lineage* identifies a family of graphs related by
  mutation; the *epoch* is a monotonic counter bumped by every mutation in
  that lineage, so a stale tree is unreachable by construction -- there is
  no code path that can serve an old epoch's tree for a new epoch's graph.
  ``view`` distinguishes adjacency views of the same graph (e.g. the
  directed overlay vs. the undirected relaxation the serialized-chain
  control plans over); ``order`` selects shortest-widest or
  widest-shortest trees.

* **Scoped invalidation.**  The failure models
  (:func:`repro.network.failures.degrade_links` and friends) are *pure*:
  they return a new graph.  They report the derivation to the oracle via
  :meth:`derive`, naming exactly which links/instances were touched.
  Because degradations and removals can only make *alternative* paths
  worse (never the chosen ones better), a cached tree that does not
  traverse any touched element is still exact -- including its
  deterministic tie-breaks -- and is carried forward into the new epoch.
  A single link failure therefore does not cold-start the whole cache;
  only sources whose trees crossed the failed link recompute.  Additive
  mutations (revival, churn join) can create *better* paths, so they
  invalidate the whole lineage (``additive=True``).

* **Bounded LRU + weakrefs.**  The cache holds at most ``max_entries``
  trees (least-recently-used eviction) and tracks graphs by weak
  reference, purging a graph's entries when it is garbage-collected, so
  long-running campaigns cannot leak memory through dead overlays.

Correctness contract: the oracle never changes results, only cost.  A
cache hit returns exactly the labels :func:`shortest_widest_tree` /
:func:`widest_shortest_tree` would compute on the same graph (property
tested in ``tests/routing/test_oracle.py`` and
``tests/services/test_abstract_graph.py``).  Returned label dicts are
shared; callers must treat them as immutable.
"""

from __future__ import annotations

import itertools
import threading
import warnings
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Optional,
    Set,
    Tuple,
)

from repro.obs import metrics as obs_metrics
from repro.routing.wang_crowcroft import (
    NeighborFn,
    Node,
    RouteLabel,
    shortest_widest_tree,
    widest_shortest_tree,
)

#: Tree orders the oracle can serve.
SHORTEST_WIDEST = "shortest_widest"
WIDEST_SHORTEST = "widest_shortest"

_TREE_FN: Dict[str, Callable[..., Dict[Node, RouteLabel]]] = {
    SHORTEST_WIDEST: shortest_widest_tree,
    WIDEST_SHORTEST: widest_shortest_tree,
}

_CacheKey = Tuple[int, int, str, str, Hashable]


@dataclass
class OracleStats:
    """Counter snapshot; taken via :meth:`RouteOracle.stats`."""

    hits: int = 0
    misses: int = 0
    carried: int = 0  # trees surviving a mutation via scoped carry-forward
    dropped: int = 0  # trees dropped by scoped invalidation
    invalidated: int = 0  # trees dropped by full (additive) invalidation
    evictions: int = 0  # LRU evictions

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when no lookups)."""
        return self.hits / self.lookups if self.lookups else 0.0


class _GraphMeta:
    """Lineage/epoch bookkeeping attached (weakly) to one graph object."""

    __slots__ = ("lineage", "epoch")

    def __init__(self, lineage: int, epoch: int) -> None:
        self.lineage = lineage
        self.epoch = epoch


class _Entry:
    """One cached tree plus the elements its label paths traverse."""

    __slots__ = ("labels", "nodes", "edges")

    def __init__(self, labels: Dict[Node, RouteLabel]) -> None:
        self.labels = labels
        nodes: Set[Node] = set()
        edges: Set[Tuple[Node, Node]] = set()
        for label in labels.values():
            path = label.path
            nodes.update(path)
            edges.update(zip(path, path[1:]))
        self.nodes: FrozenSet[Node] = frozenset(nodes)
        self.edges: FrozenSet[Tuple[Node, Node]] = frozenset(edges)

    def touches(
        self,
        touched_nodes: FrozenSet[Node],
        touched_edges: FrozenSet[Tuple[Node, Node]],
    ) -> bool:
        return bool(self.nodes & touched_nodes) or bool(self.edges & touched_edges)


class RouteOracle:
    """Topology-epoch-aware cache of per-source routing trees.

    One process-wide instance (:meth:`default`) backs every routing-heavy
    subsystem; tests may construct private instances.  All public methods
    are thread-safe.
    """

    _default: Optional["RouteOracle"] = None
    _default_lock = threading.Lock()

    def __init__(
        self,
        max_entries: int = 4096,
        *,
        enabled: bool = True,
        registry: Optional[obs_metrics.MetricsRegistry] = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        #: When False every lookup computes directly (no caching, no
        #: counters) -- the A/B switch the perf harness flips.
        self.enabled = enabled
        #: The counters live in a metrics registry (``oracle.*``): the
        #: process-wide registry for :meth:`default`, so registry
        #: snapshots and :meth:`stats` read the same storage; a private
        #: registry for directly-constructed oracles, so test instances
        #: never cross-talk.
        self._registry = registry if registry is not None else (
            obs_metrics.MetricsRegistry()
        )
        # Registered one by one with literal names (rule SFL005): the
        # registry is the single backing store, so a registry snapshot and
        # :meth:`stats` can never disagree, and every ``oracle.*`` series
        # stays grep-able.
        self._counters: Dict[str, obs_metrics.Counter] = {
            "hits": self._registry.counter(
                "oracle.hits", "tree lookups served from cache"
            ),
            "misses": self._registry.counter(
                "oracle.misses", "tree lookups that computed"
            ),
            "carried": self._registry.counter(
                "oracle.carried",
                "trees surviving a mutation via scoped carry-forward",
            ),
            "dropped": self._registry.counter(
                "oracle.dropped", "trees dropped by scoped invalidation"
            ),
            "invalidated": self._registry.counter(
                "oracle.invalidated",
                "trees dropped by full (additive) invalidation",
            ),
            "evictions": self._registry.counter(
                "oracle.evictions", "LRU evictions"
            ),
        }
        self._lock = threading.RLock()
        self._meta: "weakref.WeakKeyDictionary[Any, _GraphMeta]" = (
            weakref.WeakKeyDictionary()
        )
        self._lineage_counter = itertools.count()
        #: Highest epoch ever issued per lineage (epochs never reuse).
        self._lineage_tip: Dict[int, int] = {}
        self._cache: "OrderedDict[_CacheKey, _Entry]" = OrderedDict()
        #: ``(lineage, epoch) -> keys`` index for O(entries-of-graph)
        #: invalidation instead of full-cache scans.
        self._index: Dict[Tuple[int, int], Set[_CacheKey]] = {}

    # -- singleton ---------------------------------------------------------

    @classmethod
    def default(cls) -> "RouteOracle":
        """The process-wide oracle (created on first use).

        Its counters live in the process-wide metrics registry
        (:func:`repro.obs.metrics.registry`) under ``oracle.*``.
        """
        with cls._default_lock:
            if cls._default is None:
                cls._default = cls(registry=obs_metrics.registry())
            return cls._default

    @classmethod
    def reset_default(cls) -> "RouteOracle":
        """Replace the process-wide oracle with a fresh one (tests).

        The ``oracle.*`` counters in the process registry are zeroed so
        the fresh oracle starts from a clean slate.
        """
        with cls._default_lock:
            cls._default = cls(registry=obs_metrics.registry())
            cls._default.reset_stats()
            return cls._default

    # -- lookups -----------------------------------------------------------

    def tree(
        self,
        graph: Any,
        source: Node,
        *,
        order: str = SHORTEST_WIDEST,
        view: str = "successors",
        neighbors: Optional[NeighborFn] = None,
    ) -> Dict[Node, RouteLabel]:
        """The single-source routing tree for ``source`` on ``graph``.

        Args:
            graph: any object whose topology the trees describe; used only
                as the cache identity (weakly referenced).
            source: tree root.
            order: :data:`SHORTEST_WIDEST` or :data:`WIDEST_SHORTEST`.
            view: distinguishes multiple adjacency views of one graph; the
                same ``view`` string must always denote the same adjacency.
            neighbors: adjacency function; defaults to ``graph.successors``
                (or ``graph.neighbors`` for underlay-style graphs).

        Returns the label dict of the underlying tree function.  **Treat it
        as immutable** -- it is shared across callers.
        """
        tree_fn = _TREE_FN.get(order)
        if tree_fn is None:
            raise ValueError(f"unknown tree order {order!r}")
        if neighbors is None:
            neighbors = getattr(graph, "successors", None) or graph.neighbors
        if not self.enabled:
            return tree_fn(neighbors, source)
        with self._lock:
            meta = self._meta_for(graph)
            key = (meta.lineage, meta.epoch, view, order, source)
            entry = self._cache.get(key)
            if entry is not None:
                self._cache.move_to_end(key)
                self._counters["hits"].inc()
                return entry.labels
            self._counters["misses"].inc()
        labels = tree_fn(neighbors, source)
        with self._lock:
            self._insert(key, _Entry(labels))
        return labels

    # -- mutation protocol -------------------------------------------------

    def derive(
        self,
        old: Any,
        new: Any,
        *,
        removed_instances: Iterable[Node] = (),
        removed_links: Iterable[Tuple[Node, Node]] = (),
        degraded_links: Iterable[Tuple[Node, Node]] = (),
        additive: bool = False,
    ) -> None:
        """Record that ``new`` is ``old`` after a mutation.

        ``new`` joins ``old``'s lineage at the next epoch.  Trees cached
        for ``old`` that do not traverse any touched element are *copied*
        into the new epoch (``old`` keeps its own entries -- the pure
        failure functions leave the input graph alive and queryable).
        ``additive=True`` marks mutations that can improve paths (revival,
        join); nothing is carried then.
        """
        if new is old:
            raise ValueError("derive() needs a distinct new graph; use mutate()")
        touched_nodes, touched_edges = _touched(
            removed_instances, removed_links, degraded_links
        )
        with self._lock:
            old_meta = self._meta_for(old)
            epoch = self._next_epoch(old_meta.lineage)
            new_meta = _GraphMeta(old_meta.lineage, epoch)
            self._register(new, new_meta)
            self._propagate(
                old_meta, new_meta, touched_nodes, touched_edges, additive,
                move=False,
            )

    def mutate(
        self,
        graph: Any,
        *,
        removed_instances: Iterable[Node] = (),
        removed_links: Iterable[Tuple[Node, Node]] = (),
        degraded_links: Iterable[Tuple[Node, Node]] = (),
        additive: bool = False,
    ) -> None:
        """Record an in-place mutation of ``graph`` (epoch bump).

        The graph object stays the same, so surviving trees are *moved* to
        the new epoch and the old epoch becomes unreachable.
        """
        touched_nodes, touched_edges = _touched(
            removed_instances, removed_links, degraded_links
        )
        with self._lock:
            meta = self._meta_for(graph)
            old_meta = _GraphMeta(meta.lineage, meta.epoch)
            meta.epoch = self._next_epoch(meta.lineage)
            self._propagate(
                old_meta, meta, touched_nodes, touched_edges, additive,
                move=True,
            )

    def invalidate(self, graph: Any) -> None:
        """Drop every cached tree for ``graph`` (all views, all orders)."""
        with self._lock:
            meta = self._meta.get(graph)
            if meta is None:
                return
            for key in self._index.pop((meta.lineage, meta.epoch), ()):
                if self._cache.pop(key, None) is not None:
                    self._counters["invalidated"].inc()

    def clear(self) -> None:
        """Drop everything (stats survive; see :meth:`reset_stats`)."""
        with self._lock:
            self._cache.clear()
            self._index.clear()

    # -- introspection -----------------------------------------------------

    def stats(self) -> OracleStats:
        """A snapshot of the counters, read straight from the registry."""
        with self._lock:
            return OracleStats(
                **{
                    name: int(counter.total)
                    for name, counter in self._counters.items()
                }
            )

    @property
    def counters(self) -> OracleStats:
        """Deprecated pre-registry alias for :meth:`stats`.

        The bespoke counters attribute is gone; the ``oracle.*`` counters
        in :func:`repro.obs.metrics.registry` are the single source of
        truth and this thin alias merely snapshots them.
        """
        warnings.warn(
            "RouteOracle.counters is deprecated; use RouteOracle.stats() or "
            "the oracle.* counters in repro.obs.metrics.registry()",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.stats()

    def reset_stats(self) -> None:
        with self._lock:
            for counter in self._counters.values():
                counter.reset()

    def epoch(self, graph: Any) -> int:
        """Current epoch of ``graph`` (registers it at epoch 0 if new)."""
        with self._lock:
            return self._meta_for(graph).epoch

    def lineage(self, graph: Any) -> int:
        """Lineage id of ``graph`` (registers it if new)."""
        with self._lock:
            return self._meta_for(graph).lineage

    def cached_sources(self, graph: Any, *, view: str = "successors") -> Set[Node]:
        """Sources with a live cached tree for ``graph`` (test hook)."""
        with self._lock:
            meta = self._meta.get(graph)
            if meta is None:
                return set()
            return {
                key[4]
                for key in self._index.get((meta.lineage, meta.epoch), ())
                if key[2] == view
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._cache)

    # -- internals ---------------------------------------------------------

    def _meta_for(self, graph: Any) -> _GraphMeta:
        meta = self._meta.get(graph)
        if meta is None:
            lineage = next(self._lineage_counter)
            meta = _GraphMeta(lineage, 0)
            self._lineage_tip[lineage] = 0
            self._register(graph, meta)
        return meta

    def _register(self, graph: Any, meta: _GraphMeta) -> None:
        self._meta[graph] = meta
        weakref.finalize(graph, self._purge, weakref.ref(self), meta)

    @staticmethod
    def _purge(oracle_ref: "weakref.ref[RouteOracle]", meta: _GraphMeta) -> None:
        oracle = oracle_ref()
        if oracle is None:
            return
        with oracle._lock:
            for key in oracle._index.pop((meta.lineage, meta.epoch), ()):
                oracle._cache.pop(key, None)

    def _next_epoch(self, lineage: int) -> int:
        tip = self._lineage_tip.get(lineage, 0) + 1
        self._lineage_tip[lineage] = tip
        return tip

    def _propagate(
        self,
        old_meta: _GraphMeta,
        new_meta: _GraphMeta,
        touched_nodes: FrozenSet[Node],
        touched_edges: FrozenSet[Tuple[Node, Node]],
        additive: bool,
        *,
        move: bool,
    ) -> None:
        old_key = (old_meta.lineage, old_meta.epoch)
        keys = self._index.get(old_key, set())
        if move:
            self._index.pop(old_key, None)
        for key in sorted(keys, key=repr):
            entry = self._cache.get(key)
            if entry is None:
                continue
            if move:
                del self._cache[key]
            if additive:
                # Additive mutations can create better paths anywhere: no
                # tree survives into the new epoch.  (With ``move=False``
                # the old graph keeps its still-valid entries; the new
                # epoch simply starts cold.)
                self._counters["invalidated"].inc()
                continue
            if entry.touches(touched_nodes, touched_edges):
                self._counters["dropped"].inc()
                continue
            new_key = (new_meta.lineage, new_meta.epoch) + key[2:]
            self._insert(new_key, entry)
            self._counters["carried"].inc()

    def _insert(self, key: _CacheKey, entry: _Entry) -> None:
        stale = self._cache.pop(key, None)
        if stale is not None:
            self._index.get(key[:2], set()).discard(key)
        self._cache[key] = entry
        self._index.setdefault(key[:2], set()).add(key)
        while len(self._cache) > self.max_entries:
            evicted_key, _ = self._cache.popitem(last=False)
            bucket = self._index.get(evicted_key[:2])
            if bucket is not None:
                bucket.discard(evicted_key)
                if not bucket:
                    del self._index[evicted_key[:2]]
            self._counters["evictions"].inc()


def _touched(
    removed_instances: Iterable[Node],
    removed_links: Iterable[Tuple[Node, Node]],
    degraded_links: Iterable[Tuple[Node, Node]],
) -> Tuple[FrozenSet[Node], FrozenSet[Tuple[Node, Node]]]:
    nodes = frozenset(removed_instances)
    edges = frozenset(removed_links) | frozenset(degraded_links)
    return nodes, edges
