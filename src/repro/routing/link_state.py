"""Distributed link-state advertisement with bounded scope.

The sFlow paper assumes "all service nodes are aware of the portion of the
overall overlay graph within a two-hop vicinity" (Sec. 4, Fig. 9).  This
module substantiates that assumption with an actual protocol run on the
discrete-event simulator: every overlay instance floods a link-state
advertisement (LSA) describing its outgoing service links, with a hop-scope
(TTL) equal to the knowledge horizon.  LSAs propagate over overlay
adjacencies in both directions (knowing a neighbour implies hearing from
it), so after the flood each node has learned every instance within
``horizon`` undirected overlay hops -- exactly the
:meth:`~repro.network.overlay.OverlayGraph.ego_view` of the same radius,
which the tests assert.

:func:`collect_local_views` is the convenience entry point; it returns both
the per-node views and the protocol cost (messages/bytes), which the
evaluation reports as sFlow's knowledge-maintenance overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.network.overlay import OverlayGraph, ServiceInstance, ServiceLink
from repro.sim.channels import Envelope, MessageNetwork
from repro.sim.engine import Environment, ProcessGenerator


@dataclass(frozen=True)
class LinkStateAdvertisement:
    """One node's view of itself: its identity and outgoing service links."""

    origin: ServiceInstance
    links: Tuple[ServiceLink, ...]
    ttl: int


@dataclass
class LinkStateReport:
    """Outcome of a bounded link-state flood."""

    views: Dict[ServiceInstance, OverlayGraph]
    messages: int
    bytes: int
    converged_at: float


class _LinkStateNode:
    """Protocol endpoint: floods its own LSA, re-floods fresh foreign LSAs."""

    def __init__(
        self,
        me: ServiceInstance,
        overlay: OverlayGraph,
        network: MessageNetwork,
    ) -> None:
        self.me = me
        self.overlay = overlay
        self.network = network
        self.mailbox = network.register(me)
        self.known: Dict[ServiceInstance, LinkStateAdvertisement] = {}
        # Undirected neighbourhood: out-neighbours plus in-neighbours.
        out_neighbors = [dst for dst, _ in overlay.successors(me)]
        in_neighbors = [src for src, _ in overlay.predecessors(me)]
        self.neighbors: Tuple[ServiceInstance, ...] = tuple(
            sorted(set(out_neighbors) | set(in_neighbors))
        )

    def originate(self, horizon: int) -> None:
        lsa = LinkStateAdvertisement(self.me, self.overlay.out_links(self.me), horizon)
        self.known[self.me] = lsa
        if horizon >= 1:
            self._flood(lsa, exclude=None)

    def run(self) -> ProcessGenerator:
        """Simulation process: absorb LSAs, re-flood fresh ones while TTL lasts."""
        while True:
            envelope: Envelope = yield self.mailbox.get()
            lsa: LinkStateAdvertisement = envelope.payload
            seen = self.known.get(lsa.origin)
            if seen is not None and seen.ttl >= lsa.ttl:
                continue  # an equally-fresh copy was already processed
            # A higher-TTL copy must be re-flooded even if the origin is
            # known: a low-TTL copy that raced ahead over a fast long path
            # must not suppress coverage of the full hop horizon.
            self.known[lsa.origin] = lsa
            if lsa.ttl > 1:
                forwarded = LinkStateAdvertisement(lsa.origin, lsa.links, lsa.ttl - 1)
                self._flood(forwarded, exclude=envelope.src)

    def _flood(
        self,
        lsa: LinkStateAdvertisement,
        exclude: Optional[ServiceInstance],
    ) -> None:
        for neighbor in self.neighbors:
            if neighbor == exclude:
                continue
            self.network.send(
                self.me,
                neighbor,
                lsa,
                latency=self._latency_to(neighbor),
                size=1 + len(lsa.links),
            )

    def _latency_to(self, neighbor: ServiceInstance) -> float:
        """Propagation delay to a neighbour: the faster of the two directed
        service links that make them adjacent."""
        forward = self.overlay.link(self.me, neighbor)
        backward = self.overlay.link(neighbor, self.me)
        latencies = [
            link.metrics.latency for link in (forward, backward) if link is not None
        ]
        return min(latencies) if latencies else 0.0

    def build_view(self) -> OverlayGraph:
        """Assemble the local overlay view from the LSAs heard."""
        view = OverlayGraph()
        for origin in sorted(self.known):
            view.add_instance(origin)
        for origin in sorted(self.known):
            for link in self.known[origin].links:
                if link.dst in self.known:
                    view.add_link(link.src, link.dst, link.metrics, link.underlay_path)
        return view


def collect_local_views(
    overlay: OverlayGraph,
    horizon: int = 2,
    *,
    env: Optional[Environment] = None,
) -> LinkStateReport:
    """Run the bounded LSA flood and return every node's local view.

    Args:
        overlay: the full overlay graph (the ground truth being advertised).
        horizon: knowledge radius in overlay hops (the paper uses 2).
        env: optionally reuse an existing simulation environment.

    The returned views satisfy ``views[x] == overlay.ego_view(x, horizon)``
    structurally (same instances, same links); see
    ``tests/routing/test_link_state.py``.
    """
    if horizon < 0:
        raise ValueError("horizon must be >= 0")
    env = env or Environment()
    network = MessageNetwork(env)
    nodes = [_LinkStateNode(inst, overlay, network) for inst in overlay.instances()]
    for node in nodes:
        env.process(node.run())
    for node in nodes:
        node.originate(horizon)
    _drain(env)
    views = {node.me: node.build_view() for node in nodes}
    return LinkStateReport(
        views=views,
        messages=network.stats.messages,
        bytes=network.stats.bytes,
        converged_at=env.now,
    )


def _drain(env: Environment) -> None:
    """Run until no deliveries remain (receiver processes block forever)."""
    while env.peek() != float("inf"):
        env.step()
