"""Distributed widest-path computation by distance-vector exchange.

The Wang-Crowcroft module computes shortest-widest paths centrally from
link state.  Real overlays in 2004 often ran *distance-vector* protocols
instead -- nodes exchange summaries with neighbours only and never learn
the topology.  This module implements the widest-path (max-min bandwidth)
Bellman-Ford on the simulator:

* every node keeps a vector ``destination -> (bandwidth, next_hop)``;
* the vector entry for a destination improves to
  ``max over out-neighbours v of min(bw(self -> v), vector_v[dest])``;
* since data flows *downstream*, vectors propagate **upstream**: whenever
  a node's vector improves it advertises to its in-neighbours;
* bandwidth is a bounded, monotonically-improving metric, so the protocol
  converges without count-to-infinity (no entry is ever withdrawn in a
  static overlay).

Convergence is cross-checked against the centralised
:func:`repro.routing.wang_crowcroft.widest_bandwidths` in
``tests/routing/test_distance_vector.py`` -- a second, independent
implementation of the same quantity, computed by message passing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.network.overlay import OverlayGraph, ServiceInstance
from repro.sim.channels import Envelope, MessageNetwork
from repro.sim.engine import Environment, ProcessGenerator

#: A node's advertised reachability: destination -> best bottleneck bandwidth.
Vector = Dict[ServiceInstance, float]


@dataclass
class DistanceVectorReport:
    """Converged protocol state plus its cost."""

    #: Per node: destination -> widest achievable bandwidth downstream.
    tables: Dict[ServiceInstance, Vector]
    #: Per node: destination -> chosen next hop.
    next_hops: Dict[ServiceInstance, Dict[ServiceInstance, ServiceInstance]]
    messages: int
    converged_at: float

    def bandwidth(self, src: ServiceInstance, dst: ServiceInstance) -> float:
        """Widest bandwidth from ``src`` to ``dst`` (0 when unreachable)."""
        if src == dst:
            return float("inf")
        return self.tables.get(src, {}).get(dst, 0.0)


class _DVNode:
    def __init__(
        self,
        me: ServiceInstance,
        overlay: OverlayGraph,
        network: MessageNetwork,
        advertisement_latency: float,
    ) -> None:
        self.me = me
        self.overlay = overlay
        self.network = network
        self.latency = advertisement_latency
        self.mailbox = network.register(me)
        self.vector: Vector = {me: float("inf")}
        self.next_hop: Dict[ServiceInstance, ServiceInstance] = {}
        # Last vector heard from each out-neighbour.
        self.heard: Dict[ServiceInstance, Vector] = {}
        self.out_links = {
            dst: metrics for dst, metrics in overlay.successors(me)
        }
        self.in_neighbors = tuple(
            src for src, _ in overlay.predecessors(me)
        )

    def advertise(self) -> None:
        for upstream in self.in_neighbors:
            self.network.send(
                self.me,
                upstream,
                dict(self.vector),
                latency=self.latency,
                size=len(self.vector),
            )

    def run(self) -> ProcessGenerator:
        while True:
            envelope: Envelope = yield self.mailbox.get()
            self.heard[envelope.src] = envelope.payload
            if self._recompute():
                self.advertise()

    def _recompute(self) -> bool:
        """Fold neighbour vectors into ours; True when anything improved."""
        changed = False
        for neighbor, advertised in self.heard.items():
            link = self.out_links.get(neighbor)
            if link is None or not link.reachable:
                continue
            for dest, downstream_bw in advertised.items():
                if dest == self.me:
                    continue
                candidate = min(link.bandwidth, downstream_bw)
                incumbent = self.vector.get(dest, 0.0)
                if candidate > incumbent or (
                    candidate == incumbent
                    and dest in self.next_hop
                    and neighbor < self.next_hop[dest]
                ):
                    if candidate > incumbent:
                        changed = True
                    self.vector[dest] = candidate
                    self.next_hop[dest] = neighbor
        return changed


def run_distance_vector(
    overlay: OverlayGraph,
    *,
    advertisement_latency: float = 1.0,
    env: Optional[Environment] = None,
) -> DistanceVectorReport:
    """Run widest-path distance-vector to convergence on ``overlay``.

    Every node seeds the protocol by advertising itself to its upstream
    neighbours; the event queue drains exactly when no vector can improve
    any further, which in a static overlay is guaranteed (the metric is
    bounded by the widest link and only ever grows).
    """
    env = env or Environment()
    network = MessageNetwork(env)
    nodes = [
        _DVNode(inst, overlay, network, advertisement_latency)
        for inst in overlay.instances()
    ]
    for node in nodes:
        env.process(node.run())
    for node in nodes:
        node.advertise()
    while env.peek() != float("inf"):
        env.step()
    tables = {}
    next_hops = {}
    for node in nodes:
        table = dict(node.vector)
        table.pop(node.me, None)
        tables[node.me] = table
        next_hops[node.me] = dict(node.next_hop)
    return DistanceVectorReport(
        tables=tables,
        next_hops=next_hops,
        messages=network.stats.messages,
        converged_at=env.now,
    )
