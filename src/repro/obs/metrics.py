"""Process-wide metrics: labelled counters, gauges and fixed-bucket histograms.

This is the quantitative half of :mod:`repro.obs`.  Every instrumented
subsystem (the sfederate protocol, the message transport, the route
oracle, the QoS monitor) registers its metrics in one process-wide
:class:`MetricsRegistry` and increments them unconditionally -- the
operations are a dict update each, cheap enough to stay on even when no
flight recording is active (the expensive half, tracing, is the part with
an explicit off switch).

Design constraints, in order:

* **Snapshot-able as plain dicts.**  :meth:`MetricsRegistry.snapshot`
  returns pure ``dict``/``list``/``float`` data -- JSON-serialisable, so
  the flight recorder can embed it and multiprocessing workers can ship
  it across process boundaries without custom picklers.
* **Mergeable.**  Evaluation campaigns fan independent sweep cells out
  over worker processes; each cell captures a *delta* snapshot
  (:func:`diff_snapshots`) and the parent folds them back together
  (:func:`merge_snapshots`, :meth:`MetricsRegistry.apply`).  Counters and
  histograms add; gauges are last-write-wins.
* **Deterministic.**  Nothing here reads a clock or an RNG.  A serial
  sweep and its parallel twin therefore merge to identical totals -- a
  property the eval tests assert.

Label handling follows the usual dimensional-metrics model: a metric name
identifies the quantity, keyword labels identify the series
(``counter.inc(outcome="failed")``).  Unlabelled use is the common, fast
case.  The registry is written for the single-writer simulation loop;
creation of metrics is locked, increments are plain dict updates (atomic
enough under the GIL for the supervising threads the test-suite uses).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

#: Canonical per-series key: sorted ``(label, value)`` pairs.
LabelKey = Tuple[Tuple[str, str], ...]

#: Default histogram bucket upper bounds (virtual-time scale: overlay link
#: latencies are O(1..50), federation times O(10..1000)).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0,
)

_NO_LABELS: LabelKey = ()


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def format_labels(key: LabelKey) -> str:
    """``(("a","1"),("b","x"))`` -> ``"a=1,b=x"`` (empty string unlabelled)."""
    return ",".join(f"{k}={v}" for k, v in key)


def parse_labels(text: str) -> LabelKey:
    """Inverse of :func:`format_labels` (labels must not contain ``,``/``=``)."""
    if not text:
        return ()
    return tuple(
        tuple(part.split("=", 1)) for part in text.split(",")  # type: ignore[misc]
    )


class Counter:
    """A monotonically increasing quantity, optionally labelled."""

    kind = "counter"
    __slots__ = ("name", "help", "_values")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease ({amount})")
        key = _label_key(labels) if labels else _NO_LABELS
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        """Current value of one series (0 if the series never incremented)."""
        key = _label_key(labels) if labels else _NO_LABELS
        return self._values.get(key, 0.0)

    @property
    def total(self) -> float:
        """Sum over all label series."""
        return sum(self._values.values())

    def reset(self) -> None:
        self._values.clear()

    def snapshot_values(self) -> Dict[str, float]:
        return {format_labels(k): v for k, v in sorted(self._values.items())}


class Gauge:
    """A point-in-time value (last write wins under merging)."""

    kind = "gauge"
    __slots__ = ("name", "help", "_values")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: object) -> None:
        key = _label_key(labels) if labels else _NO_LABELS
        self._values[key] = float(value)

    def add(self, delta: float, **labels: object) -> None:
        key = _label_key(labels) if labels else _NO_LABELS
        self._values[key] = self._values.get(key, 0.0) + delta

    def value(self, **labels: object) -> float:
        key = _label_key(labels) if labels else _NO_LABELS
        return self._values.get(key, 0.0)

    def reset(self) -> None:
        self._values.clear()

    def snapshot_values(self) -> Dict[str, float]:
        return {format_labels(k): v for k, v in sorted(self._values.items())}


class _HistSeries:
    __slots__ = ("counts", "sum", "count")

    def __init__(self, n_buckets: int) -> None:
        self.counts: List[int] = [0] * n_buckets
        self.sum = 0.0
        self.count = 0


class Histogram:
    """Fixed-bucket distribution: counts per upper bound plus sum/count.

    ``bounds`` are strictly increasing finite upper bounds; one implicit
    overflow bucket (``+inf``) is appended, so ``counts`` has
    ``len(bounds) + 1`` entries and ``counts[i]`` is the number of
    observations ``v`` with ``bounds[i-1] < v <= bounds[i]``.
    """

    kind = "histogram"
    __slots__ = ("name", "help", "bounds", "_values")

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must strictly increase: {bounds}")
        if bounds[-1] == float("inf"):
            bounds = bounds[:-1]  # the overflow bucket is implicit
        self.name = name
        self.help = help
        self.bounds = bounds
        self._values: Dict[LabelKey, _HistSeries] = {}

    def observe(self, value: float, **labels: object) -> None:
        key = _label_key(labels) if labels else _NO_LABELS
        series = self._values.get(key)
        if series is None:
            series = self._values[key] = _HistSeries(len(self.bounds) + 1)
        series.counts[bisect_left(self.bounds, value)] += 1
        series.sum += value
        series.count += 1

    def count(self, **labels: object) -> int:
        key = _label_key(labels) if labels else _NO_LABELS
        series = self._values.get(key)
        return series.count if series is not None else 0

    def mean(self, **labels: object) -> float:
        key = _label_key(labels) if labels else _NO_LABELS
        series = self._values.get(key)
        if series is None or not series.count:
            return 0.0
        return series.sum / series.count

    def reset(self) -> None:
        self._values.clear()

    def snapshot_values(self) -> Dict[str, dict]:
        return {
            format_labels(k): {
                "count": s.count,
                "sum": s.sum,
                "buckets": list(s.counts),
            }
            for k, s in sorted(self._values.items())
        }


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Get-or-create home of every metric in one process (or test scope)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, cls: type, name: str, *args: Any) -> Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = cls(name, *args)
            elif not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        metric = self._get_or_create(Histogram, name, help, buckets)
        if metric.bounds != tuple(
            float(b) for b in buckets if b != float("inf")
        ):
            raise ValueError(
                f"histogram {name!r} already registered with different buckets"
            )
        return metric

    def get(self, name: str) -> Optional[Metric]:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def reset(self) -> None:
        """Zero every metric's series (registrations survive).

        Held metric references stay live -- resetting never orphans the
        module-level handles the instrumented subsystems cache.
        """
        with self._lock:
            for metric in self._metrics.values():
                metric.reset()

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> Dict[str, dict]:
        """The whole registry as plain dicts (JSON/pickle friendly)."""
        with self._lock:
            out: Dict[str, dict] = {}
            for name in sorted(self._metrics):
                metric = self._metrics[name]
                record = {
                    "kind": metric.kind,
                    "values": metric.snapshot_values(),
                }
                if isinstance(metric, Histogram):
                    record["bounds"] = list(metric.bounds)
                out[name] = record
            return out

    def apply(self, snapshot: Dict[str, dict]) -> None:
        """Fold a snapshot (typically a worker's delta) into this registry.

        Counters and histogram series add; gauges take the snapshot's
        value.  Metrics are created on demand, so a parent process can
        absorb series it never touched itself.
        """
        for name, record in snapshot.items():
            kind = record["kind"]
            if kind == "counter":
                counter = self.counter(name)
                for labels, value in record["values"].items():
                    if value:
                        counter.inc(value, **dict(parse_labels(labels)))
            elif kind == "gauge":
                gauge = self.gauge(name)
                for labels, value in record["values"].items():
                    gauge.set(value, **dict(parse_labels(labels)))
            elif kind == "histogram":
                hist = self.histogram(name, buckets=tuple(record["bounds"]))
                for labels, series in record["values"].items():
                    key = parse_labels(labels)
                    target = hist._values.get(key)
                    if target is None:
                        target = hist._values[key] = _HistSeries(
                            len(hist.bounds) + 1
                        )
                    for i, c in enumerate(series["buckets"]):
                        target.counts[i] += c
                    target.sum += series["sum"]
                    target.count += series["count"]
            else:  # pragma: no cover - future-proofing
                raise ValueError(f"unknown metric kind {kind!r} for {name!r}")


# -- snapshot algebra --------------------------------------------------------


def merge_snapshots(a: Dict[str, dict], b: Dict[str, dict]) -> Dict[str, dict]:
    """Combine two snapshots: counters/histograms add, gauges take ``b``."""
    out = {name: _copy_record(record) for name, record in a.items()}
    for name, record in b.items():
        base = out.get(name)
        if base is None:
            out[name] = _copy_record(record)
            continue
        if base["kind"] != record["kind"]:
            raise ValueError(f"metric {name!r} changed kind across snapshots")
        if record["kind"] == "counter":
            for labels, value in record["values"].items():
                base["values"][labels] = base["values"].get(labels, 0.0) + value
        elif record["kind"] == "gauge":
            base["values"].update(record["values"])
        else:
            if base["bounds"] != record["bounds"]:
                raise ValueError(f"histogram {name!r} bounds differ")
            for labels, series in record["values"].items():
                target = base["values"].get(labels)
                if target is None:
                    base["values"][labels] = dict(
                        series, buckets=list(series["buckets"])
                    )
                    continue
                target["count"] += series["count"]
                target["sum"] += series["sum"]
                target["buckets"] = [
                    x + y for x, y in zip(target["buckets"], series["buckets"])
                ]
    return out


def diff_snapshots(
    after: Dict[str, dict], before: Dict[str, dict]
) -> Dict[str, dict]:
    """What changed between two snapshots of the same registry.

    Counter/histogram series subtract; series (and whole metrics) whose
    delta is zero are omitted, so the diff of an untouched registry is
    ``{}`` regardless of what was registered before -- the property that
    makes per-cell deltas comparable across the serial/parallel eval
    split.  Gauges keep their ``after`` value (a gauge has no delta).
    """
    out: Dict[str, dict] = {}
    for name, record in after.items():
        old = before.get(name)
        kind = record["kind"]
        if kind == "counter":
            old_values = old["values"] if old else {}
            values = {
                labels: value - old_values.get(labels, 0.0)
                for labels, value in record["values"].items()
                if value != old_values.get(labels, 0.0)
            }
            if values:
                out[name] = {"kind": kind, "values": values}
        elif kind == "gauge":
            if record["values"]:
                out[name] = _copy_record(record)
        else:
            if old is not None and old.get("bounds") != record.get("bounds"):
                raise ValueError(f"histogram {name!r} bounds differ")
            old_values = old["values"] if old else {}
            values = {}
            for labels, series in record["values"].items():
                prior = old_values.get(labels)
                if prior is None:
                    if series["count"]:
                        values[labels] = dict(
                            series, buckets=list(series["buckets"])
                        )
                    continue
                count = series["count"] - prior["count"]
                if not count:
                    continue
                values[labels] = {
                    "count": count,
                    "sum": series["sum"] - prior["sum"],
                    "buckets": [
                        x - y
                        for x, y in zip(series["buckets"], prior["buckets"])
                    ],
                }
            if values:
                out[name] = {
                    "kind": kind,
                    "values": values,
                    "bounds": list(record["bounds"]),
                }
    return out


def _copy_record(record: dict) -> dict:
    copied = {"kind": record["kind"], "values": {}}
    if "bounds" in record:
        copied["bounds"] = list(record["bounds"])
    for labels, value in record["values"].items():
        copied["values"][labels] = (
            dict(value, buckets=list(value["buckets"]))
            if isinstance(value, dict)
            else value
        )
    return copied


# -- the process-wide registry ----------------------------------------------

_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide registry every instrumented subsystem shares.

    Always the same object for the life of the process; tests isolate by
    calling :meth:`MetricsRegistry.reset` (which zeroes values without
    invalidating held metric handles).
    """
    return _REGISTRY
