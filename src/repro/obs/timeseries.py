"""Sim-time metric series: the sampled pipeline over the registry.

:mod:`repro.obs.metrics` answers "how much, in total"; this module answers
"how much, *when*" -- the missing half of the paper's monitoring story.  A
:class:`SeriesSampler` is a simulation process that scrapes the metrics
registry every ``interval`` units of *virtual* time and appends the change
since the previous scrape to per-metric ring-buffer :class:`Series`:

* **counters** sample as per-interval *deltas* (``rate()`` divides by the
  interval); zero-delta intervals are omitted, so idle counters cost no
  points;
* **gauges** sample as ``(last, min, max)`` triples -- identical on raw
  scrapes, meaningful after :meth:`Series.downsample` folds several
  scrapes into one window;
* **histograms** sample as per-interval ``(count, sum, bucket-deltas)``
  rows.  Quantiles are *derived on demand* (:meth:`Series.quantile`,
  Prometheus-style linear interpolation inside the winning bucket) rather
  than stored, which is what keeps the merge exact: bucket rows add,
  whereas pre-computed quantiles have no valid merge.

Everything round-trips through plain dicts (a *bank*,
``{series key -> series dict}``): JSON-able for the flight recorder's
``series`` record (format ``sflow-flight-recorder/2``), picklable for
multiprocessing cells.  :func:`merge_banks` folds worker banks exactly the
way :func:`repro.obs.metrics.merge_snapshots` folds snapshots -- counter
and histogram points add at equal timestamps, gauges take the later write
-- and is deterministic in fold order, so a parallel sweep's folded series
are bit-identical to the serial sweep's (the eval tests assert it).

Like the rest of :mod:`repro.obs`, nothing here reads a wall clock or an
RNG; sample timestamps come from the injected clock (normally a
:class:`~repro.obs.trace.SimClock`).  The sampler is strictly opt-in --
with no sampler installed the pipeline costs nothing at all.
"""

from __future__ import annotations

from collections import deque
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.obs import metrics as _metrics

__all__ = [
    "Series",
    "SeriesSampler",
    "bank_series",
    "merge_banks",
    "series_key",
]

#: A sample point.  Shape depends on the series kind:
#: counter ``(t, delta)``; gauge ``(t, last, min, max)``;
#: histogram ``(t, count, sum, [bucket deltas...])``.
Point = Tuple[Any, ...]

#: Default ring-buffer capacity per series (points, not bytes).
DEFAULT_CAPACITY = 4096


def series_key(metric: str, labels: str = "") -> str:
    """The bank key of one series: ``"metric|labels"`` (labels may be "")."""
    return f"{metric}|{labels}"


class Series:
    """One metric series over sim time, bounded by a ring buffer.

    Points are appended in non-decreasing time order (the sampler's scrape
    loop guarantees it); the oldest points fall off once ``capacity`` is
    reached, which bounds memory for arbitrarily long campaigns.
    """

    __slots__ = ("metric", "kind", "labels", "interval", "bounds", "_points")

    def __init__(
        self,
        metric: str,
        kind: str,
        labels: str = "",
        *,
        interval: float = 1.0,
        bounds: Optional[Sequence[float]] = None,
        capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        if kind not in ("counter", "gauge", "histogram"):
            raise ValueError(f"unknown series kind {kind!r}")
        if interval <= 0:
            raise ValueError("series interval must be > 0")
        if kind == "histogram" and bounds is None:
            raise ValueError("histogram series need bucket bounds")
        self.metric = metric
        self.kind = kind
        self.labels = labels
        self.interval = interval
        self.bounds: Optional[Tuple[float, ...]] = (
            tuple(float(b) for b in bounds) if bounds is not None else None
        )
        self._points: Deque[Point] = deque(maxlen=capacity)

    @property
    def key(self) -> str:
        return series_key(self.metric, self.labels)

    def __len__(self) -> int:
        return len(self._points)

    def __bool__(self) -> bool:
        return True

    # -- appending ---------------------------------------------------------

    def append(self, point: Point) -> None:
        """Append one point (times must be non-decreasing)."""
        if self._points and point[0] < self._points[-1][0]:
            raise ValueError(
                f"series {self.key!r} time went backwards: "
                f"{point[0]} < {self._points[-1][0]}"
            )
        self._points.append(tuple(point))

    # -- reading -----------------------------------------------------------

    def points(self) -> List[Point]:
        return list(self._points)

    def times(self) -> List[float]:
        return [p[0] for p in self._points]

    def window(self, start: float, end: float) -> List[Point]:
        """Points with ``start < t <= end`` (half-open, newest inclusive)."""
        return [p for p in self._points if start < p[0] <= end]

    def values(self) -> List[float]:
        """Scalar view: counter deltas / gauge last values per point."""
        if self.kind == "histogram":
            raise ValueError("histogram series have no scalar values; "
                             "use quantile()/mean()")
        return [float(p[1]) for p in self._points]

    def rate(self) -> List[Tuple[float, float]]:
        """Counter series as ``(t, delta / interval)`` pairs."""
        if self.kind != "counter":
            raise ValueError(f"rate() needs a counter series, not {self.kind}")
        return [(p[0], float(p[1]) / self.interval) for p in self._points]

    def total(self) -> float:
        """Counter: sum of all deltas (the windowed counter total)."""
        if self.kind != "counter":
            raise ValueError(f"total() needs a counter series, not {self.kind}")
        return float(sum(p[1] for p in self._points))

    def latest(self) -> Optional[float]:
        """Gauge: the most recent last-value (None on an empty series)."""
        if self.kind != "gauge":
            raise ValueError(f"latest() needs a gauge series, not {self.kind}")
        return float(self._points[-1][1]) if self._points else None

    def minimum(self) -> Optional[float]:
        if self.kind != "gauge":
            raise ValueError(f"minimum() needs a gauge series, not {self.kind}")
        return min((float(p[2]) for p in self._points), default=None)

    def maximum(self) -> Optional[float]:
        if self.kind != "gauge":
            raise ValueError(f"maximum() needs a gauge series, not {self.kind}")
        return max((float(p[3]) for p in self._points), default=None)

    def _dist_window(
        self, window: Optional[float], now: Optional[float]
    ) -> Tuple[int, float, List[float]]:
        """Histogram helper: summed (count, sum, buckets) over a window."""
        if self.kind != "histogram" or self.bounds is None:
            raise ValueError("distribution stats need a histogram series")
        points: Iterable[Point] = self._points
        if window is not None:
            end = now if now is not None else (
                self._points[-1][0] if self._points else 0.0
            )
            points = self.window(end - window, end)
        count = 0
        total = 0.0
        buckets = [0.0] * (len(self.bounds) + 1)
        for point in points:
            count += int(point[1])
            total += float(point[2])
            for i, c in enumerate(point[3]):
                buckets[i] += c
        return count, total, buckets

    def mean(
        self, *, window: Optional[float] = None, now: Optional[float] = None
    ) -> Optional[float]:
        """Histogram: mean of observations (optionally window-bounded)."""
        count, total, _ = self._dist_window(window, now)
        return total / count if count else None

    def quantile(
        self,
        q: float,
        *,
        window: Optional[float] = None,
        now: Optional[float] = None,
    ) -> Optional[float]:
        """Histogram quantile estimate from the bucket counts.

        Prometheus-style: find the bucket the target rank falls into and
        interpolate linearly between its bounds.  Ranks landing in the
        overflow bucket clamp to the last finite bound (the estimate
        cannot exceed what the buckets can resolve).  Returns ``None``
        when the window holds no observations.
        """
        if not (0.0 <= q <= 1.0):
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        count, _, buckets = self._dist_window(window, now)
        if not count or self.bounds is None:
            return None
        target = q * count
        cumulative = 0.0
        for i, bucket_count in enumerate(buckets):
            previous = cumulative
            cumulative += bucket_count
            if cumulative < target or not bucket_count:
                continue
            if i >= len(self.bounds):
                return self.bounds[-1]  # overflow bucket: clamp
            hi = self.bounds[i]
            lo = self.bounds[i - 1] if i else 0.0
            return lo + (hi - lo) * ((target - previous) / bucket_count)
        return self.bounds[-1]

    # -- transforms --------------------------------------------------------

    def downsample(self, window: float) -> "Series":
        """Fold raw scrapes into ``window``-wide aggregate points.

        Counter deltas and histogram rows *add* within a window; gauges
        keep ``(last, min, max)`` over the window's scrapes.  Points are
        stamped at the end of their window (``ceil(t / window) * window``),
        so downsampling twice with the same window is idempotent.
        """
        if window <= 0:
            raise ValueError("downsample window must be > 0")
        out = Series(
            self.metric,
            self.kind,
            self.labels,
            interval=window,
            bounds=self.bounds,
            capacity=self._points.maxlen or DEFAULT_CAPACITY,
        )
        grouped: Dict[float, List[Point]] = {}
        order: List[float] = []
        for point in self._points:
            slot = -(-point[0] // window) * window  # ceil division
            if slot not in grouped:
                grouped[slot] = []
                order.append(slot)
            grouped[slot].append(point)
        for slot in order:
            bucket = grouped[slot]
            if self.kind == "counter":
                out.append((slot, sum(p[1] for p in bucket)))
            elif self.kind == "gauge":
                out.append(
                    (
                        slot,
                        bucket[-1][1],
                        min(p[2] for p in bucket),
                        max(p[3] for p in bucket),
                    )
                )
            else:
                counts = [0.0] * (len(self.bounds or ()) + 1)
                for p in bucket:
                    for i, c in enumerate(p[3]):
                        counts[i] += c
                out.append(
                    (
                        slot,
                        sum(int(p[1]) for p in bucket),
                        sum(float(p[2]) for p in bucket),
                        counts,
                    )
                )
        return out

    # -- plain-dict round trip ---------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "metric": self.metric,
            "kind": self.kind,
            "labels": self.labels,
            "interval": self.interval,
            "points": [list(p) for p in self._points],
        }
        if self.bounds is not None:
            record["bounds"] = list(self.bounds)
        return record

    @classmethod
    def from_dict(
        cls, record: Dict[str, Any], *, capacity: int = DEFAULT_CAPACITY
    ) -> "Series":
        series = cls(
            record["metric"],
            record["kind"],
            record.get("labels", ""),
            interval=record.get("interval", 1.0),
            bounds=record.get("bounds"),
            capacity=capacity,
        )
        for point in record.get("points", ()):
            series.append(tuple(point))
        return series


# -- bank algebra ------------------------------------------------------------


def bank_series(bank: Dict[str, dict], metric: str, labels: str = "") -> Optional[Series]:
    """Rebuild one :class:`Series` from a plain-dict bank (None if absent)."""
    record = bank.get(series_key(metric, labels))
    return Series.from_dict(record) if record is not None else None


def merge_banks(a: Dict[str, dict], b: Dict[str, dict]) -> Dict[str, dict]:
    """Fold two series banks: the series twin of ``merge_snapshots``.

    At equal timestamps counter deltas and histogram rows add and gauges
    take ``b``'s write (min/max still combine); distinct timestamps
    interleave in time order.  Histogram series with differing bucket
    bounds -- like snapshots -- refuse to merge rather than misalign.
    The fold is deterministic, so any fixed fold order over per-worker
    banks reproduces the serial fold bit for bit.
    """
    out = {key: _copy_series_record(record) for key, record in a.items()}
    for key, record in b.items():
        base = out.get(key)
        if base is None:
            out[key] = _copy_series_record(record)
            continue
        if base["kind"] != record["kind"]:
            raise ValueError(f"series {key!r} changed kind across banks")
        if base.get("bounds") != record.get("bounds"):
            raise ValueError(f"series {key!r} bucket bounds differ across banks")
        base["points"] = _merge_points(
            base["kind"], base["points"], [list(p) for p in record["points"]]
        )
    return out


def _merge_points(
    kind: str, left: List[list], right: List[list]
) -> List[list]:
    """Two-way time-ordered merge with pointwise combination at equal t."""
    out: List[list] = []
    i = j = 0
    while i < len(left) and j < len(right):
        ti, tj = left[i][0], right[j][0]
        if ti < tj:
            out.append(left[i])
            i += 1
        elif tj < ti:
            out.append(right[j])
            j += 1
        else:
            out.append(_combine_point(kind, left[i], right[j]))
            i += 1
            j += 1
    out.extend(left[i:])
    out.extend(right[j:])
    return out


def _combine_point(kind: str, a: list, b: list) -> list:
    if kind == "counter":
        return [a[0], a[1] + b[1]]
    if kind == "gauge":
        return [a[0], b[1], min(a[2], b[2]), max(a[3], b[3])]
    return [
        a[0],
        a[1] + b[1],
        a[2] + b[2],
        [x + y for x, y in zip(a[3], b[3])],
    ]


def _copy_series_record(record: dict) -> dict:
    copied = dict(record)
    copied["points"] = [list(p) for p in record["points"]]
    if "bounds" in record:
        copied["bounds"] = list(record["bounds"])
    return copied


# -- the sampler -------------------------------------------------------------

#: Observers run after every scrape: ``hook(now, sampler)``.
SampleObserver = Callable[[float, "SeriesSampler"], None]


class SeriesSampler:
    """A sim process scraping registry deltas into ring-buffer series.

    Construction is cheap and does nothing; :meth:`install` registers the
    scrape loop as a process on the environment.  The loop parks itself
    when it would be the *only* remaining scheduled activity, so an
    otherwise-starved simulation still drains its queue (and surfaces the
    starvation) instead of being kept alive forever by its own telemetry.

    ``sample()`` can also be called manually -- the federation runtime
    takes one final manual sample at completion time so the tail of a run
    shorter than one interval is never lost.
    """

    def __init__(
        self,
        env: Optional[Any] = None,
        *,
        interval: float = 5.0,
        registry: Optional[_metrics.MetricsRegistry] = None,
        clock: Optional[Callable[[], float]] = None,
        capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        if interval <= 0:
            raise ValueError("sample interval must be > 0")
        if env is None and clock is None:
            raise ValueError("need an environment or an explicit clock")
        if clock is None:
            from repro.obs.trace import SimClock

            clock = SimClock(env)
        self.env = env
        self.interval = interval
        self.capacity = capacity
        self._clock = clock
        self._registry = registry if registry is not None else _metrics.registry()
        self._baseline = self._registry.snapshot()
        self._series: Dict[str, Series] = {}
        self._observers: List[SampleObserver] = []
        self._last_time: Optional[float] = None
        self.samples = 0

    # -- wiring ------------------------------------------------------------

    def add_observer(self, hook: SampleObserver) -> None:
        """Run ``hook(now, self)`` after every scrape (SLO engines attach
        here)."""
        self._observers.append(hook)

    def install(self) -> Any:
        """Register the scrape loop as a process on the environment."""
        if self.env is None:
            raise ValueError("sampler has no environment to install on")
        return self.env.process(self._run())

    def _run(self) -> Any:  # sflow: noqa[SFL015] -- histogram-bounds drift mid-run is registry corruption; failing the scrape loudly is intended
        env = self.env
        while True:
            yield env.timeout(self.interval)
            self.sample()
            if env.peek() == float("inf"):
                # Nothing else is scheduled: scraping an idle simulation
                # forever would keep the event queue alive and mask
                # protocol starvation.  Park; a manual final sample still
                # captures anything a later completion adds.
                return

    # -- scraping ----------------------------------------------------------

    def sample(self) -> float:
        """Scrape once at the current clock time; returns that time."""
        now = self._clock()
        if self._last_time is not None and now == self._last_time:
            return now  # the final manual sample can coincide with a tick
        snapshot = self._registry.snapshot()
        delta = _metrics.diff_snapshots(snapshot, self._baseline)
        self._baseline = snapshot
        self._last_time = now
        self.samples += 1
        for name in sorted(delta):
            record = delta[name]
            kind = record["kind"]
            for labels in sorted(record["values"]):
                value = record["values"][labels]
                series = self._get_series(name, kind, labels, record)
                if kind == "counter":
                    series.append((now, value))
                elif kind == "gauge":
                    series.append((now, value, value, value))
                else:
                    series.append(
                        (
                            now,
                            value["count"],
                            value["sum"],
                            list(value["buckets"]),
                        )
                    )
        for hook in self._observers:
            hook(now, self)
        return now

    def _get_series(
        self, metric: str, kind: str, labels: str, record: dict
    ) -> Series:
        key = series_key(metric, labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = Series(
                metric,
                kind,
                labels,
                interval=self.interval,
                bounds=record.get("bounds"),
                capacity=self.capacity,
            )
        return series

    # -- reading -----------------------------------------------------------

    def series(self, metric: str, labels: str = "") -> Optional[Series]:
        return self._series.get(series_key(metric, labels))

    def keys(self) -> List[str]:
        return sorted(self._series)

    def bank(self) -> Dict[str, dict]:
        """The whole sampler as a plain-dict bank (JSON/pickle friendly)."""
        return {
            key: self._series[key].as_dict() for key in sorted(self._series)
        }

    def emit(self, sink: Any) -> None:
        """Write this sampler's bank as a ``series`` record to a recorder."""
        sink.emit(
            {
                "type": "series",
                "interval": self.interval,
                "series": self.bank(),
            }
        )
