"""The federation flight recorder: a JSONL trace/metric stream on disk.

One :class:`Recorder` is a sink for the process tracer
(:func:`repro.obs.trace.tracer`): every span and point event becomes one
JSON line, written in arrival order.  On :meth:`Recorder.close` it appends

* a ``metrics`` record -- the registry delta over the recording window
  (counters accumulated before the recorder attached are subtracted out,
  so a recording made mid-process still describes only its own runs), and
* a ``summary`` record -- per-session (root-span) rows plus stream counts,

so a recording is self-describing: :func:`load_recording` rebuilds it and
``python -m repro.tools.trace`` renders per-session sim-time timelines and
the metric table without touching the process that produced it.

Record types (one JSON object per line)::

    {"type": "meta",    "format": "sflow-flight-recorder/2", ...}
    {"type": "span",    "name", "trace", "span", "parent",
                        "start", "end", "clock", "attrs"}
    {"type": "event",   "name", "trace", "span", "time", "clock", "attrs"}
    {"type": "series",  "interval", "series": {key: {...}}}  # samplers
    {"type": "slo",     "specs", "results", "alerts"}        # SLO engines
    {"type": "metrics", "snapshot": {...}}                # at close
    {"type": "summary", "spans", "events", "sessions": [...]}  # at close

Format ``/2`` adds the ``series`` and ``slo`` record types (written by
:class:`~repro.obs.timeseries.SeriesSampler` and
:class:`~repro.obs.slo.SloEngine` when a recording is active).  ``/1``
recordings simply lack them; :func:`load_recording` reads both.

Recording is strictly per-process: a recorder must never be shared with
multiprocessing workers (forked children would interleave writes).  The
evaluation campaigns instead ship per-cell metric *snapshots* back to the
parent -- see :mod:`repro.eval.experiments`.
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

FORMAT = "sflow-flight-recorder/2"

#: Formats :func:`load_recording` understands (``/1`` lacks series/slo).
COMPATIBLE_FORMATS = ("sflow-flight-recorder/1", "sflow-flight-recorder/2")


class Recorder:
    """Append-only JSONL sink with an end-of-run metrics/summary footer."""

    def __init__(
        self,
        target: Union[str, Path, io.TextIOBase],
        *,
        registry: Optional[Any] = None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        if registry is None:
            from repro.obs import metrics as _metrics

            registry = _metrics.registry()
        self._registry = registry
        self._baseline = registry.snapshot()
        self.path: Optional[Path] = None
        if isinstance(target, (str, Path)):
            self.path = Path(target)
            self._fh: Optional[Any] = self.path.open("w", encoding="utf-8")
        else:
            self._fh = target
        self.spans = 0
        self.events = 0
        self._sessions: List[Dict[str, Any]] = []
        header = {"type": "meta", "format": FORMAT}
        if meta:
            header.update(meta)
        self._write(header)

    @property
    def closed(self) -> bool:
        return self._fh is None

    def emit(self, record: Dict[str, Any]) -> None:
        """Write one trace record (the tracer-sink entry point)."""
        if self._fh is None:
            return
        kind = record.get("type")
        if kind == "span":
            self.spans += 1
            if record.get("parent") is None:
                self._sessions.append(
                    {
                        "trace": record.get("trace"),
                        "name": record.get("name"),
                        "start": record.get("start"),
                        "end": record.get("end"),
                        "clock": record.get("clock"),
                        "attrs": dict(record.get("attrs") or {}),
                    }
                )
        elif kind == "event":
            self.events += 1
        self._write(record)

    def close(self) -> None:
        """Append the metrics delta + session summary and close the file."""
        if self._fh is None:
            return
        from repro.obs import metrics as _metrics

        delta = _metrics.diff_snapshots(self._registry.snapshot(), self._baseline)
        self._write({"type": "metrics", "snapshot": delta})
        self._write(
            {
                "type": "summary",
                "spans": self.spans,
                "events": self.events,
                "sessions": self._sessions,
            }
        )
        fh, self._fh = self._fh, None
        if self.path is not None:
            fh.close()
        else:
            fh.flush()

    def _write(self, record: Dict[str, Any]) -> None:
        self._fh.write(
            json.dumps(record, separators=(",", ":"), default=str) + "\n"
        )

    def __enter__(self) -> "Recorder":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.close()
        return False


@dataclass
class Recording:
    """A parsed flight recording (see :func:`load_recording`)."""

    meta: Dict[str, Any] = field(default_factory=dict)
    spans: List[Dict[str, Any]] = field(default_factory=list)
    events: List[Dict[str, Any]] = field(default_factory=list)
    metrics: Dict[str, dict] = field(default_factory=dict)
    summary: Dict[str, Any] = field(default_factory=dict)
    #: Folded series bank from every ``series`` record (``/2``; empty on ``/1``).
    series: Dict[str, dict] = field(default_factory=dict)
    #: The last ``slo`` record (specs/results/alerts), if any.
    slo: Dict[str, Any] = field(default_factory=dict)
    #: ``(line_number, message)`` for lines the loader had to skip.
    errors: List[Any] = field(default_factory=list)

    def sessions(self) -> List[Dict[str, Any]]:
        """Root spans (parent is null), in trace order."""
        roots = [s for s in self.spans if s.get("parent") is None]
        return sorted(roots, key=lambda s: (s.get("trace") or 0, s["span"]))

    def spans_of(self, trace: int) -> List[Dict[str, Any]]:
        return [s for s in self.spans if s.get("trace") == trace]

    def events_of(self, trace: int) -> List[Dict[str, Any]]:
        return [e for e in self.events if e.get("trace") == trace]

    def counter_total(self, name: str) -> float:
        """Sum of one counter over all label series (0 when absent)."""
        record = self.metrics.get(name)
        if record is None or record.get("kind") != "counter":
            return 0.0
        return float(sum(record["values"].values()))


def load_recording(path: Union[str, Path]) -> Recording:
    """Parse a JSONL flight recording back into a :class:`Recording`.

    Unknown record types are ignored (forward compatibility); a recording
    cut short (no metrics/summary footer) still yields its spans/events.
    Malformed lines -- the usual cause is a process killed mid-write, so
    the damage is a truncated *final* line -- are skipped and reported via
    :attr:`Recording.errors` rather than aborting the whole parse.
    Both ``/1`` and ``/2`` recordings load; ``/1`` just has no
    series/slo sections.
    """
    with Path(path).open("r", encoding="utf-8") as fh:
        return parse_recording(fh)


def parse_recording(lines: Any) -> Recording:
    """:func:`load_recording` over any iterable of JSONL lines.

    Useful for in-memory recordings (a :class:`Recorder` writing to a
    ``StringIO``) -- e.g. the evaluation sweep profiling cells without
    touching disk.
    """
    recording = Recording()
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            recording.errors.append((lineno, f"malformed JSON: {exc}"))
            continue
        if not isinstance(record, dict):
            recording.errors.append((lineno, "record is not an object"))
            continue
        kind = record.get("type")
        if kind == "meta":
            recording.meta = record
        elif kind == "span":
            recording.spans.append(record)
        elif kind == "event":
            recording.events.append(record)
        elif kind == "series":
            from repro.obs.timeseries import merge_banks

            recording.series = merge_banks(
                recording.series, record.get("series", {})
            )
        elif kind == "slo":
            recording.slo = record
        elif kind == "metrics":
            recording.metrics = record.get("snapshot", {})
        elif kind == "summary":
            recording.summary = record
    return recording
