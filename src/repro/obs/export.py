"""Exporters: open flight-recorder data in standard external tooling.

Two formats, chosen because they make our recordings legible to the two
ecosystems an operator already lives in:

* :func:`prometheus_exposition` renders a metrics snapshot (the
  ``metrics`` record of a recording, or any live registry snapshot) in
  the Prometheus text exposition format -- counters with the ``_total``
  suffix, histograms as cumulative ``_bucket{le=...}`` series plus
  ``_sum``/``_count``, dots mangled to underscores, label values escaped
  per the spec.  The output can be scraped, pushed to a Pushgateway, or
  diffed against a PromQL recording rule.
* :func:`chrome_trace` converts spans, point events and (``/2``) sampled
  series into the Chrome/Perfetto trace-event JSON format: complete
  ``"X"`` slices per span, ``"i"`` instants per event, ``"C"`` counter
  tracks per series, one named thread per federation session.  Load the
  file at ``ui.perfetto.dev`` and the whole campaign becomes a zoomable
  timeline.

Sim-time is mapped to trace microseconds 1:1 (one virtual time unit =
1 µs), keeping slice arithmetic exact for the integer-friendly virtual
timestamps the simulator produces.

Both functions are pure: recording/snapshot dicts in, text/JSON-able
dicts out.  The CLI wiring lives in :mod:`repro.tools.trace` (``export``
subcommand) and :mod:`repro.tools.report`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.obs.recorder import Recording

__all__ = ["chrome_trace", "prometheus_exposition"]

#: One unit of virtual sim time renders as this many trace microseconds.
_US_PER_SIM_UNIT = 1e6


# -- Prometheus text exposition ----------------------------------------------


def _prom_name(name: str) -> str:
    """Mangle a dotted metric name into the Prometheus grammar."""
    mangled = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    if mangled and mangled[0].isdigit():
        mangled = "_" + mangled
    return mangled


def _prom_escape(value: str) -> str:
    """Escape a label value per the text-format rules."""
    return value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')


def _prom_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _prom_labels(labels: str, extra: Optional[Tuple[str, str]] = None) -> str:
    """``"a=1,b=x"`` (our label string) -> ``{a="1",b="x"}`` (or ``""``)."""
    pairs: List[Tuple[str, str]] = []
    if labels:
        for part in labels.split(","):
            key, _, value = part.partition("=")
            pairs.append((_prom_name(key), value))
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_prom_escape(v)}"' for k, v in pairs)
    return "{" + body + "}"


def _prom_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    as_float = float(value)
    if as_float.is_integer():
        return str(int(as_float))
    return repr(as_float)


def _prom_bound(bound: float) -> str:
    """A ``le`` bound label value (``+Inf`` for the overflow bucket)."""
    if bound == float("inf"):
        return "+Inf"
    as_float = float(bound)
    if as_float.is_integer():
        return str(as_float)  # Prometheus convention: "1.0", not "1"
    return repr(as_float)


def prometheus_exposition(
    snapshot: Dict[str, dict], *, help_texts: Optional[Dict[str, str]] = None
) -> str:
    """Render a metrics snapshot in the Prometheus text exposition format.

    ``snapshot`` is the plain-dict form produced by
    :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` (also what a
    recording's ``metrics`` record carries).  Counter samples get the
    conventional ``_total`` suffix; histograms expand to cumulative
    ``_bucket`` series with an explicit ``+Inf`` bucket plus ``_sum`` and
    ``_count``.  Output ends with a newline, as scrapers expect.
    """
    help_texts = help_texts or {}
    lines: List[str] = []
    for name in sorted(snapshot):
        record = snapshot[name]
        kind = record["kind"]
        base = _prom_name(name)
        sample_name = base + "_total" if kind == "counter" else base
        help_text = help_texts.get(name, f"repro metric {name}")
        lines.append(f"# HELP {sample_name} {_prom_help(help_text)}")
        lines.append(f"# TYPE {sample_name} {kind}")
        if kind in ("counter", "gauge"):
            for labels in sorted(record["values"]):
                value = record["values"][labels]
                lines.append(
                    f"{sample_name}{_prom_labels(labels)} {_prom_value(value)}"
                )
        elif kind == "histogram":
            bounds = [float(b) for b in record["bounds"]] + [float("inf")]
            for labels in sorted(record["values"]):
                series = record["values"][labels]
                cumulative = 0.0
                for bound, count in zip(bounds, series["buckets"]):
                    cumulative += count
                    le = _prom_labels(labels, ("le", _prom_bound(bound)))
                    lines.append(
                        f"{base}_bucket{le} {_prom_value(cumulative)}"
                    )
                lines.append(
                    f"{base}_sum{_prom_labels(labels)} "
                    f"{_prom_value(series['sum'])}"
                )
                lines.append(
                    f"{base}_count{_prom_labels(labels)} "
                    f"{_prom_value(series['count'])}"
                )
        else:  # pragma: no cover - future-proofing
            raise ValueError(f"unknown metric kind {kind!r} for {name!r}")
    return "\n".join(lines) + "\n" if lines else ""


# -- Chrome/Perfetto trace JSON ----------------------------------------------


def _ts(sim_time: float) -> float:
    return sim_time * _US_PER_SIM_UNIT


def chrome_trace(recording: Recording) -> Dict[str, Any]:
    """Convert a recording into Chrome trace-event JSON (Perfetto-loadable).

    Layout: one process (pid 1, named after the recording format), one
    thread per trace id named after its root session span.  Spans become
    complete ``"X"`` slices, point events ``"i"`` instants (free-standing
    events land on tid 0), and sampled counter/gauge series become
    ``"C"`` counter tracks so protocol rates render as area charts under
    the timeline.
    """
    events: List[Dict[str, Any]] = []
    events.append(
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {
                "name": recording.meta.get("format", "sflow-flight-recorder")
            },
        }
    )
    named_tids = set()
    for session in recording.sessions():
        tid = session.get("trace") or 0
        if tid in named_tids:
            continue
        named_tids.add(tid)
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": f"{session['name']} (trace {tid})"},
            }
        )
    for span in recording.spans:
        start = float(span.get("start", 0.0))
        end = float(span.get("end", start))
        events.append(
            {
                "name": span.get("name", "span"),
                "cat": span.get("clock", "sim"),
                "ph": "X",
                "ts": _ts(start),
                "dur": max(_ts(end) - _ts(start), 0.0),
                "pid": 1,
                "tid": span.get("trace") or 0,
                "args": dict(span.get("attrs") or {}),
            }
        )
    for event in recording.events:
        events.append(
            {
                "name": event.get("name", "event"),
                "cat": event.get("clock", "sim"),
                "ph": "i",
                "ts": _ts(float(event.get("time", 0.0))),
                "pid": 1,
                "tid": event.get("trace") or 0,
                "s": "t" if event.get("trace") is not None else "p",
                "args": dict(event.get("attrs") or {}),
            }
        )
    for key in sorted(recording.series):
        record = recording.series[key]
        kind = record.get("kind")
        if kind not in ("counter", "gauge"):
            continue  # histogram tracks need quantile choices; report covers them
        for point in record.get("points", ()):
            events.append(
                {
                    "name": key,
                    "ph": "C",
                    "ts": _ts(float(point[0])),
                    "pid": 1,
                    "tid": 0,
                    "args": {"value": float(point[1])},
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}
