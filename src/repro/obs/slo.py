"""Declarative SLOs with burn-rate alerting over sim-time series.

The paper's agility claim is conditional: sFlow re-federates *when the
monitor decides service quality has degraded*.  This module gives that
decision a declarative form.  An :class:`SloSpec` names a metric series, a
way to read it (``field``), and an objective (``delivered-bandwidth
fraction >= 0.5``, ``federation latency p95 <= 600``); an
:class:`SloEngine` evaluates every spec each time the
:class:`~repro.obs.timeseries.SeriesSampler` scrapes, using the standard
SRE burn-rate model:

    ``error_rate``  = violating samples / samples in the trailing window
    ``burn_rate``   = ``error_rate / error_budget``
    alert *firing*  = ``burn_rate >= burn_rate_threshold``

Alerts are edge-triggered: one ``slo.alert`` event when a spec starts
firing, one ``slo.alert.resolved`` when it stops, both stamped in sim
time and written to the active flight recording.  The engine also keeps
``slo.*`` metrics (evaluations, burn rates, alert count) so SLO health is
itself observable, and :func:`replay` re-runs any spec set offline over a
recorded series bank -- which is how ``repro.tools.report`` grades
recordings made before (or without) a runtime engine.

Evaluation is pure sim-time arithmetic over series points -- no wall
clock, no RNG -- so serial and parallel campaigns grade identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Protocol, Sequence, Tuple

from repro.obs import metrics as _metrics
from repro.obs.timeseries import Series, series_key

__all__ = [
    "DEFAULT_SLOS",
    "SloEngine",
    "SloSpec",
    "SloStatus",
    "replay",
]

#: ``field`` values addressing scalar reads of a series.
_SCALAR_FIELDS = ("value", "delta", "rate", "total")


def _quantile_of(field: str) -> Optional[float]:
    """``"p95" -> 0.95``; ``None`` when the field is not a quantile."""
    if len(field) >= 2 and field[0] == "p" and field[1:].isdigit():
        return int(field[1:]) / 100.0
    return None


@dataclass(frozen=True)
class SloSpec:
    """One service-level objective over a metric series.

    ``field`` selects how the series is read each evaluation:

    ========= ========== =================================================
    field      series     samples checked against the objective
    ========= ========== =================================================
    ``value``  gauge      each sampled value in the window
    ``delta``  counter    each per-interval delta in the window (0 if none)
    ``rate``   counter    each per-interval delta / interval
    ``total``  counter    the all-time running total (one sample)
    ``mean``   histogram  mean of window observations (one sample)
    ``pNN``    histogram  NN-th percentile of window observations (one)
    ========= ========== =================================================

    A counter series that is absent (nothing ever incremented) reads as a
    single ``0.0`` sample -- absence of errors satisfies an error-budget
    objective.  Absent gauge/histogram series yield no samples and the
    spec simply isn't evaluated yet.
    """

    name: str
    metric: str
    objective: str  # ">=" or "<="
    threshold: float
    field: str = "value"
    labels: str = ""
    window: float = 50.0
    error_budget: float = 0.1
    burn_rate_threshold: float = 2.0
    min_samples: int = 1
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("SloSpec needs a name")
        if self.objective not in (">=", "<="):
            raise ValueError(
                f"SLO {self.name!r}: objective must be '>=' or '<=', "
                f"got {self.objective!r}"
            )
        if self.field not in _SCALAR_FIELDS + ("mean",) and (
            _quantile_of(self.field) is None
        ):
            raise ValueError(f"SLO {self.name!r}: unknown field {self.field!r}")
        if self.window <= 0:
            raise ValueError(f"SLO {self.name!r}: window must be > 0")
        if not (0.0 < self.error_budget <= 1.0):
            raise ValueError(
                f"SLO {self.name!r}: error_budget must be in (0, 1]"
            )
        if self.burn_rate_threshold <= 0:
            raise ValueError(
                f"SLO {self.name!r}: burn_rate_threshold must be > 0"
            )
        if self.min_samples < 1:
            raise ValueError(f"SLO {self.name!r}: min_samples must be >= 1")

    def good(self, value: float) -> bool:
        """Does one sample satisfy the objective?"""
        if self.objective == ">=":
            return value >= self.threshold
        return value <= self.threshold

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "metric": self.metric,
            "objective": self.objective,
            "threshold": self.threshold,
            "field": self.field,
            "labels": self.labels,
            "window": self.window,
            "error_budget": self.error_budget,
            "burn_rate_threshold": self.burn_rate_threshold,
            "min_samples": self.min_samples,
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "SloSpec":
        return cls(**{k: record[k] for k in record if k in cls.__dataclass_fields__})


@dataclass
class SloStatus:
    """The result of evaluating one spec at one sample time."""

    slo: str
    time: float
    samples: int
    value: Optional[float]
    ok: bool
    error_rate: float
    burn_rate: float
    firing: bool

    def as_dict(self) -> Dict[str, Any]:
        return {
            "slo": self.slo,
            "time": self.time,
            "samples": self.samples,
            "value": self.value,
            "ok": self.ok,
            "error_rate": self.error_rate,
            "burn_rate": self.burn_rate,
            "firing": self.firing,
        }


class SeriesProvider(Protocol):
    """Anything that can look a series up -- a live sampler or a bank view."""

    def series(self, metric: str, labels: str = "") -> Optional[Series]:
        ...


class _EventClock:
    """A sim-kind clock pinned to the evaluation timestamp."""

    kind = "sim"
    __slots__ = ("now",)

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class SloEngine:
    """Evaluates a spec set against a series provider, sample by sample.

    Attach to a sampler with ``sampler.add_observer(engine.observe)``; or
    drive it manually (``engine.observe(now, provider)``) as
    :func:`replay` does.  ``on_alert(spec, status)`` fires once per
    False->True edge -- this is the hook ``repro.core.monitor`` uses as a
    re-federation trigger.
    """

    def __init__(
        self,
        specs: Sequence[SloSpec],
        *,
        registry: Optional[_metrics.MetricsRegistry] = None,
        on_alert: Optional[Callable[[SloSpec, SloStatus], None]] = None,
        emit_metrics: bool = True,
        emit_events: bool = True,
    ) -> None:
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO names: {sorted(names)}")
        self.specs: Tuple[SloSpec, ...] = tuple(specs)
        self.on_alert = on_alert
        self._emit_metrics = emit_metrics
        self._emit_events = emit_events
        self._clock = _EventClock()
        self._firing: Dict[str, bool] = {spec.name: False for spec in specs}
        self._alert_counts: Dict[str, int] = {spec.name: 0 for spec in specs}
        self._evaluations: Dict[str, int] = {spec.name: 0 for spec in specs}
        self._last: Dict[str, Optional[SloStatus]] = {
            spec.name: None for spec in specs
        }
        self.alerts: List[Dict[str, Any]] = []
        reg = registry if registry is not None else _metrics.registry()
        self._m_evaluations = reg.counter(
            "slo.evaluations", "SLO evaluations by outcome"
        )
        self._m_burn_rate = reg.gauge(
            "slo.burn_rate", "Most recent burn rate per SLO"
        )
        self._m_alerts = reg.counter(
            "slo.alerts", "Burn-rate alert edges (fired) per SLO"
        )

    # -- evaluation --------------------------------------------------------

    def observe(self, now: float, provider: SeriesProvider) -> List[SloStatus]:
        """Evaluate every spec at sample time ``now``.

        Matches the :data:`~repro.obs.timeseries.SampleObserver` signature
        so the engine plugs straight into a sampler.
        """
        statuses: List[SloStatus] = []
        for spec in self.specs:
            status = self._evaluate(spec, now, provider)
            if status is not None:
                statuses.append(status)
        return statuses

    def _evaluate(
        self, spec: SloSpec, now: float, provider: SeriesProvider
    ) -> Optional[SloStatus]:
        values = self._window_values(spec, now, provider)
        if not values:
            return None  # no data yet: not evaluated, not firing
        bad = sum(1 for v in values if not spec.good(v))
        error_rate = bad / len(values)
        burn_rate = error_rate / spec.error_budget
        warmed_up = len(values) >= spec.min_samples
        firing = warmed_up and burn_rate >= spec.burn_rate_threshold
        status = SloStatus(
            slo=spec.name,
            time=now,
            samples=len(values),
            value=values[-1],
            ok=not bad,
            error_rate=error_rate,
            burn_rate=burn_rate,
            firing=firing,
        )
        self._evaluations[spec.name] += 1
        self._last[spec.name] = status
        if self._emit_metrics:
            self._m_evaluations.inc(slo=spec.name, ok=str(status.ok).lower())
            self._m_burn_rate.set(burn_rate, slo=spec.name)
        was_firing = self._firing[spec.name]
        if firing and not was_firing:
            self._firing[spec.name] = True
            self._alert_counts[spec.name] += 1
            self.alerts.append(
                {
                    "slo": spec.name,
                    "time": now,
                    "state": "firing",
                    "burn_rate": burn_rate,
                    "value": status.value,
                }
            )
            if self._emit_metrics:
                self._m_alerts.inc(slo=spec.name)
            self._emit_event("slo.alert", spec, status)
            if self.on_alert is not None:
                self.on_alert(spec, status)
        elif was_firing and not firing:
            self._firing[spec.name] = False
            self.alerts.append(
                {
                    "slo": spec.name,
                    "time": now,
                    "state": "resolved",
                    "burn_rate": burn_rate,
                    "value": status.value,
                }
            )
            self._emit_event("slo.alert.resolved", spec, status)
        return status

    def _window_values(
        self, spec: SloSpec, now: float, provider: SeriesProvider
    ) -> List[float]:
        series = provider.series(spec.metric, spec.labels)
        if series is None:
            # Counters are sparse: an absent error counter reads as zero.
            if spec.field in ("delta", "rate", "total"):
                return [0.0]
            return []
        start = now - spec.window
        if spec.field == "value":
            points = series.window(start, now)
            if points:
                return [float(p[1]) for p in points]
            latest = series.latest()
            return [latest] if latest is not None else []
        if spec.field in ("delta", "rate"):
            points = series.window(start, now)
            if not points:
                return [0.0]
            if spec.field == "delta":
                return [float(p[1]) for p in points]
            return [float(p[1]) / series.interval for p in points]
        if spec.field == "total":
            return [series.total()]
        if spec.field == "mean":
            mean = series.mean(window=spec.window, now=now)
            return [mean] if mean is not None else []
        q = _quantile_of(spec.field)
        assert q is not None  # validated at construction
        quantile = series.quantile(q, window=spec.window, now=now)
        return [quantile] if quantile is not None else []

    def _emit_event(self, name: str, spec: SloSpec, status: SloStatus) -> None:
        if not self._emit_events:
            return
        from repro.obs.trace import tracer

        self._clock.now = status.time
        tracer().event(
            name,
            clock=self._clock,
            slo=spec.name,
            metric=spec.metric,
            objective=f"{spec.field} {spec.objective} {spec.threshold}",
            burn_rate=round(status.burn_rate, 6),
            value=status.value,
        )

    # -- results -----------------------------------------------------------

    def firing(self) -> List[str]:
        """Names of specs currently in the firing state."""
        return sorted(name for name, on in self._firing.items() if on)

    def summary(self) -> List[Dict[str, Any]]:
        """Per-spec verdicts: a spec *passes* if it never fired an alert."""
        out: List[Dict[str, Any]] = []
        for spec in self.specs:
            last = self._last[spec.name]
            out.append(
                {
                    "slo": spec.name,
                    "metric": spec.metric,
                    "objective": (
                        f"{spec.field} {spec.objective} {spec.threshold}"
                    ),
                    "window": spec.window,
                    "evaluations": self._evaluations[spec.name],
                    "alerts": self._alert_counts[spec.name],
                    "pass": self._alert_counts[spec.name] == 0,
                    "last_value": last.value if last is not None else None,
                    "last_burn_rate": (
                        last.burn_rate if last is not None else None
                    ),
                }
            )
        return out

    def emit(self, sink: Any) -> None:
        """Write the engine's verdicts as an ``slo`` record to a recorder."""
        sink.emit(
            {
                "type": "slo",
                "specs": [spec.as_dict() for spec in self.specs],
                "results": self.summary(),
                "alerts": list(self.alerts),
            }
        )


class _BankView:
    """Series lookup over a recorded plain-dict bank (for offline replay)."""

    def __init__(self, bank: Dict[str, dict]) -> None:
        self._series: Dict[str, Series] = {
            key: Series.from_dict(record) for key, record in bank.items()
        }

    def series(self, metric: str, labels: str = "") -> Optional[Series]:
        return self._series.get(series_key(metric, labels))

    def sample_times(self, specs: Sequence[SloSpec]) -> List[float]:
        times: set = set()
        for spec in specs:
            series = self.series(spec.metric, spec.labels)
            if series is not None:
                times.update(series.times())
        return sorted(times)


def replay(
    bank: Dict[str, dict],
    specs: Sequence[SloSpec],
    *,
    on_alert: Optional[Callable[[SloSpec, SloStatus], None]] = None,
) -> SloEngine:
    """Grade a recorded series bank offline against a spec set.

    Re-evaluates every spec at each recorded sample time, exactly as a
    runtime engine attached to the original sampler would have.  Emits no
    metrics and no events (the run is over); the returned engine's
    :meth:`SloEngine.summary` and ``alerts`` carry the verdicts.
    """
    view = _BankView(bank)
    engine = SloEngine(
        specs, on_alert=on_alert, emit_metrics=False, emit_events=False
    )
    for now in view.sample_times(specs):
        engine.observe(now, view)
    return engine


#: The stock objectives ``repro.tools.report`` grades recordings against
#: when the recording carries no runtime ``slo`` record.  Thresholds are
#: calibrated against the seeded chaos-smoke baseline (intensity 0.0): the
#: baseline must pass every one -- CI gates on it.
DEFAULT_SLOS: Tuple[SloSpec, ...] = (
    SloSpec(
        name="federation-latency-p95",
        metric="sflow.federation.sim_time",
        field="p95",
        objective="<=",
        threshold=600.0,
        window=200.0,
        error_budget=0.25,
        burn_rate_threshold=2.0,
        description="95th-percentile federation completion time",
    ),
    SloSpec(
        name="recovery-latency-p95",
        metric="sflow.recovery.sim_time",
        field="p95",
        objective="<=",
        threshold=600.0,
        window=200.0,
        error_budget=0.25,
        burn_rate_threshold=2.0,
        description="95th-percentile failure recovery time",
    ),
    SloSpec(
        name="no-handler-errors",
        metric="engine.handler_error",
        field="delta",
        objective="<=",
        threshold=0.0,
        window=100.0,
        error_budget=0.01,
        burn_rate_threshold=1.0,
        description="simulation handlers never raise",
    ),
    SloSpec(
        name="delivered-bandwidth",
        metric="degrade.delivered_fraction",
        field="mean",
        objective=">=",
        threshold=0.5,
        window=200.0,
        error_budget=0.25,
        burn_rate_threshold=2.0,
        description="mean delivered-bandwidth fraction under degradation",
    ),
)
