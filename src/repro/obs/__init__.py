"""Unified sim-time observability: metrics, tracing, flight recording.

The three previously disconnected telemetry islands of this codebase --
the sfederate :class:`~repro.core.sflow.RecoveryEvent` log, the
:class:`~repro.routing.oracle.RouteOracle` counters and the
:class:`~repro.core.monitor.MonitoredFederation` probe events -- now feed
one process-wide layer with three parts:

* :mod:`repro.obs.metrics` -- a registry of labelled counters, gauges and
  fixed-bucket histograms; always on (increments are dict updates),
  snapshot-able as plain dicts, mergeable across multiprocessing workers;
* :mod:`repro.obs.trace` -- spans and point events stamped by the DES
  clock (wall clock outside the simulator); **off by default** and
  engineered so the disabled path costs nothing measurable;
* :mod:`repro.obs.recorder` -- the JSONL "flight recorder" sink plus its
  loader; ``python -m repro.tools.trace`` renders recordings.

On top of the base layer sit the telemetry pipeline modules:

* :mod:`repro.obs.timeseries` -- a :class:`SeriesSampler` sim process
  scraping registry deltas into per-metric ring-buffer series, with
  downsampling and a parallel-safe bank merge;
* :mod:`repro.obs.slo` -- declarative :class:`SloSpec` objectives graded
  over series windows with SRE-style burn-rate alerting;
* :mod:`repro.obs.export` -- Prometheus text exposition and
  Chrome/Perfetto trace JSON exporters (CLI: ``repro.tools.trace
  export``, reports: ``repro.tools.report``).

Typical use::

    from repro import obs

    with obs.recording("run.jsonl"):
        SFlowAlgorithm(config).federate(requirement, overlay, chaos=chaos)
    # -> run.jsonl now holds per-session spans, recovery/point events,
    #    the metric snapshot and a session summary table.

``start_recording``/``stop_recording`` are the imperative twins for CLIs
and examples.  Recording is per-process; never leave one active across a
``multiprocessing`` fan-out.
"""

from __future__ import annotations

from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Union

from repro.obs import causal, export, metrics, slo, timeseries, trace
from repro.obs.causal import (
    CampaignProfile,
    CriticalStep,
    ProfileDiff,
    SessionProfile,
    aggregate_profiles,
    diff_recordings,
    merge_campaigns,
    profile_recording,
    profile_session,
)
from repro.obs.clock import PERF_CLOCK, Lap, Stopwatch
from repro.obs.export import chrome_trace, prometheus_exposition
from repro.obs.metrics import (
    MetricsRegistry,
    diff_snapshots,
    merge_snapshots,
    registry,
)
from repro.obs.recorder import Recorder, Recording, load_recording
from repro.obs.slo import DEFAULT_SLOS, SloEngine, SloSpec, SloStatus
from repro.obs.timeseries import Series, SeriesSampler, merge_banks
from repro.obs.trace import NULL_SPAN, SimClock, Span, Tracer, tracer

__all__ = [
    "CampaignProfile",
    "CriticalStep",
    "DEFAULT_SLOS",
    "Lap",
    "MetricsRegistry",
    "NULL_SPAN",
    "PERF_CLOCK",
    "ProfileDiff",
    "Recorder",
    "Recording",
    "Series",
    "SeriesSampler",
    "SessionProfile",
    "SimClock",
    "SloEngine",
    "SloSpec",
    "SloStatus",
    "Span",
    "Stopwatch",
    "Tracer",
    "active_recorder",
    "aggregate_profiles",
    "causal",
    "chrome_trace",
    "diff_recordings",
    "diff_snapshots",
    "export",
    "load_recording",
    "merge_banks",
    "merge_campaigns",
    "merge_snapshots",
    "metrics",
    "profile_recording",
    "profile_session",
    "prometheus_exposition",
    "recording",
    "registry",
    "slo",
    "start_recording",
    "stop_recording",
    "timeseries",
    "trace",
    "tracer",
]

_ACTIVE: Optional[Recorder] = None


def active_recorder() -> Optional[Recorder]:
    """The recorder currently attached to the process tracer, if any."""
    return _ACTIVE


def start_recording(
    target: Union[str, Path, Any],
    *,
    meta: Optional[Dict[str, Any]] = None,
) -> Recorder:
    """Open a flight recorder on ``target`` and attach it to the tracer.

    Only one recording can be active per process; starting a second one
    closes the first.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        stop_recording()
    _ACTIVE = Recorder(target, meta=meta)
    tracer().set_sink(_ACTIVE)
    return _ACTIVE


def stop_recording() -> Optional[Recorder]:
    """Detach and close the active recording (no-op when none is active)."""
    global _ACTIVE
    recorder, _ACTIVE = _ACTIVE, None
    if tracer().sink is recorder:
        tracer().set_sink(None)
    if recorder is not None:
        recorder.close()
    return recorder


@contextmanager
def recording(
    target: Union[str, Path, Any],
    *,
    meta: Optional[Dict[str, Any]] = None,
) -> Iterator[Recorder]:
    """``with obs.recording(path):`` -- record everything inside the block."""
    recorder = start_recording(target, meta=meta)
    try:
        yield recorder
    finally:
        if active_recorder() is recorder:
            stop_recording()
        else:  # a nested start_recording replaced us; just make sure we close
            recorder.close()
