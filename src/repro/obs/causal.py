"""Causal profiling of flight recordings: critical paths, blame, slack.

The flight recorder captures two independent causal structures:

* the **span tree** -- ``(trace, span, parent)`` ids on every span record
  (session, discovery, abstract_graph, negotiate, ...);
* **message causality** -- ``channel.send`` / ``channel.deliver`` events
  stamped with a per-network ``msg_id`` (:mod:`repro.sim.channels`), and
  ``node.activate`` events carrying ``cause``: the msg_id whose delivery
  completed the node's in-degree (:mod:`repro.core.sflow`).

This module joins the two into a per-session causal DAG and answers the
question the raw timeline cannot: *why* did a federation take as long as
it did?  Walking backward from the last activation, each hop decomposes
into

* ``transmit`` -- send to deliver on one link (network latency + jitter),
* ``process``  -- deliver to the activation it triggered,
* ``emit``     -- an activation immediately producing the next send,
* ``backoff``  -- sim-time a sender sat waiting before (re)sending:
  retransmission timers, failover backoff, detector sweeps,
* ``initial``  -- the consumer's kick-off message (no prior activation).

On top of the path: top-k blame tables per link and per node, self- vs.
child-time attribution per span name, and **slack** -- how much each
off-path delivery could have grown before it moved the critical path.

Everything here is a pure function of a :class:`~repro.obs.recorder.Recording`
(deterministic: same recording, same blame table) and every aggregate folds
associatively in submission order, so campaign-level aggregation is
bit-identical between serial and parallel evaluation workers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.obs.recorder import Recording

__all__ = [
    "CampaignProfile",
    "CriticalStep",
    "ProfileDiff",
    "SessionProfile",
    "aggregate_profiles",
    "diff_recordings",
    "merge_campaigns",
    "profile_recording",
    "profile_session",
]

#: Step kinds in canonical report order.
STEP_KINDS = ("initial", "transmit", "process", "emit", "backoff")


@dataclass(frozen=True)
class _Ev:
    """One point event, keyed for deterministic ordering.

    ``seq`` is the event's position in the recording stream -- the
    recorder writes in arrival order, so ``(time, seq)`` is a total order
    consistent with simulation causality.
    """

    seq: int
    time: float
    attrs: Mapping[str, Any]


@dataclass(frozen=True)
class CriticalStep:
    """One hop of a session's critical path (chronological order)."""

    kind: str  # one of STEP_KINDS
    src: str
    dst: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "src": self.src,
            "dst": self.dst,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
        }


@dataclass
class SessionProfile:
    """The causal profile of one recorded session (root span)."""

    trace: int
    name: str
    outcome: Optional[str]
    start: float
    end: float
    #: Critical path, chronological; empty when the session recorded no
    #: causally-stamped activity (e.g. a monitor session).
    steps: Tuple[CriticalStep, ...] = ()
    #: kind -> (step count, total sim-time) along the critical path.
    kind_blame: Dict[str, Tuple[int, float]] = field(default_factory=dict)
    #: (src, dst) -> total transmit sim-time on the critical path.
    link_blame: Dict[Tuple[str, str], float] = field(default_factory=dict)
    #: instance -> total process/emit/backoff sim-time on the path.
    node_blame: Dict[str, float] = field(default_factory=dict)
    #: span name -> (count, total, self, wall_seconds); ``self`` excludes
    #: child-span time, so blocked-on-children time is the difference.
    span_table: Dict[str, Tuple[int, float, float, float]] = field(
        default_factory=dict
    )
    #: (src, dst) -> minimum slack over off-path deliveries on that link:
    #: the sim-time that link's latency could grow before it moves the
    #: critical path.  Links on the path have slack 0 and are excluded.
    link_slack: Dict[Tuple[str, str], float] = field(default_factory=dict)
    #: Messages with a send but no deliver (lost / crashed / partitioned).
    undelivered: int = 0

    @property
    def duration(self) -> float:
        """Sim-time length of the session (root-span interval)."""
        return self.end - self.start

    @property
    def path_duration(self) -> float:
        """Sim-time covered by the critical path (start to last activation)."""
        return sum(step.duration for step in self.steps)

    def top_links(self, k: int = 5) -> List[Tuple[str, str, float]]:
        ranked = sorted(
            self.link_blame.items(), key=lambda kv: (-kv[1], kv[0])
        )
        return [(src, dst, total) for (src, dst), total in ranked[:k]]

    def top_nodes(self, k: int = 5) -> List[Tuple[str, float]]:
        ranked = sorted(
            self.node_blame.items(), key=lambda kv: (-kv[1], kv[0])
        )
        return ranked[:k]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "trace": self.trace,
            "name": self.name,
            "outcome": self.outcome,
            "duration": self.duration,
            "path_duration": self.path_duration,
            "steps": [step.as_dict() for step in self.steps],
            "kind_blame": {
                kind: {"count": count, "total": total}
                for kind, (count, total) in sorted(self.kind_blame.items())
            },
            "link_blame": {
                f"{src}->{dst}": total
                for (src, dst), total in sorted(self.link_blame.items())
            },
            "node_blame": dict(sorted(self.node_blame.items())),
            "span_table": {
                name: {
                    "count": count,
                    "total": total,
                    "self": self_time,
                    "wall_seconds": wall,
                }
                for name, (count, total, self_time, wall) in sorted(
                    self.span_table.items()
                )
            },
            "link_slack": {
                f"{src}->{dst}": slack
                for (src, dst), slack in sorted(self.link_slack.items())
            },
            "undelivered": self.undelivered,
        }


def profile_session(recording: Recording, trace: int) -> Optional[SessionProfile]:
    """Profile one session (root span) of a recording.

    Returns ``None`` when ``trace`` has no root span in the recording.
    Sessions without causal events (no ``channel.*`` stamps) yield a
    profile with an empty path but a populated span table.
    """
    root: Optional[Dict[str, Any]] = None
    for span in recording.spans:
        if span.get("trace") == trace and span.get("parent") is None:
            root = span
            break
    if root is None:
        return None
    profile = SessionProfile(
        trace=trace,
        name=str(root.get("name")),
        outcome=(root.get("attrs") or {}).get("outcome"),
        start=float(root.get("start") or 0.0),
        end=float(root.get("end") or 0.0),
    )
    profile.span_table = _span_table(recording.spans_of(trace))

    sends: Dict[int, _Ev] = {}
    send_meta: Dict[int, Tuple[str, str, str]] = {}  # mid -> (src, dst, cls)
    delivers: Dict[int, List[_Ev]] = {}
    acts_by_node: Dict[str, List[_Ev]] = {}
    acts: List[Tuple[str, _Ev]] = []  # (instance, event) in stream order
    for seq, record in enumerate(recording.events_of(trace)):
        name = record.get("name")
        attrs = record.get("attrs") or {}
        ev = _Ev(seq=seq, time=float(record.get("time") or 0.0), attrs=attrs)
        if name == "channel.send":
            mid = int(attrs.get("msg_id") or 0)
            if mid and mid not in sends:
                sends[mid] = ev
                send_meta[mid] = (
                    str(attrs.get("src")),
                    str(attrs.get("dst")),
                    str(attrs.get("cls", "")),
                )
        elif name == "channel.deliver":
            mid = int(attrs.get("msg_id") or 0)
            if mid:
                delivers.setdefault(mid, []).append(ev)
        elif name == "node.activate":
            instance = str(attrs.get("instance"))
            acts_by_node.setdefault(instance, []).append(ev)
            acts.append((instance, ev))
    profile.undelivered = sum(1 for mid in sends if mid not in delivers)
    if not acts:
        return profile

    # Terminal: the last activation in (time, seq) order -- for a
    # successful federation that is the sink completing the flow graph.
    terminal_node, terminal = max(
        acts, key=lambda pair: (pair[1].time, pair[1].seq)
    )
    steps = _walk_critical_path(
        profile.start, terminal_node, terminal,
        sends, send_meta, delivers, acts_by_node,
    )
    profile.steps = tuple(steps)
    for step in steps:
        count, total = profile.kind_blame.get(step.kind, (0, 0.0))
        profile.kind_blame[step.kind] = (count + 1, total + step.duration)
        if step.kind == "transmit":
            link = (step.src, step.dst)
            profile.link_blame[link] = (
                profile.link_blame.get(link, 0.0) + step.duration
            )
        elif step.kind in ("process", "emit", "backoff"):
            profile.node_blame[step.dst] = (
                profile.node_blame.get(step.dst, 0.0) + step.duration
            )
    profile.link_slack = _link_slack(
        steps, terminal, sends, send_meta, delivers, acts_by_node, acts
    )
    return profile


def profile_recording(recording: Recording) -> List[SessionProfile]:
    """Profile every session of a recording, in trace order."""
    profiles: List[SessionProfile] = []
    for session in recording.sessions():
        trace = session.get("trace")
        if trace is None:
            continue
        profile = profile_session(recording, int(trace))
        if profile is not None:
            profiles.append(profile)
    return profiles


# -- critical-path reconstruction -------------------------------------------------


def _latest_at_or_before(
    events: List[_Ev], time: float, seq: int
) -> Optional[_Ev]:
    """Latest event with ``(time, seq)`` at or before the given point."""
    best: Optional[_Ev] = None
    for ev in events:
        if (ev.time, ev.seq) <= (time, seq):
            if best is None or (ev.time, ev.seq) > (best.time, best.seq):
                best = ev
    return best


def _first_at_or_after(
    events: List[_Ev], time: float, seq: int
) -> Optional[_Ev]:
    """Earliest event with ``(time, seq)`` at or after the given point."""
    best: Optional[_Ev] = None
    for ev in events:
        if (ev.time, ev.seq) >= (time, seq):
            if best is None or (ev.time, ev.seq) < (best.time, best.seq):
                best = ev
    return best


def _walk_critical_path(
    session_start: float,
    terminal_node: str,
    terminal: _Ev,
    sends: Dict[int, _Ev],
    send_meta: Dict[int, Tuple[str, str, str]],
    delivers: Dict[int, List[_Ev]],
    acts_by_node: Dict[str, List[_Ev]],
) -> List[CriticalStep]:
    """Backward walk from the terminal activation to the session start.

    Each iteration peels one hop: the activation's ``cause`` message is
    looked up, its deliver and send bracket the transmit step, and the
    emitting side is the latest earlier activation at the send's source
    (or the session start for the consumer's kick-off).  Ties break on
    stream order (``seq``), so the walk is deterministic.
    """
    steps: List[CriticalStep] = []
    node, act = terminal_node, terminal
    visited = 0
    limit = len(sends) + sum(len(evs) for evs in acts_by_node.values()) + 1
    while visited <= limit:
        visited += 1
        cause = int(act.attrs.get("cause") or 0)
        send = sends.get(cause)
        if not cause or send is None:
            # Unstamped activation (pre-causal recording): anchor to start.
            steps.append(
                CriticalStep("initial", "start", node, session_start, act.time)
            )
            break
        deliver = _latest_at_or_before(
            delivers.get(cause, []), act.time, act.seq
        )
        src, dst, _cls = send_meta[cause]
        if deliver is not None:
            steps.append(
                CriticalStep("process", dst, node, deliver.time, act.time)
            )
            steps.append(
                CriticalStep("transmit", src, dst, send.time, deliver.time)
            )
        else:
            # Cause recorded but its deliver was not (truncated recording):
            # collapse transmit+process into one transmit step.
            steps.append(CriticalStep("transmit", src, dst, send.time, act.time))
        previous = _latest_at_or_before(
            acts_by_node.get(src, []), send.time, send.seq
        )
        if previous is None:
            # The consumer's kick-off (or a sender that never activated).
            steps.append(
                CriticalStep("initial", src, src, session_start, send.time)
            )
            break
        kind = "backoff" if send.time > previous.time else "emit"
        steps.append(CriticalStep(kind, src, src, previous.time, send.time))
        node, act = src, previous
    steps.reverse()
    return steps


def _link_slack(
    steps: List[CriticalStep],
    terminal: _Ev,
    sends: Dict[int, _Ev],
    send_meta: Dict[int, Tuple[str, str, str]],
    delivers: Dict[int, List[_Ev]],
    acts_by_node: Dict[str, List[_Ev]],
    acts: List[Tuple[str, _Ev]],
) -> Dict[Tuple[str, str], float]:
    """Minimum slack per off-critical-path link.

    Slack of an activation = how much later it could have fired without
    delaying the terminal: 0 for the terminal, else the minimum over its
    outbound messages of (join float at the consuming activation) + (that
    activation's slack).  The join float of a delivery is the sim-time it
    sat waiting for the consuming node's in-degree to fill.  A delivery's
    slack then caps how much its link latency could grow before the
    critical path moves through it.
    """
    # Consuming activation per delivery: the first activation at the
    # destination at-or-after the delivery (in-degree joins wait there).
    slack_of_act: Dict[int, float] = {terminal.seq: 0.0}
    # Activations in reverse (time, seq) order: every causal successor of
    # an activation is later in that order, so one sweep suffices.
    ordered = sorted(acts, key=lambda pair: (pair[1].time, pair[1].seq))
    link_slack: Dict[Tuple[str, str], float] = {}
    on_path_links = {
        (step.src, step.dst) for step in steps if step.kind == "transmit"
    }
    # Outbound sends per (instance, activation): sends from that instance
    # in the window [activation, next activation at the same instance).
    for node, act in reversed(ordered):
        if act.seq in slack_of_act:
            continue
        window_end = _next_act_point(acts_by_node[node], act)
        best = math.inf
        for mid, send in sends.items():
            src, _dst, cls = send_meta[mid]
            if src != node or cls == "Ack":
                continue
            if not ((send.time, send.seq) >= (act.time, act.seq)):
                continue
            if window_end is not None and (send.time, send.seq) >= window_end:
                continue
            for deliver in delivers.get(mid, []):
                consumer = _first_at_or_after(
                    acts_by_node.get(send_meta[mid][1], []),
                    deliver.time,
                    deliver.seq,
                )
                if consumer is None or consumer.seq not in slack_of_act:
                    continue
                join_float = consumer.time - deliver.time
                best = min(best, join_float + slack_of_act[consumer.seq])
        if best is not math.inf:
            slack_of_act[act.seq] = best
    # Per-delivery slack, folded to a per-link minimum (off-path links).
    for mid, evs in delivers.items():
        src, dst, cls = send_meta.get(mid, ("", "", ""))
        if cls == "Ack" or (src, dst) in on_path_links:
            continue
        for deliver in evs:
            consumer = _first_at_or_after(
                acts_by_node.get(dst, []), deliver.time, deliver.seq
            )
            if consumer is None or consumer.seq not in slack_of_act:
                continue
            slack = (consumer.time - deliver.time) + slack_of_act[consumer.seq]
            key = (src, dst)
            if key not in link_slack or slack < link_slack[key]:
                link_slack[key] = slack
    return link_slack


def _next_act_point(
    events: List[_Ev], act: _Ev
) -> Optional[Tuple[float, int]]:
    """The (time, seq) of the activation after ``act`` at the same node."""
    best: Optional[Tuple[float, int]] = None
    for ev in events:
        point = (ev.time, ev.seq)
        if point > (act.time, act.seq) and (best is None or point < best):
            best = point
    return best


def _span_table(
    spans: List[Dict[str, Any]]
) -> Dict[str, Tuple[int, float, float, float]]:
    """Per-span-name (count, total, self, wall_seconds) over one trace.

    ``self`` subtracts direct-child time from each span, so a phase that
    merely waits on sub-phases shows near-zero self time -- the blocked
    time lives in the children.
    """
    child_time: Dict[Any, float] = {}
    for span in spans:
        parent = span.get("parent")
        if parent is not None:
            duration = float(span.get("end") or 0.0) - float(
                span.get("start") or 0.0
            )
            child_time[parent] = child_time.get(parent, 0.0) + duration
    table: Dict[str, Tuple[int, float, float, float]] = {}
    for span in spans:
        name = str(span.get("name"))
        duration = float(span.get("end") or 0.0) - float(
            span.get("start") or 0.0
        )
        self_time = duration - child_time.get(span.get("span"), 0.0)
        wall = float((span.get("attrs") or {}).get("wall_seconds") or 0.0)
        count, total, selfsum, wallsum = table.get(name, (0, 0.0, 0.0, 0.0))
        table[name] = (
            count + 1, total + duration, selfsum + self_time, wallsum + wall
        )
    return table


# -- campaign-level aggregation ---------------------------------------------------


@dataclass
class CampaignProfile:
    """Critical-path aggregates over many sessions.

    Built by folding :class:`SessionProfile` objects **in submission
    order**; the fold is plain float addition in a fixed order, so a
    parallel campaign that merges per-worker results in submission order
    reproduces the serial aggregate bit for bit.
    """

    sessions: int = 0
    path_duration_total: float = 0.0
    duration_total: float = 0.0
    kind_blame: Dict[str, Tuple[int, float]] = field(default_factory=dict)
    link_blame: Dict[Tuple[str, str], float] = field(default_factory=dict)
    node_blame: Dict[str, float] = field(default_factory=dict)
    undelivered: int = 0

    @property
    def mean_path_duration(self) -> float:
        return self.path_duration_total / self.sessions if self.sessions else 0.0

    def add(self, profile: SessionProfile) -> None:
        self.sessions += 1
        self.path_duration_total += profile.path_duration
        self.duration_total += profile.duration
        self.undelivered += profile.undelivered
        for kind, (count, total) in profile.kind_blame.items():
            base_count, base_total = self.kind_blame.get(kind, (0, 0.0))
            self.kind_blame[kind] = (base_count + count, base_total + total)
        for link, total in profile.link_blame.items():
            self.link_blame[link] = self.link_blame.get(link, 0.0) + total
        for node, total in profile.node_blame.items():
            self.node_blame[node] = self.node_blame.get(node, 0.0) + total

    def top_links(self, k: int = 5) -> List[Tuple[str, str, float]]:
        ranked = sorted(
            self.link_blame.items(), key=lambda kv: (-kv[1], kv[0])
        )
        return [(src, dst, total) for (src, dst), total in ranked[:k]]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "sessions": self.sessions,
            "path_duration_total": self.path_duration_total,
            "mean_path_duration": self.mean_path_duration,
            "duration_total": self.duration_total,
            "kind_blame": {
                kind: {"count": count, "total": total}
                for kind, (count, total) in sorted(self.kind_blame.items())
            },
            "link_blame": {
                f"{src}->{dst}": total
                for (src, dst), total in sorted(self.link_blame.items())
            },
            "node_blame": dict(sorted(self.node_blame.items())),
            "undelivered": self.undelivered,
        }


def aggregate_profiles(
    profiles: Iterable[SessionProfile],
) -> CampaignProfile:
    """Fold session profiles (in iteration order) into a campaign view."""
    campaign = CampaignProfile()
    for profile in profiles:
        campaign.add(profile)
    return campaign


def merge_campaigns(
    base: CampaignProfile, other: CampaignProfile
) -> CampaignProfile:
    """Fold ``other`` into ``base`` (in place) and return ``base``.

    Used by the evaluation fan-out to fold per-worker campaign profiles in
    submission order -- the same order the serial path folds sessions, so
    the merged floats are bit-identical.
    """
    base.sessions += other.sessions
    base.path_duration_total += other.path_duration_total
    base.duration_total += other.duration_total
    base.undelivered += other.undelivered
    for kind, (count, total) in other.kind_blame.items():
        base_count, base_total = base.kind_blame.get(kind, (0, 0.0))
        base.kind_blame[kind] = (base_count + count, base_total + total)
    for link, total in other.link_blame.items():
        base.link_blame[link] = base.link_blame.get(link, 0.0) + total
    for node, total in other.node_blame.items():
        base.node_blame[node] = base.node_blame.get(node, 0.0) + total
    return base


# -- differential comparison ------------------------------------------------------


@dataclass
class ProfileDiff:
    """Per-phase comparison of two recordings (baseline A vs. candidate B)."""

    baseline_sessions: int
    candidate_sessions: int
    baseline_mean: float
    candidate_mean: float
    #: kind -> (A mean per session, B mean per session, delta).
    kind_deltas: Dict[str, Tuple[float, float, float]]
    threshold: float
    #: Relative critical-path change ((B - A) / A); ``inf`` when A is 0
    #: and B is not.
    relative: float

    @property
    def delta(self) -> float:
        return self.candidate_mean - self.baseline_mean

    @property
    def regression(self) -> bool:
        """True when the candidate's mean critical path regressed past the
        threshold (e.g. 0.2 = +20%)."""
        return self.relative > self.threshold

    def as_dict(self) -> Dict[str, Any]:
        return {
            "baseline_sessions": self.baseline_sessions,
            "candidate_sessions": self.candidate_sessions,
            "baseline_mean": self.baseline_mean,
            "candidate_mean": self.candidate_mean,
            "delta": self.delta,
            "relative": self.relative,
            "threshold": self.threshold,
            "regression": self.regression,
            "kind_deltas": {
                kind: {"baseline": a, "candidate": b, "delta": d}
                for kind, (a, b, d) in sorted(self.kind_deltas.items())
            },
        }


def diff_recordings(
    baseline: Recording,
    candidate: Recording,
    *,
    threshold: float = 0.2,
) -> ProfileDiff:
    """Align two recordings and compare their critical-path structure.

    Sessions are aggregated per recording (means are per-session), so the
    two recordings need not contain the same number of sessions -- e.g. a
    fault-free baseline arm against a full chaos campaign, or the same
    seeded campaign before and after an optimization.
    """
    a = aggregate_profiles(profile_recording(baseline))
    b = aggregate_profiles(profile_recording(candidate))
    kinds = sorted(set(a.kind_blame) | set(b.kind_blame))
    kind_deltas: Dict[str, Tuple[float, float, float]] = {}
    for kind in kinds:
        a_total = a.kind_blame.get(kind, (0, 0.0))[1]
        b_total = b.kind_blame.get(kind, (0, 0.0))[1]
        a_mean = a_total / a.sessions if a.sessions else 0.0
        b_mean = b_total / b.sessions if b.sessions else 0.0
        kind_deltas[kind] = (a_mean, b_mean, b_mean - a_mean)
    a_mean = a.mean_path_duration
    b_mean = b.mean_path_duration
    if a_mean > 0:
        relative = (b_mean - a_mean) / a_mean
    elif b_mean > 0:
        relative = math.inf
    else:
        relative = 0.0
    return ProfileDiff(
        baseline_sessions=a.sessions,
        candidate_sessions=b.sessions,
        baseline_mean=a_mean,
        candidate_mean=b_mean,
        kind_deltas=kind_deltas,
        threshold=threshold,
        relative=relative,
    )
