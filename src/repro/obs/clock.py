"""Injectable host-time measurement: the :class:`Stopwatch`.

Protocol and simulation code (``repro.sim`` / ``repro.core``) is banned
from reading wall clocks directly -- rule SFL001 of
:mod:`repro.tools.check` enforces it -- because an ambient
``time.perf_counter()`` call hard-wires host timing into code whose
*results* must be pure functions of the DES clock and the inputs.  The
one legitimate use of host time there is *measuring our own compute
cost* (the solver-timing columns of Fig. 10(b)), and that goes through a
:class:`Stopwatch`:

* the clock is an injected callable, so tests substitute a scripted fake
  and assert exact elapsed values instead of sleeping;
* the default is :data:`PERF_CLOCK` (``time.perf_counter``), the highest
  resolution monotonic counter the host offers;
* readings are only meaningful as differences -- the absolute value is
  unspecified, exactly like ``perf_counter`` itself.

Typical use::

    sw = Stopwatch()                  # or Stopwatch(clock=fake) in tests
    t0 = sw.read()
    ...work...
    elapsed = sw.read() - t0

or, for a single interval::

    with sw.measure() as lap:
        ...work...
    report(lap.seconds)
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Iterator, Optional

__all__ = ["ClockFn", "PERF_CLOCK", "Lap", "Stopwatch"]

#: A clock is any zero-argument callable returning seconds as a float.
ClockFn = Callable[[], float]

#: The default host clock: monotonic, high resolution, differences-only.
PERF_CLOCK: ClockFn = time.perf_counter


class Lap:
    """One measured interval; ``seconds`` is final once the lap ends."""

    __slots__ = ("_clock", "_start", "seconds")

    def __init__(self, clock: ClockFn) -> None:
        self._clock = clock
        self._start = clock()
        self.seconds = 0.0

    def stop(self) -> float:
        """Freeze and return the elapsed time (idempotent takes the last)."""
        self.seconds = self._clock() - self._start
        return self.seconds


class Stopwatch:
    """Interval timer over an injectable clock.

    Cheap enough to construct per federation run; sharing one across a
    run keeps every measurement on the same clock, which is what makes a
    scripted fake clock in tests line up with the call sites.
    """

    __slots__ = ("_clock",)

    def __init__(self, clock: Optional[ClockFn] = None) -> None:
        self._clock = PERF_CLOCK if clock is None else clock

    def read(self) -> float:
        """The current clock value; subtract two reads for an interval."""
        return self._clock()

    @contextmanager
    def measure(self) -> Iterator[Lap]:
        """``with sw.measure() as lap:`` -- ``lap.seconds`` after the block."""
        lap = Lap(self._clock)
        try:
            yield lap
        finally:
            lap.stop()
