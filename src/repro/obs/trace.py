"""Sim-time tracing: spans and point events over pluggable clocks.

The qualitative half of :mod:`repro.obs`.  A **span** is a named interval
with attributes (a federation session, a negotiate phase, one supervised
send); a **point event** is an instant inside a span (a crash, a failover,
a probe).  Both are stamped by a *clock*:

* :class:`SimClock` reads a DES :class:`~repro.sim.engine.Environment`'s
  virtual ``now`` -- the clock every federation-time claim of the paper is
  measured on;
* outside a simulator the tracer falls back to :data:`WALL_CLOCK`
  (``time.monotonic``), so the same instrumentation works in plain code.

Span context propagates structurally: ``session()`` opens a root span
(fresh trace id), :meth:`Span.child` nests, and every record carries
``(trace, span, parent)`` ids, so a flight recording can be re-assembled
into per-session timelines by :mod:`repro.tools.trace`.

**The off switch is the fast path.**  The process tracer has no sink by
default; ``session()``/``child()``/``event()`` then return or touch the
shared :data:`NULL_SPAN` and do nothing else -- no clock read, no dict, no
allocation.  ``benchmarks/test_obs_overhead.py`` holds this to a budget so
instrumentation can stay inline in hot protocol paths.
"""

from __future__ import annotations

import itertools
import time
from types import TracebackType
from typing import Any, Dict, Optional

__all__ = [
    "NULL_SPAN",
    "SimClock",
    "Span",
    "Tracer",
    "WALL_CLOCK",
    "tracer",
]


class SimClock:
    """Clock adapter over a DES environment: ``clock() == env.now``."""

    kind = "sim"
    __slots__ = ("env",)

    def __init__(self, env: Any) -> None:
        self.env = env

    def __call__(self) -> float:
        return self.env.now


class _WallClock:
    """Monotonic wall clock -- the fallback outside the simulator."""

    kind = "wall"
    __slots__ = ()

    def __call__(self) -> float:
        return time.monotonic()


WALL_CLOCK = _WallClock()


class _NullSpan:
    """The do-nothing span returned whenever tracing is off."""

    enabled = False
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def child(self, name: str, **attrs: object) -> "_NullSpan":
        return self

    def event(self, name: str, **attrs: object) -> None:
        return None

    def set(self, **attrs: object) -> None:
        return None

    def end(self, **attrs: object) -> None:
        return None


NULL_SPAN = _NullSpan()


class Span:
    """A live interval; emitted to the sink when it ends.

    Spans are written to the recording *at end time* (a JSONL stream wants
    complete records); a span abandoned without ``end()`` -- e.g. a
    protocol process the simulation never resumed -- is simply absent from
    the recording.  Point events inside the span are emitted immediately.
    """

    enabled = True
    __slots__ = (
        "_tracer", "name", "trace_id", "span_id", "parent_id",
        "clock", "start", "attrs", "_ended",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: int,
        span_id: int,
        parent_id: Optional[int],
        clock: Any,
        attrs: Dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.clock = clock
        self.start = clock()
        self.attrs = attrs
        self._ended = False

    def child(self, name: str, **attrs: object) -> "Span":
        """Open a nested span sharing this span's trace and clock."""
        return self._tracer._span(
            name, self.trace_id, self.span_id, self.clock, dict(attrs)
        )

    def event(self, name: str, **attrs: object) -> None:
        """Record a point event inside this span (emitted immediately)."""
        self._tracer._emit(
            {
                "type": "event",
                "name": name,
                "trace": self.trace_id,
                "span": self.span_id,
                "time": self.clock(),
                "clock": self.clock.kind,
                "attrs": dict(attrs),
            }
        )

    def set(self, **attrs: object) -> None:
        """Attach attributes (merged into the record written at end)."""
        self.attrs.update(attrs)

    def end(self, **attrs: object) -> None:
        """Close the span and write its record.  Idempotent."""
        if self._ended:
            return
        self._ended = True
        if attrs:
            self.attrs.update(attrs)
        self._tracer._emit(
            {
                "type": "span",
                "name": self.name,
                "trace": self.trace_id,
                "span": self.span_id,
                "parent": self.parent_id,
                "start": self.start,
                "end": self.clock(),
                "clock": self.clock.kind,
                "attrs": self.attrs,
            }
        )

    def __enter__(self) -> "Span":
        return self

    def __exit__(
        self,
        exc_type: Optional[type],
        exc: Optional[BaseException],
        _tb: Optional[TracebackType],
    ) -> bool:
        if exc is not None:
            self.attrs.setdefault("error", repr(exc))
        self.end()
        return False


class Tracer:
    """Span factory bound to an optional sink (the flight recorder).

    One process-wide instance (:func:`tracer`) serves every subsystem;
    tests may build private ones.  With no sink attached the tracer is
    inert: every entry point returns :data:`NULL_SPAN` or returns
    immediately.
    """

    def __init__(self) -> None:
        self._sink: Optional[Any] = None
        self._span_ids = itertools.count(1)
        self._trace_ids = itertools.count(1)

    @property
    def enabled(self) -> bool:
        return self._sink is not None

    @property
    def sink(self) -> Optional[Any]:
        return self._sink

    def set_sink(self, sink: Optional[Any]) -> None:
        """Attach (or detach, with ``None``) the record sink.

        The sink needs one method: ``emit(record: dict)``.
        """
        self._sink = sink

    def session(self, name: str, *, clock: Any = None, **attrs: object) -> Any:
        """Open a root span under a fresh trace id (one per session)."""
        if self._sink is None:
            return NULL_SPAN
        return self._span(
            name, next(self._trace_ids), None, clock or WALL_CLOCK, dict(attrs)
        )

    def event(self, name: str, *, clock: Any = None, **attrs: object) -> None:
        """A free-standing point event (no enclosing span)."""
        if self._sink is None:
            return
        clock = clock or WALL_CLOCK
        self._emit(
            {
                "type": "event",
                "name": name,
                "trace": None,
                "span": None,
                "time": clock(),
                "clock": clock.kind,
                "attrs": dict(attrs),
            }
        )

    # -- internals ---------------------------------------------------------

    def _span(
        self,
        name: str,
        trace_id: int,
        parent_id: Optional[int],
        clock: Any,
        attrs: Dict[str, Any],
    ) -> Any:
        if self._sink is None:
            return NULL_SPAN
        return Span(
            self, name, trace_id, next(self._span_ids), parent_id, clock, attrs
        )

    def _emit(self, record: Dict[str, Any]) -> None:
        sink = self._sink
        if sink is not None:
            sink.emit(record)


_TRACER = Tracer()


def tracer() -> Tracer:
    """The process-wide tracer (sink-less, i.e. disabled, by default)."""
    return _TRACER
