"""Exception hierarchy for the sFlow reproduction.

All library-specific failures derive from :class:`SFlowError` so downstream
users can catch one base class; the subclasses distinguish the three layers
where things can go wrong (model validation, federation/solving, simulation).
"""

from __future__ import annotations


class SFlowError(Exception):
    """Base class for every error raised by this library."""


class RequirementError(SFlowError):
    """A service requirement violates the paper's model (cycle, multiple
    sources, disconnected services, unknown service references, ...)."""


class FederationError(SFlowError):
    """A federation algorithm cannot produce a valid service flow graph,
    e.g. a required service has no instance in the overlay or no usable
    path connects two chosen instances."""


class SimulationError(SFlowError):
    """The discrete-event simulation was driven incorrectly (process yielded
    a non-event, time ran backwards, event triggered twice, ...)."""
