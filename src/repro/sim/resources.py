"""Shared-resource primitives for the simulation kernel.

The simpy-style counterparts needed to express contention in simulated
systems:

* :class:`Resource` -- ``capacity`` concurrent holders, FIFO queueing;
  used by the DES data-plane executor to model service links that
  transmit one data unit at a time.
* :class:`Store` -- an unbounded (or bounded) FIFO buffer of items with
  blocking ``get``; the building block for producer/consumer stages.

Both hand out plain :class:`~repro.sim.engine.Event` objects, so processes
compose them freely with timeouts and conditions::

    def worker(env, resource):
        request = resource.request()
        yield request
        try:
            yield env.timeout(5)         # hold the resource
        finally:
            resource.release(request)
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional, Set

from repro.errors import SimulationError
from repro.sim.engine import Environment, Event


class Request(Event):
    """A pending or granted claim on a :class:`Resource`."""

    def __init__(self, env: Environment, resource: "Resource") -> None:
        super().__init__(env)
        self.resource = resource


class Resource:
    """A capacity-limited resource with FIFO granting.

    ``request()`` returns an event that fires once a slot is free;
    ``release(request)`` frees the slot and wakes the next waiter.
    Releasing an ungranted or foreign request is an error -- silent
    double-releases are the classic simulation bug this guards against.
    """

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._holders: Set[Request] = set()
        self._queue: Deque[Request] = deque()

    @property
    def in_use(self) -> int:
        """Number of currently granted slots."""
        return len(self._holders)

    @property
    def queued(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._queue)

    def request(self) -> Request:
        """Claim a slot; the returned event fires when granted."""
        req = Request(self.env, self)
        if len(self._holders) < self.capacity:
            self._holders.add(req)
            req.succeed()
        else:
            self._queue.append(req)
        return req

    def release(self, request: Request) -> None:
        """Return a granted slot (wakes the next queued request)."""
        if request.resource is not self:
            raise SimulationError("request belongs to a different resource")
        if request not in self._holders:
            raise SimulationError("releasing a request that was never granted")
        self._holders.discard(request)
        if self._queue:
            nxt = self._queue.popleft()
            self._holders.add(nxt)
            nxt.succeed()


class Store:
    """A FIFO item buffer with blocking ``get`` and optionally bounded ``put``.

    With ``capacity=None`` (default) puts never block and complete
    immediately; with a finite capacity, ``put`` returns an event that
    fires once space is available.
    """

    def __init__(self, env: Environment, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[Event] = deque()
        self._pending_items: Deque[Any] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> Event:
        """Deposit ``item``; the returned event fires when accepted."""
        event = Event(self.env)
        if self._getters:
            # Hand straight to a waiting consumer.
            self._getters.popleft().succeed(item)
            event.succeed()
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            event.succeed()
        else:
            self._putters.append(event)
            self._pending_items.append(item)
        return event

    def get(self) -> Event:
        """Take the oldest item; the returned event fires with it."""
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
            self._admit_pending()
        else:
            self._getters.append(event)
        return event

    def _admit_pending(self) -> None:
        while self._putters and (
            self.capacity is None or len(self._items) < self.capacity
        ):
            self._items.append(self._pending_items.popleft())
            self._putters.popleft().succeed()
