"""Message-passing primitives on top of the simulation kernel.

Simulated protocol endpoints (sFlow service nodes, link-state routers)
communicate through a :class:`MessageNetwork`: a point-to-point transport
that delivers an :class:`Envelope` into the destination's :class:`Mailbox`
after a configurable latency.  The network keeps delivery statistics
(messages, bytes, per-destination counts) so experiments can report protocol
overhead without instrumenting every node.

Failure semantics (for chaos experiments):

* a **crashed** address (:meth:`MessageNetwork.crash`) models crash-stop
  nodes: deliveries to it are silently discarded -- including messages
  already in flight when the crash happens -- and its queued mail is
  drained, so the owning process never wakes up again until a
  :meth:`~MessageNetwork.revive`;
* a **jitter function** adds per-message delivery delay on top of the
  nominal latency (seed the callable's RNG for reproducible runs);
* a **loss function** eats individual messages (the sender still pays for
  the transmission);
* a **gray model** (:meth:`MessageNetwork.install_gray`) generalises both
  to the full gray-failure menu: per-channel loss, duplication and
  reordering, straggler endpoints (inflated delivery latency), flapping
  links and healing partitions.  The model returns one
  :class:`ChannelEffect` per send; :class:`repro.network.failures.GrayFaultPlan`
  provides the seeded, schedulable implementation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Hashable, Optional, Set, Tuple

from repro.errors import SimulationError
from repro.obs import metrics as obs_metrics
from repro.obs.trace import NULL_SPAN
from repro.sim.engine import Environment, Event

Address = Hashable

#: Transport metrics (process-wide, across every MessageNetwork): resolved
#: once at import so the send path pays one counter update, not a registry
#: lookup.  The per-network :class:`NetworkStats` stays the per-run view;
#: these registry series are what flight recordings and campaign snapshots
#: read.
_REGISTRY = obs_metrics.registry()
_M_MESSAGES = _REGISTRY.counter("channel.messages", "messages accepted for delivery")
_M_BYTES = _REGISTRY.counter("channel.bytes", "abstract wire bytes sent")
_M_DROPPED = _REGISTRY.counter("channel.dropped", "messages to unroutable addresses")
_M_LOST = _REGISTRY.counter("channel.lost", "messages eaten by the loss model")
_M_CRASH_DROPPED = _REGISTRY.counter(
    "channel.crash_dropped", "messages discarded at crashed endpoints"
)
_H_DELIVERY = _REGISTRY.histogram(
    "channel.delivery.latency",
    "realised delivery latency (virtual time, jitter included) of messages "
    "actually put in flight",
)
_M_DUPLICATED = _REGISTRY.counter(
    "channel.duplicated", "extra copies injected by the gray model"
)
_M_REORDERED = _REGISTRY.counter(
    "channel.reordered", "messages delayed out of FIFO order by the gray model"
)
_M_PARTITION_BLOCKED = _REGISTRY.counter(
    "channel.partition_blocked",
    "messages blocked by an active partition or a flapped-down link",
)


@dataclass(frozen=True)
class ChannelEffect:
    """What the gray model decided for one message in flight.

    ``blocked`` models a partitioned or flapped-down channel (the message
    vanishes, counted separately from random loss); ``drop`` is random
    gray loss; ``extra_delay`` inflates the delivery latency (straggler
    endpoints, reordering); ``reordered`` marks the delay as a reordering
    event for accounting; ``duplicate_delays`` injects one extra copy of
    the message per entry, each offset by that much additional delay.
    """

    blocked: bool = False
    drop: bool = False
    extra_delay: float = 0.0
    reordered: bool = False
    duplicate_delays: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.extra_delay < 0:
            raise SimulationError(
                f"extra_delay must be >= 0, got {self.extra_delay}"
            )
        for delay in self.duplicate_delays:
            if delay < 0:
                raise SimulationError(
                    f"duplicate delay must be >= 0, got {delay}"
                )


#: No-op effect shared by inactive models (avoids per-send allocation).
NO_EFFECT = ChannelEffect()


@dataclass(frozen=True)
class Envelope:
    """A message in flight: sender, receiver, payload and bookkeeping.

    ``mid`` is the network-level causal message id stamped on
    ``channel.send`` / ``channel.deliver`` trace events; it is 0 (and no
    events are emitted) unless a trace span is attached to the network,
    so untraced runs pay nothing and stay bit-identical.
    """

    src: Address
    dst: Address
    payload: Any
    sent_at: float
    size: int = 1
    mid: int = 0

    def __post_init__(self) -> None:
        if self.size < 0:
            raise SimulationError(f"message size must be >= 0, got {self.size}")


#: ``effect(src, dst, envelope, now, latency) -> ChannelEffect`` gray model.
GrayModelFn = Callable[[Address, Address, Envelope, float, float], ChannelEffect]


class Mailbox:
    """An unbounded FIFO queue with event-based blocking receive.

    ``get()`` returns an :class:`~repro.sim.engine.Event` that fires with the
    next envelope -- immediately if one is queued, otherwise as soon as one
    arrives.  Multiple pending ``get()`` calls are served in FIFO order.
    """

    def __init__(self, env: Environment, owner: Address = None) -> None:
        self.env = env
        self.owner = owner
        self._items: Deque[Envelope] = deque()
        self._getters: Deque[Event] = deque()
        self.received = 0

    def put(self, envelope: Envelope) -> None:
        """Deposit an envelope, waking one waiting receiver if any."""
        self.received += 1
        if self._getters:
            self._getters.popleft().succeed(envelope)
        else:
            self._items.append(envelope)

    def get(self) -> Event:
        """An event yielding the next envelope (FIFO)."""
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def __len__(self) -> int:
        """Number of envelopes queued (excluding ones already claimed)."""
        return len(self._items)

    def clear(self) -> int:
        """Discard all queued envelopes (crash-stop), returning the count.

        Pending ``get()`` events are left untouched: the waiting process
        simply never resumes until a new envelope arrives, which is exactly
        the behaviour of a stopped node.
        """
        dropped = len(self._items)
        self._items.clear()
        return dropped


#: ``latency_fn(src, dst, envelope) -> delay`` pluggable delivery model.
LatencyFn = Callable[[Address, Address, Envelope], float]

#: ``jitter_fn(src, dst, envelope) -> extra delay`` added to the latency.
JitterFn = Callable[[Address, Address, Envelope], float]


@dataclass
class NetworkStats:
    """Aggregate transport counters, reset with :meth:`MessageNetwork.reset_stats`."""

    messages: int = 0
    bytes: int = 0
    dropped: int = 0
    lost: int = 0
    crash_dropped: int = 0
    duplicated: int = 0
    reordered: int = 0
    partition_blocked: int = 0
    per_destination: Dict[Address, int] = field(default_factory=dict)


class MessageNetwork:
    """Point-to-point message delivery with per-message latency.

    Endpoints register a :class:`Mailbox` under an address.  ``send`` either
    takes an explicit ``latency`` or consults the network's latency function
    (default: zero delay).  Sending to an unregistered address raises unless
    the network was built with ``drop_unroutable=True``, in which case the
    message is counted as dropped -- useful for failure-injection tests.
    """

    def __init__(
        self,
        env: Environment,
        latency_fn: Optional[LatencyFn] = None,
        *,
        drop_unroutable: bool = False,
        loss_fn: Optional[Callable[[Address, Address, Envelope], bool]] = None,
        jitter_fn: Optional[JitterFn] = None,
    ) -> None:
        self.env = env
        self._latency_fn = latency_fn
        self._drop_unroutable = drop_unroutable
        self._loss_fn = loss_fn
        self._jitter_fn = jitter_fn
        self._mailboxes: Dict[Address, Mailbox] = {}
        self._crashed: Set[Address] = set()
        self._gray_model: Optional[GrayModelFn] = None
        self._trace_span = NULL_SPAN
        self._next_mid = 0
        self.stats = NetworkStats()

    def set_trace_span(self, span: Any) -> None:
        """Attach the span that owns causal ``channel.*`` events.

        While an enabled span is attached, every accepted send gets a
        monotonically increasing ``mid`` and emits a ``channel.send``
        event; each arrival emits a matching ``channel.deliver``.  Pass
        ``None`` (or ``NULL_SPAN``) to detach; the disabled path is one
        attribute load + bool test per send.
        """
        self._trace_span = NULL_SPAN if span is None else span

    def install_gray(self, model: Optional[GrayModelFn]) -> None:
        """Attach (or clear, with ``None``) the gray-failure model.

        The model is consulted once per :meth:`send`; a network without one
        behaves bit-for-bit as before the gray fault layer existed.
        """
        self._gray_model = model

    # -- membership -------------------------------------------------------------

    def register(self, address: Address) -> Mailbox:
        """Create (or fetch) the mailbox for ``address``."""
        if address not in self._mailboxes:
            self._mailboxes[address] = Mailbox(self.env, owner=address)
        return self._mailboxes[address]

    def mailbox(self, address: Address) -> Mailbox:
        try:
            return self._mailboxes[address]
        except KeyError:
            raise SimulationError(f"no endpoint registered at {address!r}") from None

    def addresses(self):
        return sorted(self._mailboxes, key=repr)

    # -- crash-stop failures -----------------------------------------------------

    def crash(self, address: Address) -> None:
        """Crash-stop ``address``: drop its queued mail and all future
        deliveries (including messages currently in flight) until revived.

        Crashing an unregistered address is allowed -- the crash schedule
        may cover endpoints that never joined the protocol.
        """
        self._crashed.add(address)
        box = self._mailboxes.get(address)
        if box is not None:
            drained = box.clear()
            self.stats.crash_dropped += drained
            if drained:
                _M_CRASH_DROPPED.inc(drained)

    def revive(self, address: Address) -> None:
        """Bring a crashed address back; future deliveries succeed again."""
        self._crashed.discard(address)

    def is_crashed(self, address: Address) -> bool:
        return address in self._crashed

    @property
    def crashed(self) -> frozenset:
        return frozenset(self._crashed)

    # -- delivery ----------------------------------------------------------------

    def send(
        self,
        src: Address,
        dst: Address,
        payload: Any,
        *,
        latency: Optional[float] = None,
        size: int = 1,
    ) -> Optional[Envelope]:
        """Send ``payload`` from ``src`` to ``dst``.

        Returns the envelope, or ``None`` when the destination is missing
        and the network drops unroutable traffic.
        """
        span = self._trace_span
        mid = 0
        if span.enabled:
            self._next_mid += 1
            mid = self._next_mid
        envelope = Envelope(src, dst, payload, sent_at=self.env.now, size=size, mid=mid)
        box = self._mailboxes.get(dst)
        if box is None:
            if self._drop_unroutable:
                self.stats.dropped += 1
                _M_DROPPED.inc()
                return None
            raise SimulationError(f"cannot deliver to unregistered address {dst!r}")
        if mid:
            # Causal stamp: a send without a matching deliver is a message
            # the network ate (loss / crash / partition) -- the profiler
            # reads that asymmetry directly.
            span.event(
                "channel.send",
                msg_id=mid,
                src=str(src),
                dst=str(dst),
                size=size,
                cls=type(payload).__name__,
            )
        if latency is None:
            latency = self._latency_fn(src, dst, envelope) if self._latency_fn else 0.0
        if latency < 0:
            raise SimulationError(f"negative delivery latency {latency}")
        if self._jitter_fn is not None:
            jitter = self._jitter_fn(src, dst, envelope)
            if jitter < 0:
                raise SimulationError(f"negative delivery jitter {jitter}")
            latency += jitter
        self.stats.messages += 1
        self.stats.bytes += size
        self.stats.per_destination[dst] = self.stats.per_destination.get(dst, 0) + 1
        _M_MESSAGES.inc()
        _M_BYTES.inc(size)
        if dst in self._crashed:
            # The sender transmitted into the void; nothing arrives.
            self.stats.crash_dropped += 1
            _M_CRASH_DROPPED.inc()
            return envelope
        if self._loss_fn is not None and self._loss_fn(src, dst, envelope):
            # The sender paid for the transmission; the network ate it.
            self.stats.lost += 1
            _M_LOST.inc()
            return envelope
        effect = NO_EFFECT
        if self._gray_model is not None:
            effect = self._gray_model(src, dst, envelope, self.env.now, latency)
            if effect.blocked:
                # A partitioned / flapped-down channel: nothing arrives,
                # and unlike random loss the outage is correlated in time.
                self.stats.partition_blocked += 1
                _M_PARTITION_BLOCKED.inc()
                return envelope
            if effect.drop:
                self.stats.lost += 1
                _M_LOST.inc()
                return envelope
            if effect.extra_delay > 0:
                latency += effect.extra_delay
                if effect.reordered:
                    self.stats.reordered += 1
                    _M_REORDERED.inc()
        _H_DELIVERY.observe(latency)
        delivery = Event(self.env)
        delivery.callbacks.append(lambda _e: self._deliver(box, envelope))
        delivery.succeed(delay=latency)
        for extra in effect.duplicate_delays:
            # A duplicated copy trails the original; reliable-mode
            # receivers dedup it by msg_id, raw consumers see it twice.
            self.stats.duplicated += 1
            _M_DUPLICATED.inc()
            duplicate = Event(self.env)
            duplicate.callbacks.append(lambda _e: self._deliver(box, envelope))
            duplicate.succeed(delay=latency + extra)
        return envelope

    def _deliver(self, box: Mailbox, envelope: Envelope) -> None:
        """Delivery-time crash check: a message in flight when its
        destination crashes is discarded, not queued."""
        if envelope.dst in self._crashed:
            self.stats.crash_dropped += 1
            _M_CRASH_DROPPED.inc()
            return
        span = self._trace_span
        if envelope.mid and span.enabled:
            span.event(
                "channel.deliver",
                msg_id=envelope.mid,
                src=str(envelope.src),
                dst=str(envelope.dst),
            )
        box.put(envelope)

    def reset_stats(self) -> None:
        self.stats = NetworkStats()
