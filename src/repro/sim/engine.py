"""Discrete-event simulation kernel (generator-process model).

The design follows the classic simpy architecture:

* an :class:`Environment` owns a virtual clock and a priority queue of
  scheduled events;
* an :class:`Event` is a one-shot object that moves from *pending* to
  *triggered* to *processed*; callbacks attached to it run when the clock
  reaches its scheduled time;
* a :class:`Process` wraps a Python generator.  The generator ``yield``\\ s
  events; the process suspends until the yielded event fires, then resumes
  with the event's value.  A process is itself an event (it triggers when
  the generator returns), so processes can wait on each other;
* :class:`Timeout` is an event scheduled ``delay`` time units in the future;
* :class:`AnyOf` / :class:`AllOf` are composite events over several others.

Determinism: events scheduled for the same instant fire in scheduling order
(a monotone sequence number breaks ties), so simulations are exactly
reproducible -- a property the tests assert.
"""

from __future__ import annotations

import heapq
import itertools
import traceback
from typing import Any, Callable, Dict, Generator, Iterable, List, Optional

from repro.errors import SimulationError
from repro.obs import metrics as obs_metrics
from repro.obs.trace import SimClock, tracer as obs_tracer

#: Process-generator exceptions converted into event failures (labelled by
#: exception class).  Counting them keeps "a process died" observable even
#: when every waiter handles the failure silently.
_M_HANDLER_ERRORS = obs_metrics.registry().counter(
    "engine.handler_error",
    "process-step exceptions converted into event failures",
)

#: Generators driving a :class:`Process` yield events and receive their values.
ProcessGenerator = Generator["Event", Any, Any]


class Event:
    """A one-shot occurrence that callbacks and processes can wait on.

    Life cycle: *pending* -> ``succeed``/``fail`` (triggered, enqueued on the
    environment) -> *processed* (callbacks ran at the trigger time).
    Triggering twice is an error; waiting on a processed event resumes the
    waiter immediately at the current simulation time.
    """

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        self._scheduled = False

    # -- state --------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """Whether ``succeed``/``fail`` was called."""
        return self._ok is not None

    @property
    def processed(self) -> bool:
        """Whether the callbacks have already run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        if self._ok is None:
            raise SimulationError("event has no value before it is triggered")
        return self._value

    # -- triggering -----------------------------------------------------------

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger successfully; callbacks run after ``delay`` time units."""
        self._trigger(True, value, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger as failed; waiting processes see ``exception`` raised."""
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exception!r}")
        self._trigger(False, exception, delay)
        return self

    def _trigger(self, ok: bool, value: Any, delay: float) -> None:
        if self._ok is not None:
            raise SimulationError("event already triggered")
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._ok = ok
        self._value = value
        self.env._schedule(self, delay)
        self._scheduled = True

    # -- waiting ---------------------------------------------------------------

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` once the event fires.

        Adding a callback to an already-processed event schedules it to run
        immediately (at the current simulation time), preserving the
        invariant that callbacks never run synchronously inside the caller.
        """
        if self.callbacks is None:
            immediate = Event(self.env)
            immediate.callbacks.append(lambda _e: callback(self))
            immediate.succeed()
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "pending"
        if self.processed:
            state = "processed"
        elif self.triggered:
            state = "triggered"
        return f"<{type(self).__name__} {state} at t={self.env.now:g}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout {delay}")
        super().__init__(env)
        self.delay = delay
        self.succeed(value, delay=delay)


class Interrupt(Exception):
    """Raised inside a process that another process interrupted."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """A generator-driven simulated activity.

    The wrapped generator yields :class:`Event` objects.  Each yield
    suspends the process until that event triggers; the event's value is
    sent back into the generator (or its exception thrown, for failed
    events).  When the generator returns, the process event succeeds with
    the returned value.
    """

    def __init__(self, env: "Environment", generator: ProcessGenerator) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(
                f"Process needs a generator, got {type(generator).__name__}"
            )
        super().__init__(env)
        self._generator = generator
        # Kick off at the current instant, but asynchronously.
        bootstrap = Event(env)
        self._waiting_on: Optional[Event] = bootstrap
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        return self._ok is None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError("cannot interrupt a finished process")
        poke = Event(self.env)
        poke.callbacks.append(lambda _e: self._throw_now(Interrupt(cause)))
        poke.succeed()

    def _throw_now(self, exc: BaseException) -> None:
        if not self.is_alive:
            return  # finished in the meantime; interrupt becomes a no-op
        self._waiting_on = None
        self._step(lambda: self._generator.throw(exc))

    def _resume(self, event: Event) -> None:
        if not self.is_alive:
            return
        if event is not self._waiting_on:
            return  # stale wake-up from an event we no longer wait on
        self._waiting_on = None
        if event.ok:
            self._step(lambda: self._generator.send(event.value))
        else:
            self._step(lambda: self._generator.throw(event.value))

    def _step(self, advance: Callable[[], Any]) -> None:
        try:
            target = advance()
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt:
            raise SimulationError(
                "process let an Interrupt escape; handle it or re-raise as "
                "a normal exception"
            )
        except Exception as exc:
            # The exception object keeps its __traceback__, so whoever
            # waits on this process re-raises with the original frames;
            # the counter + trace event make the failure visible even if
            # nobody does.
            _M_HANDLER_ERRORS.inc(kind=type(exc).__name__)
            trace = obs_tracer()
            if trace.enabled:
                trace.event(  # sflow: noqa[SFL012] -- the DES kernel cannot know the protocol's span; this diagnostic must fire even with no session open
                    "engine.handler_error",
                    clock=SimClock(self.env),
                    process=getattr(self._generator, "__name__", "process"),
                    kind=type(exc).__name__,
                    message=str(exc),
                    traceback="".join(
                        traceback.format_exception(type(exc), exc, exc.__traceback__)
                    ),
                )
            self.fail(exc)
            return
        if not isinstance(target, Event):
            self.fail(
                SimulationError(
                    f"process yielded {target!r}; processes must yield events"
                )
            )
            return
        if target.env is not self.env:
            self.fail(SimulationError("process yielded an event from another environment"))
            return
        self._waiting_on = target
        target.add_callback(self._resume)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        name = getattr(self._generator, "__name__", "process")
        return f"<Process {name} alive={self.is_alive}>"


class _Condition(Event):
    """Base for AnyOf/AllOf composite events."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._pending = 0
        for event in self._events:
            if event.env is not env:
                raise SimulationError("cannot combine events from different environments")
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            self._pending += 1
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        raise NotImplementedError

    def _collect(self) -> Dict[int, Any]:
        # ``processed`` (not ``triggered``): a Timeout is triggered the
        # moment it is created, but it has only *happened* once its
        # callbacks ran at its scheduled instant.
        return {
            i: e.value
            for i, e in enumerate(self._events)
            if e.processed and e.ok
        }


class AnyOf(_Condition):
    """Triggers when the first of its child events does."""

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
        else:
            self.succeed(self._collect())


class AllOf(_Condition):
    """Triggers when all child events have; value maps index -> child value."""

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed(self._collect())


class Environment:
    """The event loop: virtual clock + deterministic priority queue."""

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = initial_time
        self._queue: List[Any] = []
        self._counter = itertools.count()

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    # -- factories ------------------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator) -> Process:
        return Process(self, generator)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling -------------------------------------------------------------

    def _schedule(self, event: Event, delay: float) -> None:
        heapq.heappush(self._queue, (self._now + delay, next(self._counter), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf when the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        if not self._queue:
            raise SimulationError("no scheduled events to step through")
        time, _, event = heapq.heappop(self._queue)
        if time < self._now:
            raise SimulationError(f"time went backwards: {time} < {self._now}")
        self._now = time
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks or ():
            callback(event)
        if not event.ok and not callbacks:
            # A failed event nobody waited for would silently vanish.
            raise event.value

    def run(self, until: Optional[Any] = None) -> Any:
        """Run the simulation.

        Args:
            until: ``None`` -> run until no events remain; a number -> run
                until the clock reaches it; an :class:`Event` -> run until it
                triggers, returning its value (or raising its exception).
        """
        if isinstance(until, Event):
            stop = until
            while not stop.processed:
                if not self._queue:
                    raise SimulationError(
                        "simulation ran out of events before the awaited event fired"
                    )
                self.step()
            if not stop.ok:
                raise stop.value
            return stop.value
        if until is not None:
            deadline = float(until)
            if deadline < self._now:
                raise SimulationError(f"until={deadline} lies in the past")
            while self._queue and self._queue[0][0] <= deadline:
                self.step()
            self._now = max(self._now, deadline)
            return None
        while self._queue:
            self.step()
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Environment(now={self._now:g}, pending={len(self._queue)})"
