"""Data-plane execution on the discrete-event simulator.

:mod:`repro.services.execution` computes the streaming behaviour of a flow
graph as a closed-form dataflow recurrence.  This module runs the *same*
pipeline as actual simulated processes -- one per service, one per edge --
with :class:`~repro.sim.resources.Store` buffers carrying the units and
edge processes serialising transmissions.  Agreement between the two
executors (asserted in ``tests/sim/test_dataplane.py``) is a strong
end-to-end check on both: the analytic recurrence validates the simulation
kernel's scheduling, and the kernel validates the recurrence's modelling
assumptions.

The simulated pipeline, per data unit:

* the **source process** emits units in order, spaced by ``emit_interval``
  and its own processing delay;
* an **edge process** per flow edge takes units FIFO from its input
  buffer, holds the (serialising) channel for ``unit_size / bandwidth``,
  then delivers after the propagation latency -- new transmissions may
  start while earlier ones propagate, exactly like a pipelined link;
* a **service process** per non-source service collects one unit from
  every incoming edge buffer (all inputs must arrive), spends its
  processing delay, and forwards downstream; sinks record delivery times.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.services.execution import StreamConfig, StreamReport
from repro.services.flowgraph import ServiceFlowGraph
from repro.services.requirement import Sid
from repro.sim.engine import Environment, Event
from repro.sim.resources import Store


def simulate_stream_des(
    flow_graph: ServiceFlowGraph,
    config: StreamConfig = None,
) -> StreamReport:
    """Run the stream on the DES; same contract as
    :func:`repro.services.execution.simulate_stream`."""
    config = config or StreamConfig()
    flow_graph.validate()
    requirement = flow_graph.requirement
    if len(requirement.services()) == 1:
        # Degenerate single-service federation: no channels to simulate;
        # the closed form is the simulation.
        from repro.services.execution import simulate_stream

        return simulate_stream(flow_graph, config)
    env = Environment()
    n = config.units

    # Per edge: the buffer units wait in before transmission.
    inboxes: Dict[Tuple[Sid, Sid], Store] = {}
    # Per service: one arrival buffer per incoming edge.
    arrivals: Dict[Tuple[Sid, Sid], Store] = {}
    for edge in flow_graph.edges():
        key = edge.requirement_edge
        inboxes[key] = Store(env)
        arrivals[key] = Store(env)

    deliveries: Dict[Sid, List[float]] = {sink: [] for sink in requirement.sinks}
    done = Event(env)
    remaining_sinks = {sink: n for sink in requirement.sinks}

    def source_process():
        sid = requirement.source
        delay = config.delay_for(sid)
        for k in range(n):
            target = k * config.emit_interval
            if target > env.now:
                yield env.timeout(target - env.now)
            if delay:
                yield env.timeout(delay)
            for succ in requirement.successors(sid):
                inboxes[(sid, succ)].put(k)

    def edge_process(edge):
        key = edge.requirement_edge
        tx_time = config.unit_size / edge.quality.bandwidth
        latency = edge.quality.latency
        store = inboxes[key]
        sink_store = arrivals[key]
        while True:
            unit = yield store.get()
            yield env.timeout(tx_time)  # the channel is held for this long
            # Propagation happens off-channel: deliver after `latency`
            # without blocking the next transmission.
            deliver = Event(env)
            deliver.callbacks.append(
                lambda _e, u=unit: sink_store.put(u)
            )
            deliver.succeed(delay=latency)

    def service_process(sid):  # sflow: noqa[SFL015] -- unit-ordering assertion is a sim invariant check; escaping loudly is the point
        delay = config.delay_for(sid)
        preds = requirement.predecessors(sid)
        succs = requirement.successors(sid)
        for k in range(n):
            for pred in preds:
                unit = yield arrivals[(pred, sid)].get()
                if unit != k:
                    raise AssertionError(
                        f"{sid} expected unit {k} from {pred}, got {unit}"
                    )
            if delay:
                yield env.timeout(delay)
            if succs:
                for succ in succs:
                    inboxes[(sid, succ)].put(k)
            else:
                deliveries[sid].append(env.now)
                remaining_sinks[sid] -= 1
                if (
                    all(v == 0 for v in remaining_sinks.values())
                    and not done.triggered
                ):
                    done.succeed()

    env.process(source_process())
    for edge in flow_graph.edges():
        env.process(edge_process(edge))
    for sid in requirement.topological_order()[1:]:
        env.process(service_process(sid))

    env.run(until=done)

    delivery_tuples = {sid: tuple(times) for sid, times in deliveries.items()}
    slowest_first = max(times[0] for times in delivery_tuples.values())
    slowest_last = max(times[-1] for times in delivery_tuples.values())
    if n > 1 and slowest_last > slowest_first:
        throughput = (n - 1) / (slowest_last - slowest_first)
    else:
        throughput = math.inf
    bottleneck = flow_graph.bottleneck_bandwidth()
    predicted = (
        bottleneck / config.unit_size if math.isfinite(bottleneck) else math.inf
    )
    return StreamReport(
        units=n,
        deliveries=delivery_tuples,
        first_delivery=slowest_first,
        last_delivery=slowest_last,
        throughput=throughput,
        predicted_throughput=predicted,
    )
