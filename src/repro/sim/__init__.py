"""A small discrete-event simulation kernel.

The paper evaluates sFlow with "event-driven simulation methodology"; the
reproduction hint suggests simpy, which is not available offline, so this
package implements the subset we need from scratch (see DESIGN.md,
"Substitutions"):

* :class:`~repro.sim.engine.Environment` -- the event loop: virtual clock,
  event scheduling, ``run(until=...)``.
* :class:`~repro.sim.engine.Event` / :class:`~repro.sim.engine.Timeout` --
  one-shot triggerable events.
* :class:`~repro.sim.engine.Process` -- generator-based coroutines that
  ``yield`` events to wait on them (the simpy programming model).
* :class:`~repro.sim.channels.Mailbox` -- a FIFO message queue with blocking
  receive, the primitive under every simulated protocol endpoint.
* :class:`~repro.sim.channels.MessageNetwork` -- point-to-point delivery with
  per-message latency and counters (messages, bytes, hops), which carries
  the ``sfederate`` traffic of the distributed sFlow algorithm.
"""

from repro.sim.engine import AnyOf, AllOf, Environment, Event, Interrupt, Process, Timeout
from repro.sim.channels import Mailbox, MessageNetwork, Envelope
from repro.sim.resources import Request, Resource, Store


def __getattr__(name):
    # Lazy: repro.sim.dataplane imports the services layer, which in turn
    # imports repro.routing -> repro.sim; importing it eagerly here would
    # close that cycle during package initialisation.
    if name == "simulate_stream_des":
        from repro.sim.dataplane import simulate_stream_des

        return simulate_stream_des
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Request",
    "Resource",
    "Store",
    "simulate_stream_des",
    "AllOf",
    "AnyOf",
    "Environment",
    "Envelope",
    "Event",
    "Interrupt",
    "Mailbox",
    "MessageNetwork",
    "Process",
    "Timeout",
]
