"""sFlow: resource-efficient and agile service federation in service overlay
networks -- a full reproduction of Wang, Li & Li (IEEE ICDCS 2004).

Quickstart::

    from repro import (
        ScenarioConfig, generate_scenario, SFlowAlgorithm, optimal_flow_graph,
    )

    scenario = generate_scenario(ScenarioConfig(network_size=20, seed=1))
    sflow = SFlowAlgorithm()
    graph = sflow.solve(
        scenario.requirement,
        scenario.overlay,
        source_instance=scenario.source_instance,
    )
    print(graph.bottleneck_bandwidth(), graph.end_to_end_latency())

See ``DESIGN.md`` for the full system inventory and ``EXPERIMENTS.md`` for
the paper-vs-measured record of every reproduced figure.
"""

from repro.errors import (
    FederationError,
    RequirementError,
    SFlowError,
    SimulationError,
)
from repro.network.metrics import IDEAL, UNREACHABLE, LinkMetrics, PathQuality
from repro.network.overlay import OverlayGraph, ServiceInstance, ServiceLink
from repro.network.underlay import Underlay, UnderlayConfig, UnderlayLink
from repro.services.catalog import ServiceCatalog, ServiceType
from repro.services.requirement import RequirementClass, ServiceRequirement
from repro.services.abstract_graph import AbstractGraph
from repro.services.flowgraph import FlowEdge, ServiceFlowGraph
from repro.services.workloads import (
    Scenario,
    ScenarioConfig,
    generate_scenario,
    media_pipeline_scenario,
    random_requirement,
    travel_agency_scenario,
)
from repro.core.baseline import BaselineAlgorithm, solve_path_requirement
from repro.core.reductions import ReductionSolver, decompose
from repro.core.optimal import GlobalOptimalAlgorithm, optimal_flow_graph
from repro.core.alternatives import (
    FixedAlgorithm,
    RandomAlgorithm,
    ServicePathAlgorithm,
)
from repro.core.sflow import (
    FederationOutcome,
    RecoveryEvent,
    SFlowAlgorithm,
    SFlowConfig,
    SFlowResult,
)
from repro.core.repair import RepairReport, diagnose, repair_flow_graph
from repro.core.monitor import MonitorConfig, MonitorReport, MonitoredFederation
from repro.core.multicast import ServiceTreeAlgorithm
from repro.core.types import FederationAlgorithm, FederationResult, timed_solve
from repro.core.degradation import DegradationRecord, SessionState
from repro.core.detector import (
    BreakerConfig,
    CircuitBreaker,
    DetectorConfig,
    PhiAccrualDetector,
    RetryPolicy,
)
from repro.network.failures import (
    ChannelFault,
    ChaosPlan,
    CrashEvent,
    CrashSchedule,
    FailureInjector,
    FailurePlan,
    GrayFaultPlan,
    LinkDegradationRamp,
    LinkFlap,
    PartitionEvent,
    StragglerNode,
    degrade_links,
    fail_instances,
    fail_links,
    revive_links,
)
from repro.services.execution import StreamConfig, StreamReport, simulate_stream
from repro.services.serialization import load_json, save_json

__version__ = "1.0.0"

__all__ = [
    "AbstractGraph",
    "BaselineAlgorithm",
    "BreakerConfig",
    "ChannelFault",
    "ChaosPlan",
    "CircuitBreaker",
    "CrashEvent",
    "CrashSchedule",
    "DegradationRecord",
    "DetectorConfig",
    "FailureInjector",
    "FailurePlan",
    "FederationOutcome",
    "GrayFaultPlan",
    "LinkDegradationRamp",
    "LinkFlap",
    "PartitionEvent",
    "PhiAccrualDetector",
    "RecoveryEvent",
    "RetryPolicy",
    "MonitorConfig",
    "MonitorReport",
    "MonitoredFederation",
    "ServiceTreeAlgorithm",
    "SessionState",
    "StragglerNode",
    "RepairReport",
    "StreamConfig",
    "StreamReport",
    "degrade_links",
    "diagnose",
    "fail_instances",
    "fail_links",
    "revive_links",
    "load_json",
    "repair_flow_graph",
    "save_json",
    "simulate_stream",
    "FederationAlgorithm",
    "FederationError",
    "FederationResult",
    "FixedAlgorithm",
    "FlowEdge",
    "GlobalOptimalAlgorithm",
    "IDEAL",
    "LinkMetrics",
    "OverlayGraph",
    "PathQuality",
    "RandomAlgorithm",
    "ReductionSolver",
    "RequirementClass",
    "RequirementError",
    "SFlowAlgorithm",
    "SFlowConfig",
    "SFlowError",
    "SFlowResult",
    "Scenario",
    "ScenarioConfig",
    "ServiceCatalog",
    "ServiceFlowGraph",
    "ServiceInstance",
    "ServiceLink",
    "ServicePathAlgorithm",
    "ServiceRequirement",
    "ServiceType",
    "SimulationError",
    "UNREACHABLE",
    "Underlay",
    "UnderlayConfig",
    "UnderlayLink",
    "decompose",
    "generate_scenario",
    "media_pipeline_scenario",
    "optimal_flow_graph",
    "random_requirement",
    "solve_path_requirement",
    "timed_solve",
    "travel_agency_scenario",
    "__version__",
]
