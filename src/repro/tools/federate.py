"""Federate a JSON scenario from the command line.

Usage::

    python -m repro.tools.federate scenario.json --algorithm sflow \
        [--out graph.json] [--stream 100] [--seed 0] [--horizon 2]

Algorithms: ``sflow`` (default), ``reduction`` (centralised exact),
``optimal`` (exhaustive benchmark), ``baseline`` (paths only), ``fixed``,
``random``, ``service_path``, ``service_tree``.

Prints the chosen assignment and quality; ``--out`` additionally writes
the flow graph as JSON, and ``--stream N`` pushes N data units through it
to report measured throughput.
"""

from __future__ import annotations

import argparse
import random
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.core.alternatives import (
    FixedAlgorithm,
    RandomAlgorithm,
    ServicePathAlgorithm,
)
from repro.core.baseline import BaselineAlgorithm
from repro.core.multicast import ServiceTreeAlgorithm
from repro.core.optimal import GlobalOptimalAlgorithm
from repro.core.reductions import ReductionSolver
from repro.core.sflow import SFlowAlgorithm, SFlowConfig
from repro.errors import SFlowError
from repro.services.execution import StreamConfig, simulate_stream
from repro.services.serialization import load_json, save_json
from repro.services.workloads import Scenario


def make_algorithm(name: str, horizon: int):
    """Instantiate a federation algorithm by its CLI name."""
    factories = {
        "sflow": lambda: SFlowAlgorithm(SFlowConfig(horizon=horizon)),
        "reduction": ReductionSolver,
        "optimal": GlobalOptimalAlgorithm,
        "baseline": BaselineAlgorithm,
        "fixed": FixedAlgorithm,
        "random": RandomAlgorithm,
        "service_path": ServicePathAlgorithm,
        "service_tree": ServiceTreeAlgorithm,
    }
    try:
        return factories[name]()
    except KeyError:
        raise SFlowError(f"unknown algorithm {name!r}") from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Federate a serialized sFlow scenario."
    )
    parser.add_argument("scenario", type=Path, help="scenario JSON file")
    parser.add_argument(
        "--algorithm",
        default="sflow",
        choices=[
            "sflow", "reduction", "optimal", "baseline",
            "fixed", "random", "service_path", "service_tree",
        ],
    )
    parser.add_argument("--out", type=Path, default=None, help="flow-graph JSON")
    parser.add_argument("--seed", type=int, default=0, help="rng for random algorithm")
    parser.add_argument("--horizon", type=int, default=2, help="sFlow knowledge radius")
    parser.add_argument(
        "--stream",
        type=int,
        default=0,
        metavar="UNITS",
        help="also stream N data units and report measured throughput",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    scenario = load_json(args.scenario)
    if not isinstance(scenario, Scenario):
        print(f"error: {args.scenario} does not contain a scenario", file=sys.stderr)
        return 2
    algorithm = make_algorithm(args.algorithm, args.horizon)
    print(scenario.describe())
    graph = algorithm.solve(
        scenario.requirement,
        scenario.overlay,
        source_instance=scenario.source_instance,
        rng=random.Random(args.seed),
    )
    print(f"\n{args.algorithm} federation:")
    for sid in scenario.requirement.services():
        inst = graph.instance_for(sid)
        print(f"  {sid:<14} -> {inst if inst is not None else '(unassigned)'}")
    print(f"  bottleneck bandwidth: {graph.bottleneck_bandwidth():.3f}")
    print(f"  end-to-end latency  : {graph.end_to_end_latency():.3f}")
    if args.out is not None:
        path = save_json(graph, args.out)
        print(f"  flow graph written to {path}")
    if args.stream > 0:
        if not graph.is_complete():
            print("  (skipping stream: flow graph is incomplete)")
        else:
            report = simulate_stream(graph, StreamConfig(units=args.stream))
            print(
                f"  streamed {args.stream} units: throughput "
                f"{report.throughput:.3f} (bottleneck predicts "
                f"{report.predicted_throughput:.3f}), first delivery at "
                f"{report.first_delivery:.3f}"
            )
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI shim
    sys.exit(main())
