"""Render a federation flight recording from the command line.

Usage::

    python -m repro.tools.trace run.jsonl [--session N] [--metrics-only]
        [--no-metrics]

Reads a JSONL recording written by :mod:`repro.obs.recorder` and prints,
per session (root span): the sim-time window, the outcome attributes the
protocol attached (messages, failovers, recovery latency, ...), and a
merged timeline of child spans and point events in time order.  After the
sessions comes the metric summary: every counter with its per-label
totals, every histogram with count/mean.

The recording is self-describing, so this tool never needs the process
that produced it -- CI records a chaos run, uploads the JSONL, and this
renderer is the replay.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.recorder import Recording, load_recording


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def _fmt_attrs(attrs: Dict[str, Any], *, skip: Sequence[str] = ()) -> str:
    parts = [
        f"{key}={_fmt(value)}"
        for key, value in attrs.items()
        if key not in skip and value not in (None, "")
    ]
    return " ".join(parts)


def render_session(
    recording: Recording, session: Dict[str, Any], ordinal: int
) -> List[str]:
    """The per-session block: header, attrs, merged sim-time timeline."""
    trace = session.get("trace")
    start = session.get("start") or 0.0
    end = session.get("end") or start
    lines = [
        f"session {ordinal}: {session.get('name')} "
        f"[{session.get('clock')}] {start:g} -> {end:g} "
        f"(duration {end - start:g})"
    ]
    attrs = _fmt_attrs(session.get("attrs") or {})
    if attrs:
        lines.append(f"  {attrs}")
    rows: List[tuple] = []
    root_id = session.get("span")
    for span in recording.spans_of(trace):
        if span.get("span") == root_id:
            continue
        s, e = span.get("start") or 0.0, span.get("end") or 0.0
        rows.append(
            (
                s,
                0,
                f"span  {span.get('name')} ({e - s:g}) "
                f"{_fmt_attrs(span.get('attrs') or {})}".rstrip(),
            )
        )
    for seq, event in enumerate(recording.events_of(trace)):
        rows.append(
            (
                event.get("time") or 0.0,
                1 + seq,  # events after spans at equal times, stream order
                f"event {event.get('name')} "
                f"{_fmt_attrs(event.get('attrs') or {})}".rstrip(),
            )
        )
    if rows:
        lines.append("  timeline:")
        for when, _, text in sorted(rows, key=lambda r: (r[0], r[1])):
            lines.append(f"    {when:>10g}  {text}")
    return lines


def render_metrics(recording: Recording) -> List[str]:
    """The metric summary block: counters with totals, histogram stats."""
    if not recording.metrics:
        return ["metrics: (no snapshot in recording)"]
    lines = ["metrics:"]
    for name in sorted(recording.metrics):
        record = recording.metrics[name]
        kind = record.get("kind")
        values = record.get("values", {})
        if kind == "counter":
            total = sum(values.values())
            lines.append(f"  counter   {name:<28} total={_fmt(total)}")
            for labels in sorted(values):
                if labels:
                    lines.append(
                        f"            {'':<28} {labels}: {_fmt(values[labels])}"
                    )
        elif kind == "gauge":
            for labels in sorted(values):
                suffix = f" {labels}" if labels else ""
                lines.append(
                    f"  gauge     {name:<28} {_fmt(values[labels])}{suffix}"
                )
        elif kind == "histogram":
            for labels in sorted(values):
                series = values[labels]
                count = series.get("count", 0)
                mean = series.get("sum", 0.0) / count if count else 0.0
                suffix = f" {labels}" if labels else ""
                lines.append(
                    f"  histogram {name:<28} count={count} "
                    f"mean={mean:g}{suffix}"
                )
    return lines


def render(
    recording: Recording,
    *,
    session: Optional[int] = None,
    metrics: bool = True,
    metrics_only: bool = False,
) -> str:
    """The full report as one printable string."""
    lines: List[str] = []
    meta = recording.meta
    header = f"flight recording ({meta.get('format', 'unknown format')})"
    extra = _fmt_attrs(meta, skip=("type", "format"))
    if extra:
        header += f" {extra}"
    lines.append(header)
    summary = recording.summary
    lines.append(
        f"sessions: {len(recording.sessions())}   "
        f"spans: {summary.get('spans', len(recording.spans))}   "
        f"events: {summary.get('events', len(recording.events))}"
    )
    if not metrics_only:
        for ordinal, row in enumerate(recording.sessions(), start=1):
            if session is not None and ordinal != session:
                continue
            lines.append("")
            lines.extend(render_session(recording, row, ordinal))
    if metrics or metrics_only:
        lines.append("")
        lines.extend(render_metrics(recording))
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Render an sFlow flight recording (JSONL)."
    )
    parser.add_argument("recording", type=Path, help="recording JSONL file")
    parser.add_argument(
        "--session",
        type=int,
        default=None,
        metavar="N",
        help="only render the Nth session (1-based, recording order)",
    )
    parser.add_argument(
        "--metrics-only",
        action="store_true",
        help="skip sessions, print just the metric summary",
    )
    parser.add_argument(
        "--no-metrics",
        action="store_true",
        help="skip the metric summary",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if not args.recording.exists():
        print(f"error: no such recording: {args.recording}", file=sys.stderr)
        return 2
    recording = load_recording(args.recording)
    print(
        render(
            recording,
            session=args.session,
            metrics=not args.no_metrics,
            metrics_only=args.metrics_only,
        )
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI shim
    sys.exit(main())
