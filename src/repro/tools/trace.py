"""Render or export a federation flight recording from the command line.

Usage::

    python -m repro.tools.trace run.jsonl [--session N] [--metrics-only]
        [--no-metrics]
    python -m repro.tools.trace export run.jsonl [--prom [PATH]]
        [--chrome-trace [PATH]]

Reads a JSONL recording written by :mod:`repro.obs.recorder` and prints,
per session (root span): the sim-time window, the outcome attributes the
protocol attached (messages, failovers, recovery latency, ...), and a
merged timeline of child spans and point events in time order.  After the
sessions comes the metric summary: every counter with its per-label
totals, every histogram with count/mean.

The ``export`` subcommand converts a recording for external tooling
instead of rendering it: ``--prom`` writes the recording's metric
snapshot in the Prometheus text exposition format, ``--chrome-trace``
writes spans/events/series as Chrome trace-event JSON (load it at
``ui.perfetto.dev``).  Omitting the PATH writes to stdout.

The recording is self-describing, so this tool never needs the process
that produced it -- CI records a chaos run, uploads the JSONL, and this
renderer is the replay.  Truncated or corrupt lines (a run killed
mid-write) are skipped with a warning on stderr, never a traceback.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.export import chrome_trace, prometheus_exposition
from repro.obs.recorder import Recording, load_recording


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def _fmt_attrs(attrs: Dict[str, Any], *, skip: Sequence[str] = ()) -> str:
    parts = [
        f"{key}={_fmt(value)}"
        for key, value in attrs.items()
        if key not in skip and value not in (None, "")
    ]
    return " ".join(parts)


def render_session(
    recording: Recording, session: Dict[str, Any], ordinal: int
) -> List[str]:
    """The per-session block: header, attrs, merged sim-time timeline."""
    trace = session.get("trace")
    start = session.get("start") or 0.0
    end = session.get("end") or start
    lines = [
        f"session {ordinal}: {session.get('name')} "
        f"[{session.get('clock')}] {start:g} -> {end:g} "
        f"(duration {end - start:g})"
    ]
    attrs = _fmt_attrs(session.get("attrs") or {})
    if attrs:
        lines.append(f"  {attrs}")
    rows: List[tuple] = []
    root_id = session.get("span")
    for span in recording.spans_of(trace):
        if span.get("span") == root_id:
            continue
        s, e = span.get("start") or 0.0, span.get("end") or 0.0
        rows.append(
            (
                s,
                0,
                f"span  {span.get('name')} ({e - s:g}) "
                f"{_fmt_attrs(span.get('attrs') or {})}".rstrip(),
            )
        )
    for seq, event in enumerate(recording.events_of(trace)):
        rows.append(
            (
                event.get("time") or 0.0,
                1 + seq,  # events after spans at equal times, stream order
                f"event {event.get('name')} "
                f"{_fmt_attrs(event.get('attrs') or {})}".rstrip(),
            )
        )
    if rows:
        lines.append("  timeline:")
        for when, _, text in sorted(rows, key=lambda r: (r[0], r[1])):
            lines.append(f"    {when:>10g}  {text}")
    return lines


def render_metrics(recording: Recording) -> List[str]:
    """The metric summary block: counters with totals, histogram stats."""
    if not recording.metrics:
        return ["metrics: (no snapshot in recording)"]
    lines = ["metrics:"]
    for name in sorted(recording.metrics):
        record = recording.metrics[name]
        kind = record.get("kind")
        values = record.get("values", {})
        if kind == "counter":
            total = sum(values.values())
            lines.append(f"  counter   {name:<28} total={_fmt(total)}")
            for labels in sorted(values):
                if labels:
                    lines.append(
                        f"            {'':<28} {labels}: {_fmt(values[labels])}"
                    )
        elif kind == "gauge":
            for labels in sorted(values):
                suffix = f" {labels}" if labels else ""
                lines.append(
                    f"  gauge     {name:<28} {_fmt(values[labels])}{suffix}"
                )
        elif kind == "histogram":
            for labels in sorted(values):
                series = values[labels]
                count = series.get("count", 0)
                mean = series.get("sum", 0.0) / count if count else 0.0
                suffix = f" {labels}" if labels else ""
                lines.append(
                    f"  histogram {name:<28} count={count} "
                    f"mean={mean:g}{suffix}"
                )
    return lines


def render(
    recording: Recording,
    *,
    session: Optional[int] = None,
    metrics: bool = True,
    metrics_only: bool = False,
) -> str:
    """The full report as one printable string."""
    lines: List[str] = []
    meta = recording.meta
    header = f"flight recording ({meta.get('format', 'unknown format')})"
    extra = _fmt_attrs(meta, skip=("type", "format"))
    if extra:
        header += f" {extra}"
    lines.append(header)
    summary = recording.summary
    lines.append(
        f"sessions: {len(recording.sessions())}   "
        f"spans: {summary.get('spans', len(recording.spans))}   "
        f"events: {summary.get('events', len(recording.events))}   "
        f"malformed-lines: {len(recording.errors)}"
    )
    if not metrics_only:
        for ordinal, row in enumerate(recording.sessions(), start=1):
            if session is not None and ordinal != session:
                continue
            lines.append("")
            lines.extend(render_session(recording, row, ordinal))
    if metrics or metrics_only:
        lines.append("")
        lines.extend(render_metrics(recording))
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Render an sFlow flight recording (JSONL)."
    )
    parser.add_argument("recording", type=Path, help="recording JSONL file")
    parser.add_argument(
        "--session",
        type=int,
        default=None,
        metavar="N",
        help="only render the Nth session (1-based, recording order)",
    )
    parser.add_argument(
        "--metrics-only",
        action="store_true",
        help="skip sessions, print just the metric summary",
    )
    parser.add_argument(
        "--no-metrics",
        action="store_true",
        help="skip the metric summary",
    )
    return parser


def build_export_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.trace export",
        description="Export an sFlow flight recording for external tools.",
    )
    parser.add_argument("recording", type=Path, help="recording JSONL file")
    parser.add_argument(
        "--prom",
        nargs="?",
        const="-",
        default=None,
        metavar="PATH",
        help="write the metric snapshot as Prometheus text exposition "
        "(to PATH, or stdout when omitted)",
    )
    parser.add_argument(
        "--chrome-trace",
        dest="chrome_trace",
        nargs="?",
        const="-",
        default=None,
        metavar="PATH",
        help="write spans/events/series as Chrome trace-event JSON "
        "(to PATH, or stdout when omitted)",
    )
    return parser


def _load_checked(path: Path) -> Optional[Recording]:
    """Load a recording, surfacing skipped lines as stderr warnings."""
    if not path.exists():
        print(f"error: no such recording: {path}", file=sys.stderr)
        return None
    recording = load_recording(path)
    for lineno, message in recording.errors:
        print(
            f"warning: {path}:{lineno}: skipped {message}", file=sys.stderr
        )
    return recording


def _write_output(text: str, target: str) -> None:
    if target == "-":
        sys.stdout.write(text)
    else:
        Path(target).write_text(text, encoding="utf-8")
        print(f"wrote {target}", file=sys.stderr)


def export_main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_export_parser().parse_args(argv)
    if args.prom is None and args.chrome_trace is None:
        print(
            "error: nothing to export (pass --prom and/or --chrome-trace)",
            file=sys.stderr,
        )
        return 2
    recording = _load_checked(args.recording)
    if recording is None:
        return 2
    if args.prom is not None:
        _write_output(prometheus_exposition(recording.metrics), args.prom)
    if args.chrome_trace is not None:
        payload = chrome_trace(recording)
        _write_output(
            json.dumps(payload, separators=(",", ":")) + "\n",
            args.chrome_trace,
        )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "export":
        return export_main(argv[1:])
    args = build_parser().parse_args(argv)
    recording = _load_checked(args.recording)
    if recording is None:
        return 2
    print(
        render(
            recording,
            session=args.session,
            metrics=not args.no_metrics,
            metrics_only=args.metrics_only,
        )
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI shim
    sys.exit(main())
