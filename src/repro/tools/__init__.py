"""Command-line tools for working with scenarios and federations.

* ``python -m repro.tools.federate`` -- federate a JSON scenario file with
  any of the library's algorithms and write the flow graph back as JSON.
* ``python -m repro.tools.make_scenario`` -- generate a seeded scenario
  file for later federation (the producer half of the pipeline).

Together they make the library scriptable without writing Python::

    python -m repro.tools.make_scenario --size 20 --services 6 --seed 1 \
        --out scenario.json
    python -m repro.tools.federate scenario.json --algorithm sflow \
        --out graph.json --stream 100
"""
