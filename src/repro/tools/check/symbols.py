"""Project-wide symbol table: per-module function summaries.

The whole-program pass never keeps ASTs around.  Each file is distilled
once into a :class:`ModuleSummary` -- functions, the calls they make
(resolved through the import maps), their taint-relevant facts (direct
wall-clock/RNG/tree calls, graph-parameter mutations, unprotected
raises, spawned DES handlers) -- and everything downstream
(:mod:`.callgraph`, :mod:`.dataflow`, the SFL013-SFL015 rules) works on
these summaries.  Summaries are plain dataclasses of plain values, so
they round-trip through JSON: that is what makes the content-hash cache
(:mod:`.cache`) and the multiprocessing fan-out possible.

Scope discipline: a function's summary covers its *own* statements only
-- nested ``def``/``class`` bodies get their own summaries (qualified
``module.outer.inner``), mirroring how the per-file span/retry rules
scope.  Module-level statements are collected under the pseudo-function
``<module>``.
"""

from __future__ import annotations

import ast
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Set, Tuple

from repro.tools.check.base import FileContext
from repro.tools.check.vocab import (
    AMBIENT_RANDOM,
    FRESH_GRAPH_CALLS,
    GRAPH_MUTATORS,
    INVALIDATORS,
    TREE_FUNCTIONS,
    WALL_CLOCK_CALLS,
)

#: Schema stamp embedded in cached summaries; bump on shape changes.
SUMMARY_SCHEMA = 1

MODULE_BODY = "<module>"


@dataclass(frozen=True)
class CallSite:
    """One call made by a function, resolved as far as imports allow.

    ``resolved`` is the dotted name through the file's import maps
    (``repro.obs.clock.Stopwatch``), or the bare local name for
    module-local calls, or ``None`` for calls on computed expressions.
    ``receiver`` keeps the dotted receiver for method calls
    (``self.env`` for ``self.env.process(...)``).  ``arg_names`` records
    plain-name / dotted-attribute arguments positionally (``None`` for
    anything more complex) so argument-flow rules can match parameters.
    """

    resolved: Optional[str]
    terminal: str
    line: int
    col: int
    receiver: Optional[str]
    arg_names: Tuple[Optional[str], ...]
    in_try: bool


@dataclass(frozen=True)
class RaiseSite:
    """An explicit ``raise <Name>(...)`` and whether a ``try`` shields it."""

    exception: str
    line: int
    protected: bool


@dataclass
class FunctionSummary:
    """Taint-relevant distillation of one function body."""

    qname: str
    name: str
    module: str
    path: str
    line: int
    col: int
    params: List[str] = field(default_factory=list)
    calls: List[CallSite] = field(default_factory=list)
    wall_clock_calls: List[Tuple[str, int, int]] = field(default_factory=list)
    ambient_rng_calls: List[Tuple[str, int, int]] = field(default_factory=list)
    raw_tree_calls: List[Tuple[str, int, int]] = field(default_factory=list)
    raises: List[RaiseSite] = field(default_factory=list)
    #: parameter name -> mutator call sites (``p.add_link`` with ``p`` a param)
    mutated_params: Dict[str, List[Tuple[str, int, int]]] = field(
        default_factory=dict
    )
    #: locals assigned from fresh-graph constructors (SFL004's exemption)
    fresh_names: List[str] = field(default_factory=list)
    has_invalidator: bool = False
    is_generator: bool = False
    #: resolved targets of ``<env>.process(target(...))`` spawns
    spawned_handlers: List[Tuple[str, int, int]] = field(default_factory=list)


@dataclass
class ModuleSummary:
    """Everything the cross-module pass needs to know about one file."""

    module: str
    path: str
    #: modules this file imports (dotted), for the reverse-dependency closure
    imports: List[str] = field(default_factory=list)
    functions: Dict[str, FunctionSummary] = field(default_factory=dict)
    #: line -> suppressed codes (``# sflow: noqa[...]``), for project rules
    suppressions: Dict[int, List[str]] = field(default_factory=dict)

    def in_package(self, *prefixes: str) -> bool:
        return any(
            self.module == p or self.module.startswith(p + ".") for p in prefixes
        )

    def as_dict(self) -> Dict[str, Any]:
        payload = asdict(self)
        payload["schema"] = SUMMARY_SCHEMA
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ModuleSummary":
        if payload.get("schema") != SUMMARY_SCHEMA:
            raise ValueError("summary schema mismatch")
        functions: Dict[str, FunctionSummary] = {}
        for qname, raw in payload["functions"].items():
            fn = FunctionSummary(
                qname=raw["qname"],
                name=raw["name"],
                module=raw["module"],
                path=raw["path"],
                line=raw["line"],
                col=raw["col"],
                params=list(raw["params"]),
                calls=[CallSite(
                    resolved=c["resolved"],
                    terminal=c["terminal"],
                    line=c["line"],
                    col=c["col"],
                    receiver=c["receiver"],
                    arg_names=tuple(c["arg_names"]),
                    in_try=c["in_try"],
                ) for c in raw["calls"]],
                wall_clock_calls=[tuple(t) for t in raw["wall_clock_calls"]],
                ambient_rng_calls=[tuple(t) for t in raw["ambient_rng_calls"]],
                raw_tree_calls=[tuple(t) for t in raw["raw_tree_calls"]],
                raises=[RaiseSite(**r) for r in raw["raises"]],
                mutated_params={
                    k: [tuple(t) for t in v]
                    for k, v in raw["mutated_params"].items()
                },
                fresh_names=list(raw["fresh_names"]),
                has_invalidator=raw["has_invalidator"],
                is_generator=raw["is_generator"],
                spawned_handlers=[tuple(t) for t in raw["spawned_handlers"]],
            )
            functions[qname] = fn
        return cls(
            module=payload["module"],
            path=payload["path"],
            imports=list(payload["imports"]),
            functions=functions,
            suppressions={
                int(k): list(v) for k, v in payload["suppressions"].items()
            },
        )


def _dotted_expr(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for plain name/attribute chains, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _FunctionCollector:
    """Walks one function's own scope, accumulating its summary facts."""

    def __init__(self, ctx: FileContext, summary: FunctionSummary) -> None:
        self.ctx = ctx
        self.summary = summary

    def collect(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            self._visit(stmt, in_try=False)

    def _visit(self, node: ast.AST, in_try: bool) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes are summarised separately
        if isinstance(node, ast.Try):
            shields = bool(node.handlers)
            for child in node.body:
                self._visit(child, in_try or shields)
            # exceptions in handlers / orelse / finally escape this try
            for handler in node.handlers:
                for child in handler.body:
                    self._visit(child, in_try)
            for child in node.orelse + node.finalbody:
                self._visit(child, in_try)
            return
        if isinstance(node, ast.Raise):
            self._record_raise(node, in_try)
        elif isinstance(node, ast.Call):
            self._record_call(node, in_try)
        elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            self._record_fresh(node)
        elif isinstance(node, (ast.Yield, ast.YieldFrom)):
            self.summary.is_generator = True
        for child in ast.iter_child_nodes(node):
            self._visit(child, in_try)

    def _record_fresh(self, node: ast.Assign) -> None:
        callee = node.value.func  # type: ignore[union-attr]
        callee_name = (
            callee.id if isinstance(callee, ast.Name)
            else callee.attr if isinstance(callee, ast.Attribute)
            else None
        )
        if callee_name in FRESH_GRAPH_CALLS:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    if target.id not in self.summary.fresh_names:
                        self.summary.fresh_names.append(target.id)

    def _record_raise(self, node: ast.Raise, in_try: bool) -> None:
        exc = node.exc
        if exc is None:
            return  # bare re-raise: the exception originated elsewhere
        if isinstance(exc, ast.Call):
            exc = exc.func
        name = _dotted_expr(exc)
        if name is None:
            return
        self.summary.raises.append(
            RaiseSite(
                exception=name.rsplit(".", 1)[-1],
                line=node.lineno,
                protected=in_try,
            )
        )

    def _record_call(self, node: ast.Call, in_try: bool) -> None:
        s = self.summary
        resolved = self.ctx.qualified_call_name(node.func)
        terminal = (
            node.func.attr if isinstance(node.func, ast.Attribute)
            else node.func.id if isinstance(node.func, ast.Name)
            else None
        )
        if terminal is None:
            return
        receiver = (
            _dotted_expr(node.func.value)
            if isinstance(node.func, ast.Attribute)
            else None
        )
        loc = (node.lineno, node.col_offset)
        # taint sources, mirroring the per-file rules' matching
        if resolved in WALL_CLOCK_CALLS:
            s.wall_clock_calls.append((resolved, *loc))
        if resolved in AMBIENT_RANDOM or resolved == "random.SystemRandom":
            s.ambient_rng_calls.append((resolved, *loc))
        elif resolved == "random.Random" and not node.args and not node.keywords:
            s.ambient_rng_calls.append((resolved, *loc))
        if terminal in TREE_FUNCTIONS:
            s.raw_tree_calls.append((terminal, *loc))
        # graph-epoch facts
        if terminal in INVALIDATORS:
            s.has_invalidator = True
        if (
            terminal in GRAPH_MUTATORS
            and receiver is not None
            and receiver in s.params
        ):
            s.mutated_params.setdefault(receiver, []).append((terminal, *loc))
        # DES handler spawns: <env>.process(target(...))
        if (
            terminal == "process"
            and receiver is not None
            and (receiver == "env" or receiver.endswith(".env") or receiver == "self")
            and len(node.args) == 1
            and isinstance(node.args[0], ast.Call)
        ):
            target = self.ctx.qualified_call_name(node.args[0].func)
            if target is None:
                target = _dotted_expr(node.args[0].func)
            if target is not None:
                s.spawned_handlers.append((target, *loc))
        arg_names = tuple(_dotted_expr(a) for a in node.args)
        s.calls.append(
            CallSite(
                resolved=resolved,
                terminal=terminal,
                line=node.lineno,
                col=node.col_offset,
                receiver=receiver,
                arg_names=arg_names,
                in_try=in_try,
            )
        )


def summarize_module(
    ctx: FileContext, suppressions: Mapping[int, Set[str]]
) -> ModuleSummary:
    """Distil one parsed file into its :class:`ModuleSummary`."""
    imports: Set[str] = set(ctx.module_aliases.values())
    for origin in ctx.imported_names.values():
        imports.add(origin.rsplit(".", 1)[0])
    summary = ModuleSummary(
        module=ctx.module,
        path=ctx.path,
        imports=sorted(imports),
        suppressions={
            line: sorted(codes) for line, codes in suppressions.items()
        },
    )

    def visit_scope(body: List[ast.stmt], scope: Tuple[str, ...]) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qname = ".".join((ctx.module,) + scope + (stmt.name,))
                fn = FunctionSummary(
                    qname=qname,
                    name=stmt.name,
                    module=ctx.module,
                    path=ctx.path,
                    line=stmt.lineno,
                    col=stmt.col_offset,
                    params=[a.arg for a in (
                        stmt.args.posonlyargs + stmt.args.args
                    )],
                )
                _FunctionCollector(ctx, fn).collect(stmt.body)
                summary.functions[qname] = fn
                visit_scope(stmt.body, scope + (stmt.name,))
            elif isinstance(stmt, ast.ClassDef):
                visit_scope(stmt.body, scope + (stmt.name,))
            else:
                # module-level (or class-level) loose statements
                if not scope:
                    module_fn = summary.functions.setdefault(
                        f"{ctx.module}.{MODULE_BODY}",
                        FunctionSummary(
                            qname=f"{ctx.module}.{MODULE_BODY}",
                            name=MODULE_BODY,
                            module=ctx.module,
                            path=ctx.path,
                            line=1,
                            col=0,
                        ),
                    )
                    _FunctionCollector(ctx, module_fn).collect([stmt])

    visit_scope(ctx.tree.body, ())
    return summary
