"""Content-hash-keyed incremental analysis cache + parallel fan-out.

One JSON file (``cache.json`` under the cache directory) maps each
analysed path to the sha256 of its content plus the two per-module
artifacts the engine needs: the :class:`~repro.tools.check.symbols.
ModuleSummary` (feeding the whole-program pass) and the *unfiltered*
per-file findings (SFL000-SFL012, post-``noqa`` but pre-``--select``/
``--ignore``, so one cache serves every CLI filter combination).

A warm run therefore re-parses only the modules whose content hash
changed; everything else is replayed from the cache bit-identically.
The interprocedural phase always re-runs over the (cheap, in-memory)
summaries -- that is what keeps cross-module findings correct for the
reverse-dependency closure of an edit without tracking per-rule
dependencies.  The cache key also folds in the engine schema and the
registered rule codes, so upgrading ``sflow-check`` invalidates stale
caches wholesale instead of mixing findings from two rule sets.

The miss set can be analysed by a ``multiprocessing`` pool
(:func:`analyze_files`); results are collected in submission order, so
parallel runs are bit-identical to serial ones.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.tools.check.base import Violation
from repro.tools.check.symbols import ModuleSummary

#: Bump to invalidate every cache written by older engine layouts.
CACHE_SCHEMA = 1

CACHE_FILENAME = "cache.json"


def content_hash(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


@dataclass
class CacheEntry:
    """Everything cached for one analysed file."""

    hash: str
    summary: ModuleSummary
    findings: List[Violation]

    def as_dict(self) -> Dict[str, object]:
        return {
            "hash": self.hash,
            "summary": self.summary.as_dict(),
            "findings": [v.as_dict() for v in self.findings],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "CacheEntry":
        return cls(
            hash=str(payload["hash"]),
            summary=ModuleSummary.from_dict(payload["summary"]),  # type: ignore[arg-type]
            findings=[
                Violation(
                    path=str(v["path"]),
                    line=int(v["line"]),
                    col=int(v["col"]) - 1,  # as_dict renders 1-based columns
                    code=str(v["code"]),
                    message=str(v["message"]),
                )
                for v in payload["findings"]  # type: ignore[union-attr]
            ],
        )


@dataclass
class CacheStats:
    """Counters surfaced via ``--stats`` and the benchmark record."""

    files: int = 0
    hits: int = 0
    misses: int = 0
    changed_modules: List[str] = field(default_factory=list)
    reverse_closure: List[str] = field(default_factory=list)
    workers: int = 1

    def as_dict(self) -> Dict[str, object]:
        return {
            "files": self.files,
            "hits": self.hits,
            "misses": self.misses,
            "changed_modules": list(self.changed_modules),
            "reverse_closure": list(self.reverse_closure),
            "workers": self.workers,
        }


class AnalysisCache:
    """The on-disk cache: load on construction, :meth:`save` after a run."""

    def __init__(self, directory: Path, rule_signature: Sequence[str]) -> None:
        self.directory = directory
        self.path = directory / CACHE_FILENAME
        self.rule_signature = list(rule_signature)
        self.entries: Dict[str, CacheEntry] = {}
        self._load()

    def _load(self) -> None:
        if not self.path.exists():
            return
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (ValueError, OSError):
            return  # corrupt cache == cold start
        if (
            payload.get("schema") != CACHE_SCHEMA
            or payload.get("rules") != self.rule_signature
        ):
            return  # engine or rule set changed; discard wholesale
        for key, raw in payload.get("entries", {}).items():
            try:
                self.entries[key] = CacheEntry.from_dict(raw)
            except (KeyError, ValueError, TypeError):
                continue  # skip unreadable entries, re-analyse those files

    def lookup(self, path: str, digest: str) -> Optional[CacheEntry]:
        entry = self.entries.get(path)
        if entry is not None and entry.hash == digest:
            return entry
        return None

    def store(self, path: str, entry: CacheEntry) -> None:
        self.entries[path] = entry

    def prune(self, live_paths: Sequence[str]) -> None:
        """Drop entries for files no longer part of the run."""
        live = set(live_paths)
        for stale in [p for p in self.entries if p not in live]:
            del self.entries[stale]

    def save(self) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": CACHE_SCHEMA,
            "rules": self.rule_signature,
            "entries": {
                path: entry.as_dict()
                for path, entry in sorted(self.entries.items())
            },
        }
        tmp = self.path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload) + "\n", encoding="utf-8")
        os.replace(tmp, self.path)


# ---------------------------------------------------------------------------
# file-level fan-out
# ---------------------------------------------------------------------------


def _analyze_one(path_str: str) -> Tuple[str, str, Dict[str, object], Optional[str]]:
    """Worker body: analyse one file, return picklable artifacts.

    Returns ``(path, digest, entry payload, error)`` where exactly one of
    payload/error is meaningful.  Imported lazily inside the function so a
    spawned worker only pays for what it uses.
    """
    from repro.tools.check.engine import analyze_file_payload

    return analyze_file_payload(path_str)


def analyze_files(
    paths: Sequence[str], jobs: int
) -> List[Tuple[str, str, Dict[str, object], Optional[str]]]:
    """Analyse ``paths``, fanning out across ``jobs`` worker processes.

    ``jobs <= 1`` (or a tiny batch) runs serially in-process.  Results
    come back in input order either way, keeping warm/cold/parallel runs
    bit-identical.
    """
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    jobs = min(jobs, len(paths)) if paths else 1
    if jobs <= 1 or len(paths) < 4:
        return [_analyze_one(p) for p in paths]
    ctx = multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods() else None
    )
    with ctx.Pool(processes=jobs) as pool:
        return pool.map(_analyze_one, paths, chunksize=max(1, len(paths) // (jobs * 4)))
