"""Import/call graph over the project's module summaries.

:class:`ProjectIndex` stitches the per-module symbol tables
(:mod:`.symbols`) into one namespace: it resolves each
:class:`~repro.tools.check.symbols.CallSite` to the
:class:`~repro.tools.check.symbols.FunctionSummary` it targets (through
import aliases, ``from``-imports, module-local names and ``self.``
method calls), and maintains the module-level import graph whose
*reverse* closure drives incremental re-analysis: when a module's
content hash changes, every transitive importer's cross-module facts
may change with it.

Resolution is deliberately conservative and deterministic: a call that
cannot be pinned to exactly one plausible project function resolves to
``None`` and simply does not propagate taint -- the whole-program rules
prefer false negatives over nondeterministic blame.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Set

from repro.tools.check.symbols import CallSite, FunctionSummary, ModuleSummary


class ProjectIndex:
    """Symbol table + import/call graph over every analysed module."""

    def __init__(self, summaries: Iterable[ModuleSummary]) -> None:
        #: module name -> summary (last write wins; module names are unique
        #: in a well-formed run)
        self.modules: Dict[str, ModuleSummary] = {}
        for summary in summaries:
            self.modules[summary.module] = summary
        #: qname -> function summary, across all modules
        self.functions: Dict[str, FunctionSummary] = {}
        #: module -> terminal function name -> sorted qnames defined there
        self._by_name: Dict[str, Dict[str, List[str]]] = {}
        for summary in self.modules.values():
            per_name = self._by_name.setdefault(summary.module, {})
            for qname, fn in summary.functions.items():
                self.functions[qname] = fn
                per_name.setdefault(fn.name, []).append(qname)
        for per_name in self._by_name.values():
            for qnames in per_name.values():
                qnames.sort()

    # -- module import graph -------------------------------------------------

    def import_graph(self) -> Dict[str, Set[str]]:
        """``module -> imported project modules`` (non-project edges dropped)."""
        graph: Dict[str, Set[str]] = {}
        for summary in self.modules.values():
            edges = set()
            for imported in summary.imports:
                target = self._project_module(imported)
                if target is not None and target != summary.module:
                    edges.add(target)
            graph[summary.module] = edges
        return graph

    def reverse_closure(self, changed: Iterable[str]) -> Set[str]:
        """Changed modules plus every module that transitively imports them."""
        importers: Dict[str, Set[str]] = {}
        for module, imports in self.import_graph().items():
            for imported in imports:
                importers.setdefault(imported, set()).add(module)
        closure: Set[str] = set()
        frontier = [m for m in changed if m in self.modules]
        while frontier:
            module = frontier.pop()
            if module in closure:
                continue
            closure.add(module)
            frontier.extend(sorted(importers.get(module, ())))
        return closure

    def _project_module(self, dotted: str) -> Optional[str]:
        """Map a dotted import to a project module (or its parent package)."""
        name = dotted
        while name:
            if name in self.modules:
                return name
            if "." not in name:
                return None
            name = name.rsplit(".", 1)[0]
        return None

    # -- call resolution -----------------------------------------------------

    def resolve_call(
        self, caller: FunctionSummary, site: CallSite
    ) -> Optional[FunctionSummary]:
        return self.resolve_name(caller, site.resolved, site.terminal)

    def resolve_name(
        self,
        caller: FunctionSummary,
        resolved: Optional[str],
        terminal: Optional[str] = None,
    ) -> Optional[FunctionSummary]:
        """Pin a (possibly dotted) call target to one project function."""
        if resolved is None:
            return None
        if terminal is None:
            terminal = resolved.rsplit(".", 1)[-1]
        # self.method() / cls.method(): a method of the caller's module
        if resolved.startswith(("self.", "cls.")) and resolved.count(".") == 1:
            return self._resolve_in_module(caller.module, terminal, caller)
        if "." in resolved:
            prefix = resolved.rsplit(".", 1)[0]
            module = self._project_module(prefix)
            if module is None:
                return None
            # exact top-level definition first, then a unique nested one
            exact = self.functions.get(f"{module}.{terminal}")
            if exact is not None:
                return exact
            candidates = self._by_name.get(module, {}).get(terminal, [])
            if len(candidates) == 1:
                return self.functions[candidates[0]]
            return None
        # bare local name: the caller's own module namespace
        return self._resolve_in_module(caller.module, resolved, caller)

    def _resolve_in_module(
        self, module: str, name: str, caller: Optional[FunctionSummary] = None
    ) -> Optional[FunctionSummary]:
        exact = self.functions.get(f"{module}.{name}")
        if exact is not None:
            return exact
        candidates = self._by_name.get(module, {}).get(name, [])
        if caller is not None and len(candidates) > 1:
            # prefer a method in the caller's own class scope
            caller_scope = caller.qname.rsplit(".", 1)[0]
            scoped = [q for q in candidates if q.rsplit(".", 1)[0] == caller_scope]
            if len(scoped) == 1:
                return self.functions[scoped[0]]
        if len(candidates) == 1:
            return self.functions[candidates[0]]
        return None

    # -- convenience ---------------------------------------------------------

    def iter_functions(self) -> List[FunctionSummary]:
        """All functions in deterministic (qname) order."""
        return [self.functions[q] for q in sorted(self.functions)]

    def suppressions_for(self, module: str) -> Mapping[int, List[str]]:
        summary = self.modules.get(module)
        return summary.suppressions if summary is not None else {}
