"""``sflow-check``: whole-program static analysis for the sFlow repo.

The package grew out of a single-module per-file linter; the public API
of that module is preserved here verbatim (``check_source``,
``check_file``, ``check_paths``, ``main``, ``RULES``, ``rule_codes``,
``Violation``, ``Rule``, ``FileContext``) so existing imports, the
console script and ``python -m repro.tools.check`` keep working.  New
surface: the whole-program engine (:mod:`.engine`), symbol/call-graph
layers (:mod:`.symbols`, :mod:`.callgraph`), taint dataflow
(:mod:`.dataflow`), the incremental cache (:mod:`.cache`) and SARIF /
baseline output (:mod:`.sarif`).
"""

from __future__ import annotations

from repro.tools.check.base import (
    DEFAULT_EXCLUDES,
    FileContext,
    ProjectRule,
    Rule,
    Violation,
    module_for,
    parse_suppressions,
)
from repro.tools.check.engine import (
    CheckResult,
    analyze_file_payload,
    check_file,
    check_paths,
    check_source,
    main,
    run_project,
)
from repro.tools.check.rules import (
    PROJECT_RULES,
    RULES,
    all_rule_codes,
    rule_codes,
)

# Back-compat alias: the scoping helper was private in the old module and
# is white-box imported by the rule tests.
_module_for = module_for

__all__ = [
    "DEFAULT_EXCLUDES",
    "FileContext",
    "ProjectRule",
    "Rule",
    "Violation",
    "RULES",
    "PROJECT_RULES",
    "CheckResult",
    "all_rule_codes",
    "analyze_file_payload",
    "check_file",
    "check_paths",
    "check_source",
    "main",
    "module_for",
    "parse_suppressions",
    "rule_codes",
    "run_project",
]
