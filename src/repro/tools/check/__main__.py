"""``python -m repro.tools.check`` entry point."""

from __future__ import annotations

import sys

from repro.tools.check.engine import main

if __name__ == "__main__":
    sys.exit(main())
