"""Shared taint/rule vocabularies.

These sets name the repo-specific API surface the rules reason about.
They live in a dependency-free module because both the per-file rules
(:mod:`.rules`) and the symbol distillation (:mod:`.symbols`) need them
-- importing them through the rules package would cycle back through the
whole-program machinery.
"""

from __future__ import annotations

from typing import Set, Tuple

#: Host-clock reads: dotted call names that observe wall time.
WALL_CLOCK_CALLS: Set[str] = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: Module-level functions of :mod:`random` that draw from the shared,
#: ambient Mersenne Twister.  (``random.Random`` with a seed is the
#: sanctioned construction; ``SystemRandom`` is never acceptable in
#: deterministic code.)
AMBIENT_RANDOM: Set[str] = {
    "random.betavariate", "random.choice", "random.choices",
    "random.expovariate", "random.gammavariate", "random.gauss",
    "random.getrandbits", "random.lognormvariate", "random.normalvariate",
    "random.paretovariate", "random.randbytes", "random.randint",
    "random.random", "random.randrange", "random.sample", "random.seed",
    "random.shuffle", "random.triangular", "random.uniform",
    "random.vonmisesvariate", "random.weibullvariate",
}

#: Routing-tree builders whose raw results bypass the RouteOracle.
TREE_FUNCTIONS: Set[str] = {"shortest_widest_tree", "widest_shortest_tree"}

#: Topology-mutating graph methods that stale any cached tree.
GRAPH_MUTATORS: Set[str] = {
    "add_instance", "add_link", "remove_instance", "remove_link",
}

#: RouteOracle epoch-discipline entry points.
INVALIDATORS: Set[str] = {"derive", "mutate", "invalidate"}

#: Constructors whose results are *fresh* graphs: mutating a graph built
#: inside the same function is initialisation, not topology mutation.
FRESH_GRAPH_CALLS: Set[str] = {
    "OverlayGraph", "Underlay", "UnderlayGraph", "subgraph", "copy",
}

#: Modules that *implement* the graphs: their methods mutate ``self`` by
#: definition, so SFL004 does not apply -- which is exactly the per-file
#: blind spot the whole-program SFL014 closes.
GRAPH_DEFINING_MODULES: Tuple[str, ...] = (
    "repro.network.overlay",
    "repro.network.underlay",
)
