"""SARIF 2.1.0 output and baseline/differential support.

``sflow-check --sarif`` emits a single-run SARIF log (the OASIS static
analysis interchange format) so findings land in code-scanning UIs and
archive cleanly as CI artifacts.  ``--baseline`` snapshots the current
findings into a fingerprint file; ``--diff-against`` replays a snapshot
so CI fails on *new* findings only -- pre-existing debt never blocks a
PR, regressions always do.

Fingerprints are deliberately line-number-free: ``sha256(path | code |
message)`` with an occurrence count.  Unrelated edits that shift code
downward do not un-baseline old findings, while a second occurrence of
the same finding in the same file *is* new.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.tools.check.base import Violation

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

BASELINE_SCHEMA = 1


def sarif_log(
    violations: Sequence[Violation],
    *,
    rule_index: Dict[str, str],
    tool_version: str,
    baseline_fingerprints: Iterable[str] = (),
) -> Dict[str, object]:
    """Render findings as a SARIF 2.1.0 log object.

    ``rule_index`` maps rule code -> one-line summary (drives the
    ``tool.driver.rules`` descriptors).  Findings whose fingerprint is in
    ``baseline_fingerprints`` carry ``baselineState: "unchanged"``; the
    rest are ``"new"`` (only meaningful in ``--diff-against`` runs, but
    harmless otherwise).
    """
    baselined = set(baseline_fingerprints)
    used_codes = sorted({v.code for v in violations} | set(rule_index))
    rules = [
        {
            "id": code,
            "shortDescription": {"text": rule_index.get(code, code)},
            "helpUri": "https://example.invalid/sflow-check/docs/static_analysis.md",
        }
        for code in used_codes
    ]
    rule_order = {code: i for i, code in enumerate(used_codes)}
    results: List[Dict[str, object]] = []
    for violation in violations:
        fingerprint = violation_fingerprint(violation)
        results.append(
            {
                "ruleId": violation.code,
                "ruleIndex": rule_order[violation.code],
                "level": "error",
                "message": {"text": violation.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": Path(violation.path).as_posix(),
                                "uriBaseId": "SRCROOT",
                            },
                            "region": {
                                "startLine": violation.line,
                                "startColumn": violation.col + 1,
                            },
                        }
                    }
                ],
                "partialFingerprints": {"sflowCheck/v1": fingerprint},
                "baselineState": (
                    "unchanged" if fingerprint in baselined else "new"
                ),
            }
        )
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "sflow-check",
                        "version": tool_version,
                        "informationUri": (
                            "https://example.invalid/sflow-check"
                        ),
                        "rules": rules,
                    }
                },
                "columnKind": "unicodeCodePoints",
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": results,
            }
        ],
    }


# ---------------------------------------------------------------------------
# baselines
# ---------------------------------------------------------------------------


def violation_fingerprint(violation: Violation) -> str:
    """Stable, line-number-free identity of one finding."""
    key = "|".join(
        (Path(violation.path).as_posix(), violation.code, violation.message)
    )
    return hashlib.sha256(key.encode("utf-8")).hexdigest()


def write_baseline(path: Path, violations: Sequence[Violation]) -> None:
    counts = Counter(violation_fingerprint(v) for v in violations)
    payload = {
        "schema": BASELINE_SCHEMA,
        "tool": "sflow-check",
        "findings": len(violations),
        "fingerprints": {fp: n for fp, n in sorted(counts.items())},
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def load_baseline(path: Path) -> Dict[str, int]:
    payload = json.loads(path.read_text(encoding="utf-8"))
    if payload.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"unsupported baseline schema {payload.get('schema')!r} in {path}"
        )
    return {str(fp): int(n) for fp, n in payload["fingerprints"].items()}


def diff_against_baseline(
    violations: Sequence[Violation], baseline: Dict[str, int]
) -> Tuple[List[Violation], List[Violation]]:
    """Split findings into (new, pre-existing) against a baseline.

    Occurrence-aware: if the baseline recorded the fingerprint twice and
    the run found it three times, one of the three is new.  Within equal
    fingerprints the earliest occurrences (sorted order) count as the
    pre-existing ones, so output ordering stays deterministic.
    """
    budget = dict(baseline)
    new: List[Violation] = []
    old: List[Violation] = []
    for violation in violations:
        fingerprint = violation_fingerprint(violation)
        remaining = budget.get(fingerprint, 0)
        if remaining > 0:
            budget[fingerprint] = remaining - 1
            old.append(violation)
        else:
            new.append(violation)
    return new, old
