"""Interprocedural taint dataflow over the project call graph.

Three fact families are propagated to a fixpoint along (reversed) call
edges, each seeded from the per-function facts the symbol pass recorded:

* **wall-clock taint** -- a function transitively performs a host-clock
  read (``time.time``/``perf_counter``/...).  Propagation stops at the
  ``repro.obs`` boundary: the injectable :class:`repro.obs.clock.
  Stopwatch` wrappers are the *sanctioned* place for host timing, so a
  call into ``repro.obs`` never carries taint out.  Feeds SFL013.
* **ambient-RNG taint** and **raw-tree taint** -- the analogous closures
  for unseeded randomness and direct ``*_tree`` routing computations
  (``repro.routing`` absorbs the latter: the oracle layer is the
  sanctioned owner of raw tree calls).  Exposed on the analysis object
  for rules and tooling.
* **may-raise** -- a function contains an explicit, ``try``-unshielded
  ``raise`` or (transitively, through unshielded call sites) reaches
  one.  Raises inside the DES kernel (``repro.sim.engine``) and the
  shared error hierarchy (``repro.errors``) are exempt: those are the
  engine's defensive programmer-error contract, converted into event
  failures by ``Process._step``.  Feeds SFL015.

Every propagation is a breadth-first worklist over sorted seeds and
sorted caller lists, with first-assignment-wins witnesses, so the blame
chains -- and therefore the emitted findings -- are bit-identical run to
run regardless of dict order or worker scheduling.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.tools.check.callgraph import ProjectIndex
from repro.tools.check.symbols import CallSite, FunctionSummary, ModuleSummary

#: Modules whose functions never carry wall-clock taint outward: host
#: timing behind this boundary is injectable by design (PR 4's Stopwatch).
WALL_CLOCK_BOUNDARY: Tuple[str, ...] = ("repro.obs",)

#: Modules that legitimately own raw tree computations.
RAW_TREE_BOUNDARY: Tuple[str, ...] = ("repro.routing",)

#: Modules whose explicit raises are the sanctioned defensive contract of
#: the DES kernel (converted to event failures, counted by
#: ``engine.handler_error``) rather than protocol escape hazards.
RAISE_EXEMPT_MODULES: Tuple[str, ...] = ("repro.sim.engine", "repro.errors")


@dataclass(frozen=True)
class Witness:
    """Why a function carries a fact: the origin plus the call chain."""

    origin: str
    origin_module: str
    origin_path: str
    origin_line: int
    chain: Tuple[str, ...]

    def render_chain(self, limit: int = 5) -> str:
        chain = self.chain
        if len(chain) > limit:
            chain = chain[: limit - 1] + ("...",) + chain[-1:]
        return " -> ".join(chain)


def _in_packages(module: str, prefixes: Iterable[str]) -> bool:
    return any(module == p or module.startswith(p + ".") for p in prefixes)


@dataclass
class ProjectAnalysis:
    """The whole-program view handed to :class:`~repro.tools.check.base.
    ProjectRule` instances."""

    index: ProjectIndex
    #: callee qname -> sorted list of (caller, call site) edges
    callers: Dict[str, List[Tuple[FunctionSummary, CallSite]]] = field(
        default_factory=dict
    )
    wall_clock: Dict[str, Witness] = field(default_factory=dict)
    ambient_rng: Dict[str, Witness] = field(default_factory=dict)
    raw_tree: Dict[str, Witness] = field(default_factory=dict)
    may_raise: Dict[str, Witness] = field(default_factory=dict)
    #: handler qname -> sorted spawn sites [(spawner qname, line, col)]
    handlers: Dict[str, List[Tuple[str, int, int]]] = field(default_factory=dict)

    def is_suppressed(self, path_module: str, line: int, code: str) -> bool:
        return code in self.index.suppressions_for(path_module).get(line, ())


def _build_reverse_edges(
    index: ProjectIndex,
) -> Dict[str, List[Tuple[FunctionSummary, CallSite]]]:
    callers: Dict[str, List[Tuple[FunctionSummary, CallSite]]] = {}
    for fn in index.iter_functions():
        for site in fn.calls:
            target = index.resolve_call(fn, site)
            if target is None or target.qname == fn.qname:
                continue
            callers.setdefault(target.qname, []).append((fn, site))
    return callers


def _propagate(
    index: ProjectIndex,
    callers: Dict[str, List[Tuple[FunctionSummary, CallSite]]],
    seeds: Dict[str, Witness],
    *,
    boundary: Tuple[str, ...] = (),
    shielded_calls_stop: bool = False,
) -> Dict[str, Witness]:
    """Breadth-first fixpoint from ``seeds`` along reversed call edges.

    ``boundary`` modules absorb the fact (they are never marked, so taint
    cannot flow through them).  With ``shielded_calls_stop`` a call site
    lexically inside a ``try`` with handlers does not propagate (used for
    may-raise: the caller catches).
    """
    facts: Dict[str, Witness] = {}
    queue: deque = deque()
    for qname in sorted(seeds):
        fn = index.functions[qname]
        if _in_packages(fn.module, boundary):
            continue
        facts[qname] = seeds[qname]
        queue.append(qname)
    while queue:
        callee = queue.popleft()
        witness = facts[callee]
        for caller, site in callers.get(callee, ()):
            if caller.qname in facts:
                continue
            if shielded_calls_stop and site.in_try:
                continue
            if _in_packages(caller.module, boundary):
                continue
            facts[caller.qname] = Witness(
                origin=witness.origin,
                origin_module=witness.origin_module,
                origin_path=witness.origin_path,
                origin_line=witness.origin_line,
                chain=(caller.qname,) + witness.chain,
            )
            queue.append(caller.qname)
    return facts


def _taint_seeds(
    index: ProjectIndex,
    extract: str,
    describe: str,
) -> Dict[str, Witness]:
    seeds: Dict[str, Witness] = {}
    for fn in index.iter_functions():
        sites = getattr(fn, extract)
        if not sites:
            continue
        name, line, _col = sorted(sites, key=lambda s: (s[1], s[2], s[0]))[0]
        seeds[fn.qname] = Witness(
            origin=f"{name}() {describe} {fn.path}:{line}",
            origin_module=fn.module,
            origin_path=fn.path,
            origin_line=line,
            chain=(fn.qname,),
        )
    return seeds


def _raise_seeds(index: ProjectIndex) -> Dict[str, Witness]:
    seeds: Dict[str, Witness] = {}
    for fn in index.iter_functions():
        if _in_packages(fn.module, RAISE_EXEMPT_MODULES):
            continue
        unprotected = [r for r in fn.raises if not r.protected]
        if not unprotected:
            continue
        first = sorted(unprotected, key=lambda r: (r.line, r.exception))[0]
        seeds[fn.qname] = Witness(
            origin=f"raise {first.exception} at {fn.path}:{first.line}",
            origin_module=fn.module,
            origin_path=fn.path,
            origin_line=first.line,
            chain=(fn.qname,),
        )
    return seeds


def _collect_handlers(
    index: ProjectIndex,
) -> Dict[str, List[Tuple[str, int, int]]]:
    handlers: Dict[str, List[Tuple[str, int, int]]] = {}
    for fn in index.iter_functions():
        for target, line, col in fn.spawned_handlers:
            resolved = index.resolve_name(fn, target)
            if resolved is None:
                continue
            handlers.setdefault(resolved.qname, []).append((fn.qname, line, col))
    for sites in handlers.values():
        sites.sort()
    return handlers


def analyze_project(summaries: Iterable[ModuleSummary]) -> ProjectAnalysis:
    """Build the symbol table, call graph and taint facts for one run."""
    index = ProjectIndex(summaries)
    callers = _build_reverse_edges(index)
    analysis = ProjectAnalysis(index=index, callers=callers)
    analysis.wall_clock = _propagate(
        index,
        callers,
        _taint_seeds(index, "wall_clock_calls", "wall-clock read at"),
        boundary=WALL_CLOCK_BOUNDARY,
    )
    analysis.ambient_rng = _propagate(
        index,
        callers,
        _taint_seeds(index, "ambient_rng_calls", "ambient-RNG draw at"),
    )
    analysis.raw_tree = _propagate(
        index,
        callers,
        _taint_seeds(index, "raw_tree_calls", "raw tree computation at"),
        boundary=RAW_TREE_BOUNDARY,
    )
    analysis.may_raise = _propagate(
        index,
        callers,
        _raise_seeds(index),
        shielded_calls_stop=True,
    )
    analysis.handlers = _collect_handlers(index)
    return analysis
