"""Orchestration for ``sflow-check``: per-file pass, whole-program pass,
incremental cache, CLI.

The pipeline for a project run (:func:`run_project`):

1. enumerate ``*.py`` files (directory walks honour the exclude globs;
   explicitly named files always lint);
2. content-hash each file; cache hits replay their stored summary and
   per-file findings, misses are (optionally in parallel) parsed and
   pushed through the SFL001-SFL012 per-file rules plus the symbol
   distillation of :mod:`.symbols`;
3. the whole-program pass stitches every module summary into the call
   graph + taint lattice of :mod:`.dataflow` and runs the SFL013-SFL015
   project rules, honouring per-line ``noqa`` suppressions in whichever
   file a finding lands;
4. findings are filtered (``--select``/``--ignore``), sorted and
   rendered -- human lines, ``--json``, or SARIF 2.1.0 -- optionally
   diffed against a baseline so only *new* findings gate.

:func:`check_source` / :func:`check_file` keep the historical per-file
behaviour (no project context), which is also what makes the SFL013+
fixture pairs demonstrable: the per-file API provably returns clean on
files whose combination the project run flags.

Exit codes: 0 clean, 1 violations found, 2 usage or parse errors.
"""

from __future__ import annotations

import argparse
import ast
import json
import os
import sys
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.tools.check.base import (
    DEFAULT_EXCLUDES,
    FileContext,
    Violation,
    module_for,
    parse_suppressions,
)
from repro.tools.check.cache import (
    AnalysisCache,
    CacheEntry,
    CacheStats,
    analyze_files,
    content_hash,
)
from repro.tools.check.dataflow import ProjectAnalysis, analyze_project
from repro.tools.check.rules import (
    PROJECT_RULES,
    RULES,
    all_rule_codes,
    rule_codes,
)
from repro.tools.check import sarif as sarif_mod

TOOL_VERSION = "2.0"

_SORT_KEY = lambda v: (v.path, v.line, v.col, v.code)  # noqa: E731


# ---------------------------------------------------------------------------
# per-file analysis (the historical API)
# ---------------------------------------------------------------------------


def check_source(
    source: str,
    *,
    module: str,
    path: str = "<string>",
    select: Optional[Set[str]] = None,
    ignore: Optional[Set[str]] = None,
) -> List[Violation]:
    """Run every applicable per-file rule over one source text."""
    tree = ast.parse(source, filename=path)
    ctx = FileContext(path, module, source, tree)
    suppressed, findings = parse_suppressions(path, source, set(all_rule_codes()))
    for rule in RULES:
        if select is not None and rule.code not in select:
            continue
        if ignore is not None and rule.code in ignore:
            continue
        if not rule.applies_to(ctx):
            continue
        for violation in rule.check(ctx):
            if violation.code in suppressed.get(violation.line, ()):
                continue
            findings.append(violation)
    return _filter(findings, select, ignore)


def check_file(
    path: Path,
    *,
    select: Optional[Set[str]] = None,
    ignore: Optional[Set[str]] = None,
) -> List[Violation]:
    source = path.read_text(encoding="utf-8")
    module = module_for(path, source)
    return check_source(
        source, module=module, path=str(path), select=select, ignore=ignore
    )


def _filter(
    findings: List[Violation],
    select: Optional[Set[str]],
    ignore: Optional[Set[str]],
) -> List[Violation]:
    if select is not None:
        findings = [f for f in findings if f.code in select or f.code == "SFL000"]
    if ignore is not None:
        findings = [f for f in findings if f.code not in ignore]
    return sorted(findings, key=_SORT_KEY)


# ---------------------------------------------------------------------------
# project runs
# ---------------------------------------------------------------------------


def analyze_file_payload(
    path_str: str,
) -> Tuple[str, str, Dict[str, object], Optional[str]]:
    """Fully analyse one file: per-file findings + module summary.

    The worker body of the multiprocessing fan-out; everything returned
    is picklable/JSON-able.  Findings are unfiltered (post-``noqa``,
    pre-``select``/``ignore``) so the cache entry serves any CLI flags.
    """
    path = Path(path_str)
    try:
        data = path.read_bytes()
    except OSError as exc:
        return path_str, "", {}, f"{path_str}:0: read error: {exc}"
    digest = content_hash(data)
    try:
        source = data.decode("utf-8")
        tree = ast.parse(source, filename=path_str)
    except SyntaxError as exc:
        return (
            path_str,
            digest,
            {},
            f"{path_str}:{exc.lineno or 0}: syntax error: {exc.msg}",
        )
    except UnicodeDecodeError as exc:
        return path_str, digest, {}, f"{path_str}:0: decode error: {exc}"
    module = module_for(path, source)
    ctx = FileContext(path_str, module, source, tree)
    suppressed, findings = parse_suppressions(
        path_str, source, set(all_rule_codes())
    )
    for rule in RULES:
        if not rule.applies_to(ctx):
            continue
        for violation in rule.check(ctx):
            if violation.code in suppressed.get(violation.line, ()):
                continue
            findings.append(violation)
    from repro.tools.check.symbols import summarize_module

    summary = summarize_module(ctx, suppressed)
    entry = CacheEntry(
        hash=digest, summary=summary, findings=sorted(findings, key=_SORT_KEY)
    )
    return path_str, digest, entry.as_dict(), None


@dataclass
class CheckResult:
    """Everything a project run produced."""

    violations: List[Violation] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)
    stats: CacheStats = field(default_factory=CacheStats)
    analysis: Optional[ProjectAnalysis] = None


def _iter_python_files(
    paths: Sequence[Path], excludes: Sequence[str]
) -> Iterator[Path]:
    def excluded(p: Path) -> bool:
        posix = p.as_posix()
        return any(fnmatch(posix, pattern) for pattern in excludes)

    for path in paths:
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if not excluded(sub):
                    yield sub
        elif path.suffix == ".py":
            # Explicitly named files are checked even inside excluded dirs.
            yield path


def run_project(
    paths: Sequence[Path],
    *,
    select: Optional[Set[str]] = None,
    ignore: Optional[Set[str]] = None,
    excludes: Sequence[str] = DEFAULT_EXCLUDES,
    cache_dir: Optional[Path] = None,
    jobs: int = 1,
    project: bool = True,
) -> CheckResult:
    """Analyse every ``*.py`` under ``paths`` as one program."""
    result = CheckResult()
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    files: List[str] = []
    seen: Set[str] = set()
    for path in _iter_python_files(paths, excludes):
        key = str(path)
        if key not in seen:
            seen.add(key)
            files.append(key)
    result.stats.files = len(files)
    result.stats.workers = jobs

    cache = (
        AnalysisCache(cache_dir, rule_signature=all_rule_codes())
        if cache_dir is not None
        else None
    )
    entries: Dict[str, CacheEntry] = {}
    misses: List[str] = []
    for file_path in files:
        digest: Optional[str] = None
        if cache is not None:
            try:
                digest = content_hash(Path(file_path).read_bytes())
            except OSError as exc:
                result.errors.append(f"{file_path}:0: read error: {exc}")
                continue
            hit = cache.lookup(file_path, digest)
            if hit is not None:
                entries[file_path] = hit
                result.stats.hits += 1
                continue
        misses.append(file_path)
    result.stats.misses = len(misses)

    for path_str, digest, payload, error in analyze_files(misses, jobs):
        if error is not None:
            result.errors.append(error)
            continue
        entry = CacheEntry.from_dict(payload)
        entries[path_str] = entry
        if cache is not None:
            cache.store(path_str, entry)
    if cache is not None:
        cache.prune(files)
        cache.save()

    violations: List[Violation] = []
    summaries = []
    for file_path in files:
        entry = entries.get(file_path)
        if entry is None:
            continue
        violations.extend(entry.findings)
        summaries.append(entry.summary)

    if project:
        analysis = analyze_project(summaries)
        result.analysis = analysis
        path_suppressions: Dict[str, Dict[int, List[str]]] = {
            s.path: s.suppressions for s in summaries
        }
        for rule in PROJECT_RULES:
            for violation in rule.check_project(analysis):
                per_line = path_suppressions.get(violation.path, {})
                if violation.code in per_line.get(violation.line, ()):
                    continue
                violations.append(violation)
        changed = sorted(
            {entries[m].summary.module for m in misses if m in entries}
        )
        result.stats.changed_modules = changed
        result.stats.reverse_closure = sorted(
            analysis.index.reverse_closure(changed)
        )
    else:
        result.stats.changed_modules = sorted(
            {entries[m].summary.module for m in misses if m in entries}
        )

    result.violations = _filter(violations, select, ignore)
    return result


def check_paths(
    paths: Sequence[Path],
    *,
    select: Optional[Set[str]] = None,
    ignore: Optional[Set[str]] = None,
    excludes: Sequence[str] = DEFAULT_EXCLUDES,
) -> Tuple[List[Violation], List[str]]:
    """Check every ``*.py`` under ``paths`` (whole-program rules included).

    Returns ``(violations, parse_errors)``; parse errors are fatal for
    the CLI (exit 2) because an unparseable file is unlintable.
    """
    result = run_project(
        paths, select=select, ignore=ignore, excludes=excludes
    )
    return result.violations, result.errors


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def _parse_codes(text: Optional[str]) -> Optional[Set[str]]:
    if not text:
        return None
    codes = {c.strip().upper() for c in text.split(",") if c.strip()}
    known = set(all_rule_codes())
    unknown = codes - known
    if unknown:
        raise SystemExit(
            f"sflow-check: unknown rule code(s): {', '.join(sorted(unknown))}"
        )
    return codes


def _rule_summaries() -> Dict[str, str]:
    index = {"SFL000": "suppression hygiene: noqa needs a justification"}
    for rule in RULES:
        index[rule.code] = rule.summary
    for rule in PROJECT_RULES:
        index[rule.code] = rule.summary
    return index


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="sflow-check",
        description=(
            "Repo-specific static analysis: determinism, sim-time purity "
            "and oracle/metrics discipline for the sFlow reproduction."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", type=Path, help="files or directories to check"
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable JSON output"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    parser.add_argument(
        "--select", metavar="CODES", help="comma-separated codes to run exclusively"
    )
    parser.add_argument(
        "--ignore", metavar="CODES", help="comma-separated codes to skip"
    )
    parser.add_argument(
        "--exclude",
        action="append",
        default=None,
        metavar="GLOB",
        help=(
            "glob of paths to skip (repeatable); defaults to "
            + ", ".join(DEFAULT_EXCLUDES)
        ),
    )
    parser.add_argument(
        "--cache",
        metavar="DIR",
        type=Path,
        help=(
            "incremental-analysis cache directory; warm runs re-analyse "
            "only content-changed modules"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the file fan-out (0 = cpu count; default 1)",
    )
    parser.add_argument(
        "--no-project",
        action="store_true",
        help="skip the whole-program pass (SFL013+); per-file rules only",
    )
    parser.add_argument(
        "--sarif",
        metavar="PATH",
        help="write findings as SARIF 2.1.0 ('-' for stdout)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        type=Path,
        help=(
            "record the current findings as a baseline snapshot and exit 0 "
            "(2 on parse errors); use with --diff-against in CI"
        ),
    )
    parser.add_argument(
        "--diff-against",
        metavar="PATH",
        type=Path,
        help=(
            "differential mode: report and gate only on findings absent "
            "from the given baseline snapshot"
        ),
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print cache/fan-out statistics to stderr (and into --json)",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for code, summary in sorted(_rule_summaries().items()):
            print(f"{code} {summary}")
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("sflow-check: no paths given", file=sys.stderr)
        return 2

    missing = [p for p in args.paths if not p.exists()]
    if missing:
        for p in missing:
            print(f"sflow-check: no such path: {p}", file=sys.stderr)
        return 2

    try:
        select = _parse_codes(args.select)
        ignore = _parse_codes(args.ignore)
    except SystemExit as exc:
        print(exc, file=sys.stderr)
        return 2

    baseline: Optional[Dict[str, int]] = None
    if args.diff_against is not None:
        try:
            baseline = sarif_mod.load_baseline(args.diff_against)
        except (OSError, ValueError, KeyError) as exc:
            print(f"sflow-check: cannot load baseline: {exc}", file=sys.stderr)
            return 2

    excludes = tuple(args.exclude) if args.exclude else DEFAULT_EXCLUDES
    result = run_project(
        args.paths,
        select=select,
        ignore=ignore,
        excludes=excludes,
        cache_dir=args.cache,
        jobs=args.jobs,
        project=not args.no_project,
    )
    violations, errors = result.violations, result.errors

    preexisting: List[Violation] = []
    if baseline is not None:
        violations, preexisting = sarif_mod.diff_against_baseline(
            violations, baseline
        )

    if args.baseline is not None:
        sarif_mod.write_baseline(args.baseline, result.violations)

    if args.sarif:
        log = sarif_mod.sarif_log(
            violations + preexisting,
            rule_index=_rule_summaries(),
            tool_version=TOOL_VERSION,
            baseline_fingerprints={
                sarif_mod.violation_fingerprint(v) for v in preexisting
            },
        )
        rendered = json.dumps(log, indent=2)
        if args.sarif == "-":
            print(rendered)
        else:
            Path(args.sarif).write_text(rendered + "\n", encoding="utf-8")

    if args.json:
        payload: Dict[str, object] = {
            "violations": [v.as_dict() for v in violations],
            "errors": errors,
        }
        if baseline is not None:
            payload["preexisting"] = [v.as_dict() for v in preexisting]
        if args.stats:
            payload["stats"] = result.stats.as_dict()
        print(json.dumps(payload, indent=2))
    elif args.sarif != "-":
        for violation in violations:
            print(violation.render())
        for error in errors:
            print(error, file=sys.stderr)
        if violations:
            counts: Dict[str, int] = {}
            for violation in violations:
                counts[violation.code] = counts.get(violation.code, 0) + 1
            summary = ", ".join(f"{c} x{n}" for c, n in sorted(counts.items()))
            kind = "new " if baseline is not None else ""
            print(f"found {len(violations)} {kind}violation(s): {summary}")
        if baseline is not None and preexisting:
            print(
                f"{len(preexisting)} pre-existing finding(s) matched the "
                "baseline and do not gate"
            )

    if args.stats:
        stats = result.stats
        print(
            f"sflow-check: {stats.files} files, {stats.hits} cached, "
            f"{stats.misses} analysed ({stats.workers} worker(s)); "
            f"{len(stats.changed_modules)} changed module(s), "
            f"reverse closure {len(stats.reverse_closure)}",
            file=sys.stderr,
        )

    if errors:
        return 2
    if args.baseline is not None and baseline is None:
        return 0  # snapshot runs record debt; they do not gate on it
    return 1 if violations else 0


__all__ = [
    "CheckResult",
    "analyze_file_payload",
    "check_file",
    "check_paths",
    "check_source",
    "main",
    "run_project",
    "rule_codes",
]
