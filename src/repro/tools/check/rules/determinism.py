"""Determinism rules: SFL001 (wall clocks), SFL002 (ambient random),
SFL010 (ambient numpy randomness).

The shared source vocabularies (:data:`WALL_CLOCK_CALLS`,
:data:`AMBIENT_RANDOM`, ...) double as the taint-source sets of the
interprocedural dataflow (:mod:`repro.tools.check.dataflow`): what these
rules flag directly, the whole-program pass follows through helper
functions in other modules.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.tools.check.base import FileContext, Rule, Violation
from repro.tools.check.vocab import AMBIENT_RANDOM, WALL_CLOCK_CALLS

__all__ = [
    "AMBIENT_RANDOM",
    "WALL_CLOCK_CALLS",
    "NUMPY_SEEDED_CONSTRUCTS",
    "SimTimePurity",
    "InjectedRandomness",
    "AmbientNumpyRandomness",
]

#: Seeded-generator constructors of :mod:`numpy.random` -- sanctioned
#: *when called with arguments* (an explicit seed / bit generator).
#: Called bare they seed from the OS, which is exactly the ambient state
#: SFL010 exists to keep out of deterministic code.
NUMPY_SEEDED_CONSTRUCTS: Set[str] = {
    "default_rng",
    "Generator",
    "RandomState",
    "SeedSequence",
    "MT19937",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
}


class SimTimePurity(Rule):
    """No wall-clock reads inside ``repro.sim`` / ``repro.core``.

    Simulated results must be functions of the DES clock and the inputs
    alone.  Host timing belongs behind the injectable
    :class:`repro.obs.clock.Stopwatch` (or the ``repro.obs`` timer
    helpers), where tests can substitute a fake clock.
    """

    code = "SFL001"
    summary = "wall-clock read in sim/protocol code; inject a repro.obs clock"

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_package("repro.sim", "repro.core")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.qualified_call_name(node.func)
            if name in WALL_CLOCK_CALLS:
                yield self.violation(
                    ctx,
                    node,
                    f"wall-clock call {name}() in {ctx.module}; route timing "
                    "through repro.obs.clock.Stopwatch (injectable) or a "
                    "SimClock so results stay deterministic",
                )


class InjectedRandomness(Rule):
    """RNGs in sim/core/eval must be seeded and injected.

    Ambient ``random.*`` calls (and unseeded ``random.Random()``) tie
    results to interpreter-global state, which breaks bit-identical
    parallel fan-out: a forked worker would consume a different stream
    than the serial loop.
    """

    code = "SFL002"
    summary = "ambient or unseeded randomness in deterministic code"

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_package("repro.sim", "repro.core", "repro.eval")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.qualified_call_name(node.func)
            if name in AMBIENT_RANDOM:
                yield self.violation(
                    ctx,
                    node,
                    f"ambient {name}() draws from interpreter-global state; "
                    "accept a seeded random.Random and call its methods",
                )
            elif name == "random.SystemRandom":
                yield self.violation(
                    ctx,
                    node,
                    "random.SystemRandom is never reproducible; use a seeded "
                    "random.Random",
                )
            elif name == "random.Random" and not node.args and not node.keywords:
                yield self.violation(
                    ctx,
                    node,
                    "unseeded random.Random() seeds from the OS; pass an "
                    "explicit seed derived from the experiment config",
                )


class AmbientNumpyRandomness(Rule):
    """No ambient ``numpy.random`` state in deterministic code.

    Module-level ``numpy.random.*`` calls (``rand``, ``seed``,
    ``shuffle``, ...) draw from or mutate the interpreter-global legacy
    ``RandomState`` -- the numpy twin of SFL002's ambient ``random.*``.
    The routing kernel's batched results (and with them every parallel
    sweep) are only bit-identical because nothing in the hot packages
    touches that shared stream.  Seeded generator constructions
    (``default_rng(seed)``, ``Generator(PCG64(seed))``, ...) are the
    sanctioned alternative and stay legal -- but only *with* arguments;
    bare ``default_rng()`` seeds from the OS.
    """

    code = "SFL010"
    summary = "ambient numpy.random state in deterministic code"

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_package(
            "repro.sim", "repro.core", "repro.routing", "repro.eval"
        )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.qualified_call_name(node.func)
            if name is None or not name.startswith("numpy.random."):
                continue
            terminal = name.rsplit(".", 1)[1]
            if terminal in NUMPY_SEEDED_CONSTRUCTS:
                if node.args or node.keywords:
                    continue  # explicitly seeded construction
                yield self.violation(
                    ctx,
                    node,
                    f"bare numpy.random.{terminal}() seeds from the OS; "
                    "pass an explicit seed derived from the experiment "
                    "config",
                )
                continue
            yield self.violation(
                ctx,
                node,
                f"ambient numpy.random.{terminal}() uses interpreter-"
                "global state; construct a seeded numpy Generator "
                "(numpy.random.default_rng(seed)) and call its methods",
            )
