"""Whole-program rules: SFL013 (transitive wall-clock taint), SFL014
(graph escaping into a mutating callee), SFL015 (uncaught handler
escapes).

These are :class:`~repro.tools.check.base.ProjectRule` subclasses: they
run once per analysis over the cross-module
:class:`~repro.tools.check.dataflow.ProjectAnalysis` rather than
per-file, and exist precisely to catch the launderings the SFL001-SFL012
per-file heuristics provably miss -- a wall clock hidden behind a helper
in another module, a graph handed to a mutating helper in the
graph-defining modules, an exception four calls deep under a DES process
handler.
"""

from __future__ import annotations

from typing import Iterator

from repro.tools.check.base import ProjectRule, Violation
from repro.tools.check.dataflow import (
    ProjectAnalysis,
    WALL_CLOCK_BOUNDARY,
    _in_packages,
)
from repro.tools.check.vocab import GRAPH_DEFINING_MODULES

#: Packages whose results must stay a pure function of the DES clock.
SIM_PURE_PACKAGES = ("repro.sim", "repro.core")


class TransitiveWallClock(ProjectRule):
    """No laundered wall clocks reaching ``repro.sim``/``repro.core``.

    SFL001 catches ``time.perf_counter()`` written *in* sim/core; this
    rule follows the call graph: a sim/core function calling a helper --
    in any module -- that transitively performs a host-clock read taints
    simulated results exactly the same way.  Calls into ``repro.obs``
    stay clean (the injectable Stopwatch boundary), and taint whose
    origin is itself inside sim/core is SFL001's jurisdiction (flagged or
    explicitly waived there), so this rule reports only the cross-module
    laundering the per-file pass cannot see.
    """

    code = "SFL013"
    summary = "call chain smuggles a wall-clock read into repro.sim/repro.core"

    def check_project(self, analysis: ProjectAnalysis) -> Iterator[Violation]:
        index = analysis.index
        for fn in index.iter_functions():
            if not _in_packages(fn.module, SIM_PURE_PACKAGES):
                continue
            for site in fn.calls:
                target = index.resolve_call(fn, site)
                if target is None or target.qname == fn.qname:
                    continue
                if _in_packages(target.module, WALL_CLOCK_BOUNDARY):
                    continue
                witness = analysis.wall_clock.get(target.qname)
                if witness is None:
                    continue
                if _in_packages(witness.origin_module, SIM_PURE_PACKAGES):
                    continue  # the origin is SFL001's (adjudicated) domain
                yield Violation(
                    path=fn.path,
                    line=site.line,
                    col=site.col,
                    code=self.code,
                    message=(
                        f"{site.terminal}() transitively performs {witness.origin} "
                        f"(call chain {witness.render_chain()}); host time must "
                        "not leak into repro.sim/repro.core -- inject a "
                        "repro.obs.clock.Stopwatch at the boundary instead"
                    ),
                )


class EscapedGraphMutation(ProjectRule):
    """Graphs must not escape into epoch-undisciplined mutating callees.

    SFL004 exempts the graph-defining modules (their methods mutate
    ``self`` by definition) and trusts each function in isolation.  The
    blind spot: a caller passes a *pre-existing*, oracle-tracked graph
    into a helper that lives in an exempt module and mutates the
    corresponding parameter -- no per-file rule fires anywhere, yet
    cached trees silently go stale.  This rule matches caller arguments
    to callee parameters across the call graph and fires at the escape
    site when neither side invalidates.  Graphs freshly constructed in
    the caller stay exempt (initialisation-by-helper is the sanctioned
    build pattern).
    """

    code = "SFL014"
    summary = "pre-existing graph escapes into a mutating callee, no invalidation"

    def check_project(self, analysis: ProjectAnalysis) -> Iterator[Violation]:
        index = analysis.index
        for fn in index.iter_functions():
            if not fn.module.startswith("repro."):
                continue
            if fn.module in GRAPH_DEFINING_MODULES or fn.has_invalidator:
                continue
            for site in fn.calls:
                target = index.resolve_call(fn, site)
                if target is None or target.module not in GRAPH_DEFINING_MODULES:
                    continue
                if target.has_invalidator or not target.mutated_params:
                    continue
                params = target.params
                offset = 1 if params[:1] in (["self"], ["cls"]) else 0
                for pos, arg in enumerate(site.arg_names):
                    if arg is None or arg in fn.fresh_names:
                        continue
                    pidx = pos + offset
                    if pidx >= len(params):
                        continue
                    param = params[pidx]
                    mutations = target.mutated_params.get(param)
                    if not mutations:
                        continue
                    mutator = mutations[0][0]
                    yield Violation(
                        path=fn.path,
                        line=site.line,
                        col=site.col,
                        code=self.code,
                        message=(
                            f"{site.terminal}({arg}, ...) hands a pre-existing "
                            f"graph to {target.qname}(), which mutates "
                            f"{param}.{mutator}(...) without RouteOracle "
                            "derive/mutate/invalidate on either side; the "
                            "per-file epoch rule cannot see this escape -- "
                            "invalidate in the caller or the callee"
                        ),
                    )
                    break  # one finding per call site is enough


class HandlerEscape(ProjectRule):
    """DES process handlers must not leak explicit raises to the kernel.

    Every generator handed to ``env.process(...)`` runs under
    ``Process._step``, whose broad except converts an escaped exception
    into an event failure and an ``engine.handler_error`` count -- the
    chaos CI gate then fails the build.  A handler that can reach an
    explicit, ``try``-unshielded ``raise`` (its own, or transitively
    through unshielded call sites in any module) is therefore a latent
    gate failure: under the right fault timing the session dies instead
    of reaching a terminal FAILED/DEGRADED state.  Defensive raises
    inside the kernel itself (``repro.sim.engine``) and the shared error
    types are exempt; handlers that intentionally fail hard carry a
    justified suppression on their ``def`` line.
    """

    code = "SFL015"
    summary = "DES process handler can let an explicit raise escape uncaught"

    def check_project(self, analysis: ProjectAnalysis) -> Iterator[Violation]:
        index = analysis.index
        for handler_qname in sorted(analysis.handlers):
            handler = index.functions[handler_qname]
            if not handler.module.startswith("repro."):
                continue  # test harnesses spawn raising handlers on purpose
            witness = analysis.may_raise.get(handler_qname)
            if witness is None:
                continue
            spawner, spawn_line, _spawn_col = analysis.handlers[handler_qname][0]
            yield Violation(
                path=handler.path,
                line=handler.line,
                col=handler.col,
                code=self.code,
                message=(
                    f"process handler {handler.name}() (spawned by {spawner} "
                    f"at line {spawn_line}) can let '{witness.origin}' escape "
                    f"uncaught (call chain {witness.render_chain()}); the "
                    "engine would convert it into engine.handler_error and "
                    "the session would never reach a terminal state -- catch "
                    "it in the handler or fail the session explicitly"
                ),
            )
