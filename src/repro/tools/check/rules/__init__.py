"""The ``sflow-check`` rule catalogue.

Per-file rules (:data:`RULES`, SFL001-SFL012) see one
:class:`~repro.tools.check.base.FileContext` at a time; project rules
(:data:`PROJECT_RULES`, SFL013-SFL015) run once over the whole-program
:class:`~repro.tools.check.dataflow.ProjectAnalysis`.  Keep both tuples
sorted by code -- ``test_rule_codes_are_unique_and_stable`` pins the
numbering.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.tools.check.base import ProjectRule, Rule
from repro.tools.check.rules.determinism import (
    AmbientNumpyRandomness,
    InjectedRandomness,
    SimTimePurity,
)
from repro.tools.check.rules.hygiene import FloatEquality, MutableDefault
from repro.tools.check.rules.interprocedural import (
    EscapedGraphMutation,
    HandlerEscape,
    TransitiveWallClock,
)
from repro.tools.check.rules.oracle import EpochDiscipline, OracleBypass
from repro.tools.check.rules.robustness import SwallowedException, UnboundedRetry
from repro.tools.check.rules.telemetry import (
    MetricsHygiene,
    OrphanEvent,
    SpanLifecycle,
)

__all__ = [
    "RULES",
    "PROJECT_RULES",
    "rule_codes",
    "all_rule_codes",
]

RULES: Tuple[Rule, ...] = (
    SimTimePurity(),
    InjectedRandomness(),
    OracleBypass(),
    EpochDiscipline(),
    MetricsHygiene(),
    SwallowedException(),
    FloatEquality(),
    MutableDefault(),
    UnboundedRetry(),
    AmbientNumpyRandomness(),
    SpanLifecycle(),
    OrphanEvent(),
)

PROJECT_RULES: Tuple[ProjectRule, ...] = (
    TransitiveWallClock(),
    EscapedGraphMutation(),
    HandlerEscape(),
)


def rule_codes() -> List[str]:
    """Every registered rule code, per-file and project, in order."""
    return [rule.code for rule in RULES] + [rule.code for rule in PROJECT_RULES]


def all_rule_codes() -> List[str]:
    """Rule codes plus the SFL000 suppression-hygiene meta code."""
    return ["SFL000"] + rule_codes()
