"""General-hygiene rules: SFL007 (computed-float equality in tests),
SFL008 (mutable default arguments)."""

from __future__ import annotations

import ast
from decimal import Decimal, InvalidOperation
from typing import Iterator, Optional, Set

from repro.tools.check.base import FileContext, Rule, Violation

MUTABLE_FACTORIES: Set[str] = {
    "list", "dict", "set", "bytearray", "defaultdict", "OrderedDict", "deque",
}


class FloatEquality(Rule):
    """No ``==``/``!=`` on *computed* floats in tests.

    Exact equality against a stored value is fine in a deterministic DES
    (and the suite leans on it); equality against an arithmetic
    expression (``x == 0.1 + 0.2``) or a decimal literal the binary
    format cannot represent exactly (``x == 0.3``) is a rounding-error
    time bomb.  Use ``pytest.approx`` or ``math.isclose``.
    """

    code = "SFL007"
    summary = "computed-float equality in a test; use pytest.approx"

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_package("tests")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            for operand in [node.left] + node.comparators:
                problem = self._float_hazard(ctx, operand)
                if problem:
                    yield self.violation(
                        ctx,
                        node,
                        f"{problem}; compare with pytest.approx(...) or "
                        "math.isclose(...) instead of ==",
                    )
                    break

    def _float_hazard(self, ctx: FileContext, node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.BinOp) and self._contains_float_arith(node):
            return "float arithmetic inside an equality comparison"
        literal = self._float_literal(node)
        if literal is not None and not self._exactly_representable(ctx, node, literal):
            return (
                f"float literal {literal!r} has no exact binary "
                "representation, so computed values will miss it"
            )
        return None

    @staticmethod
    def _float_literal(node: ast.expr) -> Optional[float]:
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
            node = node.operand
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return node.value
        return None

    @classmethod
    def _contains_float_arith(cls, node: ast.BinOp) -> bool:
        has_float = False
        for sub in ast.walk(node):
            if isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Div):
                return True
            if isinstance(sub, ast.Constant) and isinstance(sub.value, float):
                has_float = True
        return has_float

    def _exactly_representable(
        self, ctx: FileContext, node: ast.expr, value: float
    ) -> bool:
        segment = ast.get_source_segment(ctx.source, node)
        if segment is None:
            return True  # cannot see the literal text; give the benefit
        text = segment.lstrip("+- \t")
        try:
            return Decimal(text) == Decimal(value)
        except (InvalidOperation, ValueError):
            return True


class MutableDefault(Rule):
    """No mutable default arguments, anywhere.

    A ``def f(x=[])`` default is created once and shared across calls --
    in a simulator that is cross-run state leakage, the exact class of
    bug the determinism tests exist to catch.  Use ``None`` plus an
    in-body default (or ``dataclasses.field(default_factory=...)``).
    """

    code = "SFL008"
    summary = "mutable default argument"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            args = node.args
            for default in list(args.defaults) + [
                d for d in args.kw_defaults if d is not None
            ]:
                if self._is_mutable(default):
                    yield self.violation(
                        ctx,
                        default,
                        f"mutable default argument in {node.name}(); the "
                        "object is shared across calls -- default to None "
                        "and construct inside the body",
                    )

    @staticmethod
    def _is_mutable(node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = (
                func.id if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute)
                else None
            )
            return name in MUTABLE_FACTORIES
        return False
