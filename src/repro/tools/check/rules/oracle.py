"""Oracle-discipline rules: SFL003 (bypass) and SFL004 (epoch hygiene).

The vocabularies here (:data:`TREE_FUNCTIONS`, :data:`GRAPH_MUTATORS`,
:data:`INVALIDATORS`, :data:`FRESH_GRAPH_CALLS`, the graph-defining
module exemptions) are shared with the interprocedural pass: SFL014
follows graphs across call edges using the same definitions of
"mutation", "invalidation" and "fresh".
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Tuple

from repro.tools.check.base import FileContext, Rule, Violation

from repro.tools.check.vocab import (
    FRESH_GRAPH_CALLS,
    GRAPH_DEFINING_MODULES,
    GRAPH_MUTATORS,
    INVALIDATORS,
    TREE_FUNCTIONS,
)

__all__ = [
    "TREE_FUNCTIONS",
    "GRAPH_MUTATORS",
    "INVALIDATORS",
    "FRESH_GRAPH_CALLS",
    "GRAPH_DEFINING_MODULES",
    "OracleBypass",
    "EpochDiscipline",
]


class OracleBypass(Rule):
    """Routing trees outside ``repro.routing`` must come from RouteOracle.

    A direct tree computation skips the epoch-keyed cache -- it is both a
    perf regression (the O(N^4) recomputation PR 2 removed) and a
    correctness hazard: the caller sees a tree the invalidation protocol
    does not know about.  Tests are exempt (the oracle-equivalence
    property tests *must* call the raw functions).
    """

    code = "SFL003"
    summary = "direct routing-tree computation bypasses RouteOracle"

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_package("repro") and not ctx.in_package("repro.routing")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.qualified_call_name(node.func)
            terminal = name.rsplit(".", 1)[-1] if name else None
            if terminal is None and isinstance(node.func, ast.Attribute):
                terminal = node.func.attr
            if terminal in TREE_FUNCTIONS:
                yield self.violation(
                    ctx,
                    node,
                    f"direct {terminal}() call outside repro.routing; go "
                    "through RouteOracle.default().tree(...) so the result "
                    "is cached and epoch-invalidated",
                )


class EpochDiscipline(Rule):
    """Overlay/underlay mutation needs a paired oracle invalidation.

    Mutating a graph that existed before the function ran changes a
    topology the :class:`RouteOracle` may hold cached trees for.  The
    same function must therefore tell the oracle (``derive``/``mutate``/
    ``invalidate``).  Graphs *constructed* in the function (``result =
    OverlayGraph()``; ``sub = overlay.subgraph(...)``) are exempt while
    being filled in -- they have no cached epoch yet.
    """

    code = "SFL004"
    summary = "graph mutation without RouteOracle derive/mutate/invalidate"

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_package("repro") and ctx.module not in GRAPH_DEFINING_MODULES

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, node)

    def _check_function(
        self, ctx: FileContext, fn: ast.AST
    ) -> Iterator[Violation]:
        fresh: Set[str] = set()
        mutations: List[Tuple[ast.Call, str]] = []
        invalidated = False
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                callee = node.value.func
                callee_name = (
                    callee.id if isinstance(callee, ast.Name)
                    else callee.attr if isinstance(callee, ast.Attribute)
                    else None
                )
                if callee_name in FRESH_GRAPH_CALLS:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            fresh.add(target.id)
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr in INVALIDATORS:
                invalidated = True
            if func.attr in GRAPH_MUTATORS and isinstance(func.value, ast.Name):
                mutations.append((node, func.value.id))
        if invalidated:
            return
        for call, target in mutations:
            if target in fresh:
                continue
            yield self.violation(
                ctx,
                call,
                f"{target}.{call.func.attr}(...) mutates a pre-existing "
                "graph without RouteOracle.derive/mutate/invalidate in the "
                "same function; cached trees would silently go stale",
            )
