"""Robustness rules: SFL006 (swallowed exceptions), SFL009 (unbounded
retry loops)."""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List, Optional, Set, Tuple

from repro.tools.check.base import FileContext, Rule, Violation

BROAD_EXCEPTIONS: Set[str] = {"Exception", "BaseException"}
#: Handler calls that count as structured handling: metric increments,
#: histogram observations, trace events.
EMISSION_CALLS: Set[str] = {"inc", "observe", "event"}

#: Terminal call-name fragments that mark a loop iteration as a (re)send
#: attempt.  Matched case-insensitively as substrings: ``_send``,
#: ``retransmit_pin``, ``retry_once`` all qualify.
RETRY_CALL_MARKERS: Tuple[str, ...] = ("send", "retransmit", "retry")


class SwallowedException(Rule):
    """Broad ``except`` must re-raise or emit structured telemetry.

    ``except Exception`` that neither re-raises nor records anything
    turns every future bug into silence.  Acceptable handlers either
    ``raise`` (possibly a wrapped error), or emit a metric/trace event so
    the failure is visible in recordings and counters.
    """

    code = "SFL006"
    summary = "broad except without re-raise or structured emission"

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_package("repro")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(node.type):
                continue
            if self._handles_structurally(node):
                continue
            caught = "bare except" if node.type is None else (
                f"except {ast.unparse(node.type)}"
                if hasattr(ast, "unparse")
                else "broad except"
            )
            yield self.violation(
                ctx,
                node,
                f"{caught} neither re-raises nor emits a metric/trace "
                "event; narrow the exception type, re-raise, or record a "
                "structured *.inc()/.observe()/.event() before continuing",
            )

    @staticmethod
    def _is_broad(type_node: Optional[ast.expr]) -> bool:
        if type_node is None:
            return True
        candidates: Iterable[ast.expr]
        if isinstance(type_node, ast.Tuple):
            candidates = type_node.elts
        else:
            candidates = (type_node,)
        for candidate in candidates:
            if isinstance(candidate, ast.Name) and candidate.id in BROAD_EXCEPTIONS:
                return True
            if (
                isinstance(candidate, ast.Attribute)
                and candidate.attr in BROAD_EXCEPTIONS
            ):
                return True
        return False

    @staticmethod
    def _handles_structurally(handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in EMISSION_CALLS
            ):
                return True
        return False


class UnboundedRetry(Rule):
    """Retry loops in ``repro.core``/``repro.sim`` must bound attempts.

    A ``while True:`` whose body both performs a send-like call and waits
    on a ``timeout(...)`` is a retransmission loop.  Without a ``break``
    or ``return`` escape, its attempt count is unbounded -- under a gray
    fault (a silently dead peer, a partitioned link) it spins forever and
    the session never reaches a terminal state.  Bound it with a ``for``
    over a :class:`repro.core.detector.RetryPolicy` (attempt cap +
    exponential backoff) or add an explicit escape.

    Heuristic scope note: nested function/class bodies are skipped, but a
    ``break`` anywhere in the (non-nested) loop body counts as an escape
    even if it belongs to an inner loop -- the rule prefers false
    negatives over noise.
    """

    code = "SFL009"
    summary = "unbounded retry loop (while True sends + waits, no escape)"

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_package("repro.core", "repro.sim")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.While):
                continue
            test = node.test
            if not (isinstance(test, ast.Constant) and test.value is True):
                continue
            sends = waits = escapes = False
            for child in self._loop_body(node):
                if isinstance(child, ast.Call):
                    name = self._terminal_name(child.func)
                    if name is not None:
                        lowered = name.lower()
                        if any(m in lowered for m in RETRY_CALL_MARKERS):
                            sends = True
                        if lowered == "timeout":
                            waits = True
                elif isinstance(child, (ast.Break, ast.Return)):
                    escapes = True
            if sends and waits and not escapes:
                yield self.violation(
                    ctx,
                    node,
                    "while True retry loop with no break/return: bound the "
                    "attempt count (RetryPolicy / for-loop) so a gray-failed "
                    "peer cannot wedge the session",
                )

    @staticmethod
    def _loop_body(loop: ast.While) -> Iterator[ast.AST]:
        """Walk the loop body, skipping nested function/class scopes."""
        stack: List[ast.AST] = list(loop.body)
        while stack:
            node = stack.pop()
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    @staticmethod
    def _terminal_name(func: ast.expr) -> Optional[str]:
        if isinstance(func, ast.Attribute):
            return func.attr
        if isinstance(func, ast.Name):
            return func.id
        return None
