"""Telemetry-hygiene rules: SFL005 (metric names), SFL011 (span
lifecycle), SFL012 (orphan events)."""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Sequence, Set, Tuple

from repro.tools.check.base import FileContext, Rule, Violation

METRIC_FACTORIES: Set[str] = {"counter", "gauge", "histogram"}
#: Registered metric namespaces; ``docs/static_analysis.md`` is the
#: authority for extending this list.
METRIC_NAMESPACES: Tuple[str, ...] = (
    "sflow.", "channel.", "monitor.", "dataflow.", "oracle.", "engine.",
    "detector.", "degrade.", "slo.",
)

#: Methods of :mod:`repro.obs.trace` that *open* a span: ``Tracer.session``
#: (root) and ``Span.child`` (nested).
SPAN_FACTORIES: Set[str] = {"session", "child"}

#: Dotted resolutions of the process-tracer factory.
TRACER_FACTORIES: Set[str] = {
    "repro.obs.trace.tracer",
    "repro.obs.tracer",
    "tracer",
}


class MetricsHygiene(Rule):
    """Metric names must be string literals in a registered namespace.

    The snapshot/merge algebra treats names as opaque stable keys; a
    computed name defeats grep-ability and review, and an off-namespace
    name escapes the dashboards and the trace CLI's summary tables.
    """

    code = "SFL005"
    summary = "metric name not a literal in a registered namespace"

    def applies_to(self, ctx: FileContext) -> bool:
        # The registry implementation itself re-creates metrics from
        # snapshot data (dynamic by design).
        return ctx.in_package("repro") and ctx.module != "repro.obs.metrics"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute) or func.attr not in METRIC_FACTORIES:
                continue
            if not node.args:
                continue
            name_arg = node.args[0]
            if not (
                isinstance(name_arg, ast.Constant)
                and isinstance(name_arg.value, str)
            ):
                yield self.violation(
                    ctx,
                    name_arg,
                    f".{func.attr}(...) metric name must be a string literal "
                    "(computed names break grep-ability and the snapshot "
                    "algebra's stable keys)",
                )
                continue
            if not name_arg.value.startswith(METRIC_NAMESPACES):
                namespaces = "|".join(ns.rstrip(".") for ns in METRIC_NAMESPACES)
                yield self.violation(
                    ctx,
                    name_arg,
                    f"metric name {name_arg.value!r} is outside the "
                    f"registered namespaces ({namespaces}); register the "
                    "namespace in docs/static_analysis.md or rename",
                )


class SpanLifecycle(Rule):
    """Tracer spans must be ``with``-managed or explicitly ended.

    A :class:`repro.obs.trace.Span` only reaches the flight recorder when
    it *ends* -- a span begun and never closed silently vanishes from
    every recording, trace render, and health report, taking its
    ``wall_seconds`` attribution with it.  The sanctioned shapes:

    * ``with tracer.session(...) as span:`` / ``with span.child(...):``
      -- the context manager ends on exit, exceptions included;
    * a local ``s = span.child(...)`` later closed via ``s.end(...)`` (or
      handed off: returned, passed to a call, re-bound onto an object);
    * immediate chaining: ``span.child("phase").end(wall_seconds=dt)``.

    A local that is never ended or handed off fires, as does a bare
    expression statement that discards the fresh span outright.
    Attribute targets (``self._span = tracer.session(...)``) are exempt:
    that is the documented cross-method lifecycle of the protocol
    drivers, where ``run()`` ends what ``__init__`` opened.
    """

    code = "SFL011"
    summary = "tracer span never ended; use `with` or call .end()"

    def applies_to(self, ctx: FileContext) -> bool:
        # The tracer implementation itself builds and hands out spans.
        return ctx.in_package("repro") and ctx.module != "repro.obs.trace"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, node)

    @staticmethod
    def _scope_nodes(fn: ast.AST) -> Iterator[ast.AST]:
        """Walk one function's own scope, skipping nested def/class bodies.

        Nested functions get their own :meth:`_check_function` pass, so
        descending into them here would double-report their spans.
        """
        stack = list(ast.iter_child_nodes(fn))
        while stack:
            node = stack.pop()
            yield node
            if not isinstance(
                node,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
            ):
                stack.extend(ast.iter_child_nodes(node))

    def _check_function(
        self, ctx: FileContext, fn: ast.AST
    ) -> Iterator[Violation]:
        nodes = list(self._scope_nodes(fn))
        span_calls = [
            node
            for node in nodes
            if isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in SPAN_FACTORIES
        ]
        if not span_calls:
            return
        parents: Dict[ast.AST, ast.AST] = {}
        for parent in [fn] + nodes:
            for child in ast.iter_child_nodes(parent):
                parents.setdefault(child, parent)
        closed = self._closed_names(nodes)
        for call in span_calls:
            attr = call.func.attr  # type: ignore[union-attr]
            parent = parents.get(call)
            if isinstance(parent, (ast.Attribute, ast.withitem)):
                # Chained (.child(x).end(...)) or context-managed.
                continue
            if isinstance(parent, ast.Expr):
                yield self.violation(
                    ctx,
                    call,
                    f".{attr}(...) span discarded without ending it; it "
                    "will never reach the recorder -- use `with`, chain "
                    ".end(...), or bind and close it",
                )
                continue
            name = self._local_target(parent)
            if name is not None and name not in closed:
                yield self.violation(
                    ctx,
                    call,
                    f"span {name!r} from .{attr}(...) is never `with`-"
                    "managed, .end()-ed, or handed off in this function; "
                    "an unclosed span never reaches the recorder",
                )

    @staticmethod
    def _local_target(parent: Optional[ast.AST]) -> Optional[str]:
        """The simple local name a span call is bound to, if any.

        Attribute/subscript/tuple targets mean a cross-method or shared
        lifecycle the per-function analysis cannot follow -- exempt.
        """
        if isinstance(parent, ast.Assign) and len(parent.targets) == 1:
            target = parent.targets[0]
            if isinstance(target, ast.Name):
                return target.id
        elif isinstance(parent, ast.AnnAssign):
            if isinstance(parent.target, ast.Name):
                return parent.target.id
        return None

    @staticmethod
    def _closed_names(nodes: Sequence[ast.AST]) -> Set[str]:
        """Local names that are ended, ``with``-managed, or handed off."""
        closed: Set[str] = set()
        for node in nodes:
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "end"
                and isinstance(node.func.value, ast.Name)
            ):
                closed.add(node.func.value.id)
            elif isinstance(node, ast.withitem) and isinstance(
                node.context_expr, ast.Name
            ):
                closed.add(node.context_expr.id)
            elif isinstance(node, (ast.Return, ast.Yield)) and node.value:
                for sub in ast.walk(node.value):
                    if isinstance(sub, ast.Name):
                        closed.add(sub.id)  # ownership moves to the caller
            elif isinstance(node, ast.Call):
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    if isinstance(arg, ast.Name):
                        closed.add(arg.id)  # handed to another owner
            elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Name):
                closed.add(node.value.id)  # re-bound (e.g. onto self)
        return closed


class OrphanEvent(Rule):
    """Point events must be emitted inside an active span.

    ``tracer().event(...)`` writes an event with ``trace=None`` and
    ``span=None`` -- invisible to per-session timelines and, worse, to the
    causal profiler (:mod:`repro.obs.causal`), which joins events to
    sessions by trace id.  Protocol and service code should emit through
    the enclosing span (``span.event(...)``); genuinely span-less
    diagnostics (the DES kernel's handler-error event, the analytic
    stream sweep) carry a justified suppression instead.
    """

    code = "SFL012"
    summary = "free-standing tracer().event(); orphan events break causal joins"

    def applies_to(self, ctx: FileContext) -> bool:
        # The obs layer itself legitimately emits span-less plumbing
        # events (SLO alert edges, replay); everything above it must not.
        return ctx.in_package("repro") and not ctx.in_package("repro.obs")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        tracer_locals = self._tracer_locals(ctx)
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "event"
            ):
                continue
            receiver = node.func.value
            if isinstance(receiver, ast.Call):
                if self._is_tracer_factory(ctx, receiver):
                    yield self.violation(
                        ctx,
                        node,
                        "tracer().event(...) emits an orphan event (trace=None, "
                        "span=None) that the causal profiler cannot join to any "
                        "session; emit through the active span "
                        "(span.event(...)) or justify with a noqa",
                    )
            elif (
                isinstance(receiver, ast.Name)
                and receiver.id in tracer_locals
            ):
                yield self.violation(
                    ctx,
                    node,
                    f"{receiver.id}.event(...) on a bare tracer emits an orphan "
                    "event (trace=None, span=None) invisible to causal "
                    "reconstruction; emit through the active span or justify "
                    "with a noqa",
                )

    def _is_tracer_factory(self, ctx: FileContext, call: ast.Call) -> bool:
        name = ctx.qualified_call_name(call.func)
        return name in TRACER_FACTORIES

    def _tracer_locals(self, ctx: FileContext) -> Set[str]:
        """Names bound directly to ``tracer()`` anywhere in the file."""
        names: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Call)
                and self._is_tracer_factory(ctx, node.value)
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        return names
