"""Shared framework for ``sflow-check``: findings, rules, file context.

Everything in here is stable API the rule modules build on: the
:class:`Violation` record, the :class:`Rule`/:class:`ProjectRule` base
classes, the :class:`FileContext` import-alias resolution, module-identity
mapping (``# sflow: module=...``) and per-line ``# sflow: noqa[CODE]``
suppression parsing.  The rule catalogue lives under
:mod:`repro.tools.check.rules`; orchestration in
:mod:`repro.tools.check.engine`.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.tools.check.dataflow import ProjectAnalysis

#: Paths matching any of these globs are skipped unless explicitly listed
#: on the command line.  The seeded rule fixtures *demonstrate* violations
#: and must not fail the repo-wide gate.
DEFAULT_EXCLUDES: Tuple[str, ...] = ("*/fixtures/*", "*/.git/*", "*/__pycache__/*")

_NOQA_RE = re.compile(
    r"#\s*sflow:\s*noqa\[(?P<codes>[A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)\]"
    r"(?P<rest>[^#]*)"
)
_MODULE_RE = re.compile(r"#\s*sflow:\s*module=(?P<module>[A-Za-z_][\w.]*)")


@dataclass(frozen=True)
class Violation:
    """One finding: a rule firing at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.code} {self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col + 1,
            "code": self.code,
            "message": self.message,
        }


class FileContext:
    """Everything a rule needs about one parsed source file."""

    def __init__(self, path: str, module: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.module = module
        self.source = source
        self.tree = tree
        #: ``alias -> dotted module`` for ``import x [as y]``.
        self.module_aliases: Dict[str, str] = {}
        #: ``local name -> dotted origin`` for ``from m import n [as y]``.
        self.imported_names: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.module_aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    self.imported_names[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def qualified_call_name(self, func: ast.expr) -> Optional[str]:
        """Resolve a call target to a dotted name through the import maps.

        ``time.perf_counter`` -> ``time.perf_counter`` (via ``import
        time``), ``pc`` -> ``time.perf_counter`` (via ``from time import
        perf_counter as pc``).  Returns ``None`` for calls on computed
        expressions -- rules fall back to terminal-name matching there.
        """
        parts: List[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            base = node.id
            if parts:
                root = self.module_aliases.get(base)
                if root is None:
                    root = self.imported_names.get(base, base)
                return ".".join([root] + list(reversed(parts)))
            return self.imported_names.get(base, base)
        return None

    def in_package(self, *prefixes: str) -> bool:
        return any(
            self.module == p or self.module.startswith(p + ".") for p in prefixes
        )


class Rule:
    """Base class: a stable code, a one-line summary, and a checker.

    Subclasses override :meth:`applies_to` (module scoping) and
    :meth:`check` (yield :class:`Violation`).  Register instances in
    :data:`repro.tools.check.rules.RULES`; ``docs/static_analysis.md``
    documents how to add one.
    """

    code: str = "SFL???"
    summary: str = ""

    def applies_to(self, ctx: FileContext) -> bool:  # pragma: no cover - default
        return True

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Violation:
        return Violation(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
        )


class ProjectRule:
    """A whole-program rule: runs once over the cross-module analysis.

    Unlike :class:`Rule`, which sees one :class:`FileContext` at a time,
    a project rule receives the :class:`~repro.tools.check.dataflow.
    ProjectAnalysis` -- symbol table, call graph and taint lattice over
    every file in the run -- and yields findings anchored in whichever
    file the hazard surfaces in.  Per-line ``noqa`` suppression still
    applies at the reported line.
    """

    code: str = "SFL???"
    summary: str = ""

    def check_project(self, analysis: "ProjectAnalysis") -> Iterator[Violation]:
        raise NotImplementedError


def module_for(path: Path, source: str) -> str:
    """Dotted module identity used for rule scoping.

    A ``# sflow: module=...`` directive in the first ten lines wins;
    otherwise the path is mapped (``src/repro/x/y.py`` -> ``repro.x.y``,
    ``tests/a/b.py`` -> ``tests.a.b``), falling back to the stem.
    """
    for line in source.splitlines()[:10]:
        match = _MODULE_RE.search(line)
        if match:
            return match.group("module")
    parts = list(path.parts)
    stem_parts: List[str] = []
    for anchor in ("repro", "tests", "benchmarks"):
        if anchor in parts:
            idx = len(parts) - 1 - parts[::-1].index(anchor)
            stem_parts = parts[idx:]
            break
    if not stem_parts:
        stem_parts = [path.name]
    stem_parts[-1] = Path(stem_parts[-1]).stem
    if stem_parts[-1] == "__init__":
        stem_parts.pop()
    return ".".join(stem_parts)


def parse_suppressions(
    path: str, source: str, known_codes: Set[str]
) -> Tuple[Dict[int, Set[str]], List[Violation]]:
    """Per-line suppressed codes plus SFL000 findings for bad suppressions."""
    suppressed: Dict[int, Set[str]] = {}
    findings: List[Violation] = []
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(line)
        if match is None:
            continue
        codes = {c.strip() for c in match.group("codes").split(",")}
        justification = match.group("rest").strip().lstrip("-—: ").strip()
        suppressed[lineno] = codes
        if not justification:
            findings.append(
                Violation(
                    path=path,
                    line=lineno,
                    col=match.start(),
                    code="SFL000",
                    message=(
                        "suppression without a justification; write "
                        "'# sflow: noqa[CODE] -- why this is safe'"
                    ),
                )
            )
        for code in codes - known_codes:
            findings.append(
                Violation(
                    path=path,
                    line=lineno,
                    col=match.start(),
                    code="SFL000",
                    message=f"suppression names unknown rule {code}",
                )
            )
    return suppressed, findings
