"""Causal critical-path profiler for flight recordings.

Usage::

    python -m repro.tools.profile run.jsonl [--session N] [--top-k K]
        [--json] [--out PATH]
    python -m repro.tools.profile diff BASELINE.jsonl CANDIDATE.jsonl
        [--max-regression 0.2] [--json] [--out PATH]

Where ``repro.tools.trace`` replays a recording and ``repro.tools.report``
grades it, this tool explains it: :mod:`repro.obs.causal` reconstructs the
per-session causal DAG (span parentage joined with ``channel.send`` /
``channel.deliver`` / ``node.activate`` message causality) and prints

* the **critical path** -- every hop from the consumer's kick-off to the
  final activation, decomposed into transmit / process / emit / backoff
  sim-time;
* **blame tables** -- top-k links and nodes by critical-path sim-time,
  plus per-phase (span) self-time vs. child-time;
* **slack** -- for off-path links, how much their latency could grow
  before the critical path moves through them.

``diff`` aligns two recordings (e.g. the fault-free arm vs. the chaos arm
of the same seeded campaign, or the same campaign before and after an
optimization) and reports per-kind latency deltas with a regression
verdict: exit 1 when the candidate's mean critical path exceeds the
baseline by more than ``--max-regression`` (default +20%).  CI runs it on
every push -- see the profile-smoke job.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.causal import (
    ProfileDiff,
    SessionProfile,
    aggregate_profiles,
    diff_recordings,
    profile_recording,
)
from repro.tools.trace import _load_checked


def _fmt(value: float) -> str:
    return f"{value:g}"


def render_session_profile(
    profile: SessionProfile, ordinal: int, *, top_k: int = 5
) -> List[str]:
    """One session's critical-path block as printable lines."""
    lines = [
        f"session {ordinal}: {profile.name} "
        f"{profile.start:g} -> {profile.end:g} "
        f"(duration {profile.duration:g}"
        + (f", outcome {profile.outcome}" if profile.outcome else "")
        + ")"
    ]
    if not profile.steps:
        lines.append("  (no causally-stamped activity in this session)")
        return lines
    lines.append(
        f"  critical path: {profile.path_duration:g} sim-time over "
        f"{len(profile.steps)} steps"
    )
    for step in profile.steps:
        where = (
            f"{step.src} -> {step.dst}"
            if step.kind in ("transmit", "initial") and step.src != step.dst
            else step.dst
        )
        lines.append(
            f"    {step.start:>10g}  {step.kind:<9} {_fmt(step.duration):>10}"
            f"  {where}"
        )
    lines.append("  blame by kind:")
    for kind, (count, total) in sorted(
        profile.kind_blame.items(), key=lambda kv: (-kv[1][1], kv[0])
    ):
        lines.append(
            f"    {kind:<9} {_fmt(total):>10}  ({count} steps)"
        )
    top_links = profile.top_links(top_k)
    if top_links:
        lines.append(f"  blame by link (top {len(top_links)}):")
        for src, dst, total in top_links:
            lines.append(f"    {_fmt(total):>10}  {src} -> {dst}")
    top_nodes = profile.top_nodes(top_k)
    if top_nodes:
        lines.append(f"  blame by node (top {len(top_nodes)}):")
        for node, total in top_nodes:
            lines.append(f"    {_fmt(total):>10}  {node}")
    if profile.link_slack:
        ranked = sorted(profile.link_slack.items(), key=lambda kv: (kv[1], kv[0]))
        lines.append(f"  off-path slack (tightest {min(top_k, len(ranked))}):")
        for (src, dst), slack in ranked[:top_k]:
            lines.append(f"    {_fmt(slack):>10}  {src} -> {dst}")
    if profile.undelivered:
        lines.append(f"  undelivered messages: {profile.undelivered}")
    lines.append("  phases (self vs. total sim-time):")
    for name, (count, total, self_time, wall) in sorted(
        profile.span_table.items(), key=lambda kv: (-kv[1][1], kv[0])
    ):
        lines.append(
            f"    {name:<22} total={_fmt(total):>8} self={_fmt(self_time):>8}"
            f" count={count}"
            + (f" wall={wall:.4f}s" if wall else "")
        )
    return lines


def render_profiles(
    profiles: List[SessionProfile],
    *,
    session: Optional[int] = None,
    top_k: int = 5,
) -> str:
    """The full profile report (all sessions + campaign rollup)."""
    lines: List[str] = ["causal critical-path profile"]
    shown = 0
    for ordinal, profile in enumerate(profiles, start=1):
        if session is not None and ordinal != session:
            continue
        shown += 1
        lines.append("")
        lines.extend(render_session_profile(profile, ordinal, top_k=top_k))
    if shown == 0:
        lines.append("  (no sessions matched)")
    if session is None and len(profiles) > 1:
        campaign = aggregate_profiles(profiles)
        lines.append("")
        lines.append(
            f"campaign: {campaign.sessions} sessions, "
            f"mean critical path {campaign.mean_path_duration:g}"
        )
        for kind, (count, total) in sorted(
            campaign.kind_blame.items(), key=lambda kv: (-kv[1][1], kv[0])
        ):
            mean = total / campaign.sessions
            lines.append(
                f"  {kind:<9} mean/session={_fmt(mean):>10}  "
                f"total={_fmt(total):>10}  ({count} steps)"
            )
        for src, dst, total in campaign.top_links(top_k):
            lines.append(f"  hot link {_fmt(total):>10}  {src} -> {dst}")
    return "\n".join(lines)


def render_diff(diff: ProfileDiff) -> str:
    """The differential report as one printable block."""
    lines = [
        "differential critical-path profile",
        f"  baseline : {diff.baseline_sessions} sessions, "
        f"mean critical path {diff.baseline_mean:g}",
        f"  candidate: {diff.candidate_sessions} sessions, "
        f"mean critical path {diff.candidate_mean:g}",
        f"  delta    : {diff.delta:+g} "
        f"({diff.relative:+.1%} vs. threshold +{diff.threshold:.0%})",
        "",
        f"  {'kind':<9} {'baseline':>12} {'candidate':>12} {'delta':>12}",
    ]
    for kind, (a, b, d) in sorted(
        diff.kind_deltas.items(), key=lambda kv: (-abs(kv[1][2]), kv[0])
    ):
        lines.append(
            f"  {kind:<9} {_fmt(a):>12} {_fmt(b):>12} {d:>+12g}"
        )
    lines.append("")
    lines.append(
        "verdict: REGRESSION" if diff.regression else "verdict: ok"
    )
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Causal critical-path profile of a flight recording."
    )
    parser.add_argument("recording", type=Path, help="recording JSONL file")
    parser.add_argument(
        "--session",
        type=int,
        default=None,
        metavar="N",
        help="only profile the Nth session (1-based, recording order)",
    )
    parser.add_argument(
        "--top-k",
        type=int,
        default=5,
        metavar="K",
        help="rows in the blame/slack tables (default 5)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the profile as JSON instead of text",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        metavar="PATH",
        help="also write the output to PATH",
    )
    return parser


def build_diff_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.profile diff",
        description="Compare the critical paths of two flight recordings.",
    )
    parser.add_argument("baseline", type=Path, help="baseline recording (A)")
    parser.add_argument("candidate", type=Path, help="candidate recording (B)")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.2,
        metavar="FRAC",
        help="fail (exit 1) when the candidate's mean critical path "
        "exceeds the baseline by more than this fraction (default 0.2)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the diff as JSON instead of text",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        metavar="PATH",
        help="also write the output to PATH",
    )
    return parser


def _emit(text: str, out: Optional[Path]) -> None:
    print(text)
    if out is not None:
        out.write_text(text + "\n", encoding="utf-8")
        print(f"wrote {out}", file=sys.stderr)


def diff_main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_diff_parser().parse_args(argv)
    baseline = _load_checked(args.baseline)
    candidate = _load_checked(args.candidate)
    if baseline is None or candidate is None:
        return 2
    diff = diff_recordings(
        baseline, candidate, threshold=args.max_regression
    )
    if args.json:
        text = json.dumps(diff.as_dict(), indent=2, sort_keys=True)
    else:
        text = render_diff(diff)
    _emit(text, args.out)
    if diff.regression:
        print(
            f"FAIL: mean critical path regressed {diff.relative:+.1%} "
            f"(threshold +{diff.threshold:.0%})",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "diff":
        return diff_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.top_k < 1:
        print("error: --top-k must be >= 1", file=sys.stderr)
        return 2
    recording = _load_checked(args.recording)
    if recording is None:
        return 2
    profiles = profile_recording(recording)
    if args.json:
        payload: Dict[str, Any] = {
            "sessions": [p.as_dict() for p in profiles],
            "campaign": aggregate_profiles(profiles).as_dict(),
        }
        text = json.dumps(payload, indent=2, sort_keys=True)
    else:
        text = render_profiles(
            profiles, session=args.session, top_k=args.top_k
        )
    _emit(text, args.out)
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI shim
    sys.exit(main())
