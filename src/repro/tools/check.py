"""``sflow-check``: the repo-specific static-analysis suite.

This codebase carries three load-bearing invariants that ordinary linters
cannot see:

* **Determinism.**  DES runs must be bit-identical under parallel fan-out
  (the serial/parallel evaluation split of ``repro.eval`` relies on it),
  so protocol and evaluation code must never reach for ambient
  randomness or wall clocks.
* **Oracle discipline.**  Every routing-tree computation must flow
  through the epoch-invalidated :class:`repro.routing.oracle.RouteOracle`
  -- a direct ``shortest_widest_tree`` call silently reintroduces the
  O(N^4) recomputation the perf tentpole removed, and a topology mutation
  without an epoch bump silently serves stale trees.
* **Telemetry hygiene.**  All metrics live in the namespaced registry of
  :mod:`repro.obs.metrics`; dynamic or off-namespace names break the
  snapshot/merge algebra the parallel sweeps depend on.

``sflow-check`` walks Python sources, parses them once, and runs a
registry of AST rules scoped by dotted module name.  It is pure stdlib --
no third-party linter framework -- so it runs anywhere the repo does.

Rule catalogue (see ``docs/static_analysis.md`` for the full rationale):

=======  ==================================================================
SFL000   suppression hygiene: ``# sflow: noqa[...]`` needs a justification
SFL001   sim-time purity: no wall clocks inside ``repro.sim``/``repro.core``
SFL002   determinism: no ambient randomness in sim/core/eval
SFL003   oracle bypass: raw tree computations outside ``repro.routing``
SFL004   epoch discipline: graph mutation without oracle invalidation
SFL005   metrics hygiene: literal, namespaced metric names
SFL006   swallowed exceptions: broad ``except`` without re-raise/telemetry
SFL007   float ``==``: computed float equality in tests
SFL008   mutable default arguments
SFL009   unbounded retry loops: ``while True`` send+wait without escape
SFL010   ambient numpy randomness in sim/core/routing/eval
SFL011   span lifecycle: tracer spans must be ``with``-managed or ended
SFL012   orphan events: ``tracer().event()`` outside any span breaks
         causal reconstruction
=======  ==================================================================

Suppression: append ``# sflow: noqa[SFL00X] -- justification`` to the
flagged line.  A suppression without a justification is itself a
violation (SFL000), so every waiver in the tree documents *why*.

Fixture files can pin the module identity the scoping logic sees with a
``# sflow: module=repro.sim.something`` header comment -- that is how the
seeded fixtures under ``tests/tools/fixtures/`` exercise package-scoped
rules from outside the package.

Exit codes: 0 clean, 1 violations found, 2 usage or parse errors.
"""

from __future__ import annotations

import argparse
import ast
import json
import re
import sys
from dataclasses import dataclass
from decimal import Decimal, InvalidOperation
from fnmatch import fnmatch
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Violation",
    "Rule",
    "FileContext",
    "RULES",
    "rule_codes",
    "check_source",
    "check_file",
    "check_paths",
    "main",
]

#: Paths matching any of these globs are skipped unless explicitly listed
#: on the command line.  The seeded rule fixtures *demonstrate* violations
#: and must not fail the repo-wide gate.
DEFAULT_EXCLUDES: Tuple[str, ...] = ("*/fixtures/*", "*/.git/*", "*/__pycache__/*")

_NOQA_RE = re.compile(
    r"#\s*sflow:\s*noqa\[(?P<codes>[A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)\]"
    r"(?P<rest>[^#]*)"
)
_MODULE_RE = re.compile(r"#\s*sflow:\s*module=(?P<module>[A-Za-z_][\w.]*)")


@dataclass(frozen=True)
class Violation:
    """One finding: a rule firing at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.code} {self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col + 1,
            "code": self.code,
            "message": self.message,
        }


class FileContext:
    """Everything a rule needs about one parsed source file."""

    def __init__(self, path: str, module: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.module = module
        self.source = source
        self.tree = tree
        #: ``alias -> dotted module`` for ``import x [as y]``.
        self.module_aliases: Dict[str, str] = {}
        #: ``local name -> dotted origin`` for ``from m import n [as y]``.
        self.imported_names: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.module_aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    self.imported_names[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def qualified_call_name(self, func: ast.expr) -> Optional[str]:
        """Resolve a call target to a dotted name through the import maps.

        ``time.perf_counter`` -> ``time.perf_counter`` (via ``import
        time``), ``pc`` -> ``time.perf_counter`` (via ``from time import
        perf_counter as pc``).  Returns ``None`` for calls on computed
        expressions -- rules fall back to terminal-name matching there.
        """
        parts: List[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            base = node.id
            if parts:
                root = self.module_aliases.get(base)
                if root is None:
                    root = self.imported_names.get(base, base)
                return ".".join([root] + list(reversed(parts)))
            return self.imported_names.get(base, base)
        return None

    def in_package(self, *prefixes: str) -> bool:
        return any(
            self.module == p or self.module.startswith(p + ".") for p in prefixes
        )


class Rule:
    """Base class: a stable code, a one-line summary, and a checker.

    Subclasses override :meth:`applies_to` (module scoping) and
    :meth:`check` (yield :class:`Violation`).  Register instances in
    :data:`RULES`; ``docs/static_analysis.md`` documents how to add one.
    """

    code: str = "SFL???"
    summary: str = ""

    def applies_to(self, ctx: FileContext) -> bool:  # pragma: no cover - default
        return True

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Violation:
        return Violation(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
        )


# ---------------------------------------------------------------------------
# SFL001 -- sim-time purity
# ---------------------------------------------------------------------------

#: Wall-clock reads that would leak host time into protocol/sim results.
_WALL_CLOCK_CALLS: Set[str] = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


class SimTimePurity(Rule):
    """No wall-clock reads inside ``repro.sim`` / ``repro.core``.

    Simulated results must be functions of the DES clock and the inputs
    alone.  Host timing belongs behind the injectable
    :class:`repro.obs.clock.Stopwatch` (or the ``repro.obs`` timer
    helpers), where tests can substitute a fake clock.
    """

    code = "SFL001"
    summary = "wall-clock read in sim/protocol code; inject a repro.obs clock"

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_package("repro.sim", "repro.core")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.qualified_call_name(node.func)
            if name in _WALL_CLOCK_CALLS:
                yield self.violation(
                    ctx,
                    node,
                    f"wall-clock call {name}() in {ctx.module}; route timing "
                    "through repro.obs.clock.Stopwatch (injectable) or a "
                    "SimClock so results stay deterministic",
                )


# ---------------------------------------------------------------------------
# SFL002 -- injected randomness
# ---------------------------------------------------------------------------

#: Module-level functions of :mod:`random` that draw from the shared,
#: ambient Mersenne Twister.  (``random.Random`` with a seed is the
#: sanctioned construction; ``SystemRandom`` is never acceptable in
#: deterministic code.)
_AMBIENT_RANDOM: Set[str] = {
    "random.betavariate", "random.choice", "random.choices",
    "random.expovariate", "random.gammavariate", "random.gauss",
    "random.getrandbits", "random.lognormvariate", "random.normalvariate",
    "random.paretovariate", "random.randbytes", "random.randint",
    "random.random", "random.randrange", "random.sample", "random.seed",
    "random.shuffle", "random.triangular", "random.uniform",
    "random.vonmisesvariate", "random.weibullvariate",
}


class InjectedRandomness(Rule):
    """RNGs in sim/core/eval must be seeded and injected.

    Ambient ``random.*`` calls (and unseeded ``random.Random()``) tie
    results to interpreter-global state, which breaks bit-identical
    parallel fan-out: a forked worker would consume a different stream
    than the serial loop.
    """

    code = "SFL002"
    summary = "ambient or unseeded randomness in deterministic code"

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_package("repro.sim", "repro.core", "repro.eval")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.qualified_call_name(node.func)
            if name in _AMBIENT_RANDOM:
                yield self.violation(
                    ctx,
                    node,
                    f"ambient {name}() draws from interpreter-global state; "
                    "accept a seeded random.Random and call its methods",
                )
            elif name == "random.SystemRandom":
                yield self.violation(
                    ctx,
                    node,
                    "random.SystemRandom is never reproducible; use a seeded "
                    "random.Random",
                )
            elif name == "random.Random" and not node.args and not node.keywords:
                yield self.violation(
                    ctx,
                    node,
                    "unseeded random.Random() seeds from the OS; pass an "
                    "explicit seed derived from the experiment config",
                )


# ---------------------------------------------------------------------------
# SFL003 -- oracle bypass
# ---------------------------------------------------------------------------

_TREE_FUNCTIONS: Set[str] = {"shortest_widest_tree", "widest_shortest_tree"}


class OracleBypass(Rule):
    """Routing trees outside ``repro.routing`` must come from RouteOracle.

    A direct tree computation skips the epoch-keyed cache -- it is both a
    perf regression (the O(N^4) recomputation PR 2 removed) and a
    correctness hazard: the caller sees a tree the invalidation protocol
    does not know about.  Tests are exempt (the oracle-equivalence
    property tests *must* call the raw functions).
    """

    code = "SFL003"
    summary = "direct routing-tree computation bypasses RouteOracle"

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_package("repro") and not ctx.in_package("repro.routing")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.qualified_call_name(node.func)
            terminal = name.rsplit(".", 1)[-1] if name else None
            if terminal is None and isinstance(node.func, ast.Attribute):
                terminal = node.func.attr
            if terminal in _TREE_FUNCTIONS:
                yield self.violation(
                    ctx,
                    node,
                    f"direct {terminal}() call outside repro.routing; go "
                    "through RouteOracle.default().tree(...) so the result "
                    "is cached and epoch-invalidated",
                )


# ---------------------------------------------------------------------------
# SFL004 -- epoch discipline
# ---------------------------------------------------------------------------

_GRAPH_MUTATORS: Set[str] = {
    "add_instance", "add_link", "remove_instance", "remove_link",
}
_INVALIDATORS: Set[str] = {"derive", "mutate", "invalidate"}
#: Constructors whose results are *fresh* graphs: mutating a graph built
#: inside the same function is initialisation, not topology mutation.
_FRESH_GRAPH_CALLS: Set[str] = {
    "OverlayGraph", "Underlay", "UnderlayGraph", "subgraph", "copy",
}


class EpochDiscipline(Rule):
    """Overlay/underlay mutation needs a paired oracle invalidation.

    Mutating a graph that existed before the function ran changes a
    topology the :class:`RouteOracle` may hold cached trees for.  The
    same function must therefore tell the oracle (``derive``/``mutate``/
    ``invalidate``).  Graphs *constructed* in the function (``result =
    OverlayGraph()``; ``sub = overlay.subgraph(...)``) are exempt while
    being filled in -- they have no cached epoch yet.
    """

    code = "SFL004"
    summary = "graph mutation without RouteOracle derive/mutate/invalidate"

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_package("repro") and ctx.module not in (
            "repro.network.overlay",
            "repro.network.underlay",
        )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, node)

    def _check_function(
        self, ctx: FileContext, fn: ast.AST
    ) -> Iterator[Violation]:
        fresh: Set[str] = set()
        mutations: List[Tuple[ast.Call, str]] = []
        invalidated = False
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                callee = node.value.func
                callee_name = (
                    callee.id if isinstance(callee, ast.Name)
                    else callee.attr if isinstance(callee, ast.Attribute)
                    else None
                )
                if callee_name in _FRESH_GRAPH_CALLS:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            fresh.add(target.id)
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr in _INVALIDATORS:
                invalidated = True
            if func.attr in _GRAPH_MUTATORS and isinstance(func.value, ast.Name):
                mutations.append((node, func.value.id))
        if invalidated:
            return
        for call, target in mutations:
            if target in fresh:
                continue
            yield self.violation(
                ctx,
                call,
                f"{target}.{call.func.attr}(...) mutates a pre-existing "
                "graph without RouteOracle.derive/mutate/invalidate in the "
                "same function; cached trees would silently go stale",
            )


# ---------------------------------------------------------------------------
# SFL005 -- metrics hygiene
# ---------------------------------------------------------------------------

_METRIC_FACTORIES: Set[str] = {"counter", "gauge", "histogram"}
#: Registered metric namespaces; ``docs/static_analysis.md`` is the
#: authority for extending this list.
METRIC_NAMESPACES: Tuple[str, ...] = (
    "sflow.", "channel.", "monitor.", "dataflow.", "oracle.", "engine.",
    "detector.", "degrade.", "slo.",
)


class MetricsHygiene(Rule):
    """Metric names must be string literals in a registered namespace.

    The snapshot/merge algebra treats names as opaque stable keys; a
    computed name defeats grep-ability and review, and an off-namespace
    name escapes the dashboards and the trace CLI's summary tables.
    """

    code = "SFL005"
    summary = "metric name not a literal in a registered namespace"

    def applies_to(self, ctx: FileContext) -> bool:
        # The registry implementation itself re-creates metrics from
        # snapshot data (dynamic by design).
        return ctx.in_package("repro") and ctx.module != "repro.obs.metrics"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute) or func.attr not in _METRIC_FACTORIES:
                continue
            if not node.args:
                continue
            name_arg = node.args[0]
            if not (
                isinstance(name_arg, ast.Constant)
                and isinstance(name_arg.value, str)
            ):
                yield self.violation(
                    ctx,
                    name_arg,
                    f".{func.attr}(...) metric name must be a string literal "
                    "(computed names break grep-ability and the snapshot "
                    "algebra's stable keys)",
                )
                continue
            if not name_arg.value.startswith(METRIC_NAMESPACES):
                namespaces = "|".join(ns.rstrip(".") for ns in METRIC_NAMESPACES)
                yield self.violation(
                    ctx,
                    name_arg,
                    f"metric name {name_arg.value!r} is outside the "
                    f"registered namespaces ({namespaces}); register the "
                    "namespace in docs/static_analysis.md or rename",
                )


# ---------------------------------------------------------------------------
# SFL006 -- swallowed exceptions
# ---------------------------------------------------------------------------

_BROAD_EXCEPTIONS: Set[str] = {"Exception", "BaseException"}
#: Handler calls that count as structured handling: metric increments,
#: histogram observations, trace events.
_EMISSION_CALLS: Set[str] = {"inc", "observe", "event"}


class SwallowedException(Rule):
    """Broad ``except`` must re-raise or emit structured telemetry.

    ``except Exception`` that neither re-raises nor records anything
    turns every future bug into silence.  Acceptable handlers either
    ``raise`` (possibly a wrapped error), or emit a metric/trace event so
    the failure is visible in recordings and counters.
    """

    code = "SFL006"
    summary = "broad except without re-raise or structured emission"

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_package("repro")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(node.type):
                continue
            if self._handles_structurally(node):
                continue
            caught = "bare except" if node.type is None else (
                f"except {ast.unparse(node.type)}"
                if hasattr(ast, "unparse")
                else "broad except"
            )
            yield self.violation(
                ctx,
                node,
                f"{caught} neither re-raises nor emits a metric/trace "
                "event; narrow the exception type, re-raise, or record a "
                "structured *.inc()/.observe()/.event() before continuing",
            )

    @staticmethod
    def _is_broad(type_node: Optional[ast.expr]) -> bool:
        if type_node is None:
            return True
        candidates: Iterable[ast.expr]
        if isinstance(type_node, ast.Tuple):
            candidates = type_node.elts
        else:
            candidates = (type_node,)
        for candidate in candidates:
            if isinstance(candidate, ast.Name) and candidate.id in _BROAD_EXCEPTIONS:
                return True
            if (
                isinstance(candidate, ast.Attribute)
                and candidate.attr in _BROAD_EXCEPTIONS
            ):
                return True
        return False

    @staticmethod
    def _handles_structurally(handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _EMISSION_CALLS
            ):
                return True
        return False


# ---------------------------------------------------------------------------
# SFL007 -- float equality in tests
# ---------------------------------------------------------------------------


class FloatEquality(Rule):
    """No ``==``/``!=`` on *computed* floats in tests.

    Exact equality against a stored value is fine in a deterministic DES
    (and the suite leans on it); equality against an arithmetic
    expression (``x == 0.1 + 0.2``) or a decimal literal the binary
    format cannot represent exactly (``x == 0.3``) is a rounding-error
    time bomb.  Use ``pytest.approx`` or ``math.isclose``.
    """

    code = "SFL007"
    summary = "computed-float equality in a test; use pytest.approx"

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_package("tests")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            for operand in [node.left] + node.comparators:
                problem = self._float_hazard(ctx, operand)
                if problem:
                    yield self.violation(
                        ctx,
                        node,
                        f"{problem}; compare with pytest.approx(...) or "
                        "math.isclose(...) instead of ==",
                    )
                    break

    def _float_hazard(self, ctx: FileContext, node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.BinOp) and self._contains_float_arith(node):
            return "float arithmetic inside an equality comparison"
        literal = self._float_literal(node)
        if literal is not None and not self._exactly_representable(ctx, node, literal):
            return (
                f"float literal {literal!r} has no exact binary "
                "representation, so computed values will miss it"
            )
        return None

    @staticmethod
    def _float_literal(node: ast.expr) -> Optional[float]:
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
            node = node.operand
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return node.value
        return None

    @classmethod
    def _contains_float_arith(cls, node: ast.BinOp) -> bool:
        has_float = False
        for sub in ast.walk(node):
            if isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Div):
                return True
            if isinstance(sub, ast.Constant) and isinstance(sub.value, float):
                has_float = True
        return has_float

    def _exactly_representable(
        self, ctx: FileContext, node: ast.expr, value: float
    ) -> bool:
        segment = ast.get_source_segment(ctx.source, node)
        if segment is None:
            return True  # cannot see the literal text; give the benefit
        text = segment.lstrip("+- \t")
        try:
            return Decimal(text) == Decimal(value)
        except (InvalidOperation, ValueError):
            return True


# ---------------------------------------------------------------------------
# SFL008 -- mutable default arguments
# ---------------------------------------------------------------------------

_MUTABLE_FACTORIES: Set[str] = {
    "list", "dict", "set", "bytearray", "defaultdict", "OrderedDict", "deque",
}


class MutableDefault(Rule):
    """No mutable default arguments, anywhere.

    A ``def f(x=[])`` default is created once and shared across calls --
    in a simulator that is cross-run state leakage, the exact class of
    bug the determinism tests exist to catch.  Use ``None`` plus an
    in-body default (or ``dataclasses.field(default_factory=...)``).
    """

    code = "SFL008"
    summary = "mutable default argument"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            args = node.args
            for default in list(args.defaults) + [
                d for d in args.kw_defaults if d is not None
            ]:
                if self._is_mutable(default):
                    yield self.violation(
                        ctx,
                        default,
                        f"mutable default argument in {node.name}(); the "
                        "object is shared across calls -- default to None "
                        "and construct inside the body",
                    )

    @staticmethod
    def _is_mutable(node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = (
                func.id if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute)
                else None
            )
            return name in _MUTABLE_FACTORIES
        return False


# ---------------------------------------------------------------------------
# SFL009 -- unbounded retry loops
# ---------------------------------------------------------------------------

#: Terminal call-name fragments that mark a loop iteration as a (re)send
#: attempt.  Matched case-insensitively as substrings: ``_send``,
#: ``retransmit_pin``, ``retry_once`` all qualify.
_RETRY_CALL_MARKERS: Tuple[str, ...] = ("send", "retransmit", "retry")


class UnboundedRetry(Rule):
    """Retry loops in ``repro.core``/``repro.sim`` must bound attempts.

    A ``while True:`` whose body both performs a send-like call and waits
    on a ``timeout(...)`` is a retransmission loop.  Without a ``break``
    or ``return`` escape, its attempt count is unbounded -- under a gray
    fault (a silently dead peer, a partitioned link) it spins forever and
    the session never reaches a terminal state.  Bound it with a ``for``
    over a :class:`repro.core.detector.RetryPolicy` (attempt cap +
    exponential backoff) or add an explicit escape.

    Heuristic scope note: nested function/class bodies are skipped, but a
    ``break`` anywhere in the (non-nested) loop body counts as an escape
    even if it belongs to an inner loop -- the rule prefers false
    negatives over noise.
    """

    code = "SFL009"
    summary = "unbounded retry loop (while True sends + waits, no escape)"

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_package("repro.core", "repro.sim")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.While):
                continue
            test = node.test
            if not (isinstance(test, ast.Constant) and test.value is True):
                continue
            sends = waits = escapes = False
            for child in self._loop_body(node):
                if isinstance(child, ast.Call):
                    name = self._terminal_name(child.func)
                    if name is not None:
                        lowered = name.lower()
                        if any(m in lowered for m in _RETRY_CALL_MARKERS):
                            sends = True
                        if lowered == "timeout":
                            waits = True
                elif isinstance(child, (ast.Break, ast.Return)):
                    escapes = True
            if sends and waits and not escapes:
                yield self.violation(
                    ctx,
                    node,
                    "while True retry loop with no break/return: bound the "
                    "attempt count (RetryPolicy / for-loop) so a gray-failed "
                    "peer cannot wedge the session",
                )

    @staticmethod
    def _loop_body(loop: ast.While) -> Iterator[ast.AST]:
        """Walk the loop body, skipping nested function/class scopes."""
        stack: List[ast.AST] = list(loop.body)
        while stack:
            node = stack.pop()
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    @staticmethod
    def _terminal_name(func: ast.expr) -> Optional[str]:
        if isinstance(func, ast.Attribute):
            return func.attr
        if isinstance(func, ast.Name):
            return func.id
        return None


# ---------------------------------------------------------------------------
# SFL010 -- ambient numpy randomness
# ---------------------------------------------------------------------------

#: Seeded-generator constructors of :mod:`numpy.random` -- sanctioned
#: *when called with arguments* (an explicit seed / bit generator).
#: Called bare they seed from the OS, which is exactly the ambient state
#: this rule exists to keep out of deterministic code.
_NUMPY_SEEDED_CONSTRUCTS: Set[str] = {
    "default_rng",
    "Generator",
    "RandomState",
    "SeedSequence",
    "MT19937",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
}


class AmbientNumpyRandomness(Rule):
    """No ambient ``numpy.random`` state in deterministic code.

    Module-level ``numpy.random.*`` calls (``rand``, ``seed``,
    ``shuffle``, ...) draw from or mutate the interpreter-global legacy
    ``RandomState`` -- the numpy twin of SFL002's ambient ``random.*``.
    The routing kernel's batched results (and with them every parallel
    sweep) are only bit-identical because nothing in the hot packages
    touches that shared stream.  Seeded generator constructions
    (``default_rng(seed)``, ``Generator(PCG64(seed))``, ...) are the
    sanctioned alternative and stay legal -- but only *with* arguments;
    bare ``default_rng()`` seeds from the OS.
    """

    code = "SFL010"
    summary = "ambient numpy.random state in deterministic code"

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_package(
            "repro.sim", "repro.core", "repro.routing", "repro.eval"
        )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.qualified_call_name(node.func)
            if name is None or not name.startswith("numpy.random."):
                continue
            terminal = name.rsplit(".", 1)[1]
            if terminal in _NUMPY_SEEDED_CONSTRUCTS:
                if node.args or node.keywords:
                    continue  # explicitly seeded construction
                yield self.violation(
                    ctx,
                    node,
                    f"bare numpy.random.{terminal}() seeds from the OS; "
                    "pass an explicit seed derived from the experiment "
                    "config",
                )
                continue
            yield self.violation(
                ctx,
                node,
                f"ambient numpy.random.{terminal}() uses interpreter-"
                "global state; construct a seeded numpy Generator "
                "(numpy.random.default_rng(seed)) and call its methods",
            )


# ---------------------------------------------------------------------------
# SFL011 -- span lifecycle
# ---------------------------------------------------------------------------

#: Methods of :mod:`repro.obs.trace` that *open* a span: ``Tracer.session``
#: (root) and ``Span.child`` (nested).
_SPAN_FACTORIES: Set[str] = {"session", "child"}


class SpanLifecycle(Rule):
    """Tracer spans must be ``with``-managed or explicitly ended.

    A :class:`repro.obs.trace.Span` only reaches the flight recorder when
    it *ends* -- a span begun and never closed silently vanishes from
    every recording, trace render, and health report, taking its
    ``wall_seconds`` attribution with it.  The sanctioned shapes:

    * ``with tracer.session(...) as span:`` / ``with span.child(...):``
      -- the context manager ends on exit, exceptions included;
    * a local ``s = span.child(...)`` later closed via ``s.end(...)`` (or
      handed off: returned, passed to a call, re-bound onto an object);
    * immediate chaining: ``span.child("phase").end(wall_seconds=dt)``.

    A local that is never ended or handed off fires, as does a bare
    expression statement that discards the fresh span outright.
    Attribute targets (``self._span = tracer.session(...)``) are exempt:
    that is the documented cross-method lifecycle of the protocol
    drivers, where ``run()`` ends what ``__init__`` opened.
    """

    code = "SFL011"
    summary = "tracer span never ended; use `with` or call .end()"

    def applies_to(self, ctx: FileContext) -> bool:
        # The tracer implementation itself builds and hands out spans.
        return ctx.in_package("repro") and ctx.module != "repro.obs.trace"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, node)

    @staticmethod
    def _scope_nodes(fn: ast.AST) -> Iterator[ast.AST]:
        """Walk one function's own scope, skipping nested def/class bodies.

        Nested functions get their own :meth:`_check_function` pass, so
        descending into them here would double-report their spans.
        """
        stack: List[ast.AST] = list(ast.iter_child_nodes(fn))
        while stack:
            node = stack.pop()
            yield node
            if not isinstance(
                node,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
            ):
                stack.extend(ast.iter_child_nodes(node))

    def _check_function(
        self, ctx: FileContext, fn: ast.AST
    ) -> Iterator[Violation]:
        nodes = list(self._scope_nodes(fn))
        span_calls = [
            node
            for node in nodes
            if isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _SPAN_FACTORIES
        ]
        if not span_calls:
            return
        parents: Dict[ast.AST, ast.AST] = {}
        for parent in [fn] + nodes:
            for child in ast.iter_child_nodes(parent):
                parents.setdefault(child, parent)
        closed = self._closed_names(nodes)
        for call in span_calls:
            attr = call.func.attr  # type: ignore[union-attr]
            parent = parents.get(call)
            if isinstance(parent, (ast.Attribute, ast.withitem)):
                # Chained (.child(x).end(...)) or context-managed.
                continue
            if isinstance(parent, ast.Expr):
                yield self.violation(
                    ctx,
                    call,
                    f".{attr}(...) span discarded without ending it; it "
                    "will never reach the recorder -- use `with`, chain "
                    ".end(...), or bind and close it",
                )
                continue
            name = self._local_target(parent)
            if name is not None and name not in closed:
                yield self.violation(
                    ctx,
                    call,
                    f"span {name!r} from .{attr}(...) is never `with`-"
                    "managed, .end()-ed, or handed off in this function; "
                    "an unclosed span never reaches the recorder",
                )

    @staticmethod
    def _local_target(parent: Optional[ast.AST]) -> Optional[str]:
        """The simple local name a span call is bound to, if any.

        Attribute/subscript/tuple targets mean a cross-method or shared
        lifecycle the per-function analysis cannot follow -- exempt.
        """
        if isinstance(parent, ast.Assign) and len(parent.targets) == 1:
            target = parent.targets[0]
            if isinstance(target, ast.Name):
                return target.id
        elif isinstance(parent, ast.AnnAssign):
            if isinstance(parent.target, ast.Name):
                return parent.target.id
        return None

    @staticmethod
    def _closed_names(nodes: Sequence[ast.AST]) -> Set[str]:
        """Local names that are ended, ``with``-managed, or handed off."""
        closed: Set[str] = set()
        for node in nodes:
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "end"
                and isinstance(node.func.value, ast.Name)
            ):
                closed.add(node.func.value.id)
            elif isinstance(node, ast.withitem) and isinstance(
                node.context_expr, ast.Name
            ):
                closed.add(node.context_expr.id)
            elif isinstance(node, (ast.Return, ast.Yield)) and node.value:
                for sub in ast.walk(node.value):
                    if isinstance(sub, ast.Name):
                        closed.add(sub.id)  # ownership moves to the caller
            elif isinstance(node, ast.Call):
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    if isinstance(arg, ast.Name):
                        closed.add(arg.id)  # handed to another owner
            elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Name):
                closed.add(node.value.id)  # re-bound (e.g. onto self)
        return closed


# ---------------------------------------------------------------------------
# SFL012 -- orphan point events
# ---------------------------------------------------------------------------

#: Dotted resolutions of the process-tracer factory.
_TRACER_FACTORIES: Set[str] = {
    "repro.obs.trace.tracer",
    "repro.obs.tracer",
    "tracer",
}


class OrphanEvent(Rule):
    """Point events must be emitted inside an active span.

    ``tracer().event(...)`` writes an event with ``trace=None`` and
    ``span=None`` -- invisible to per-session timelines and, worse, to the
    causal profiler (:mod:`repro.obs.causal`), which joins events to
    sessions by trace id.  Protocol and service code should emit through
    the enclosing span (``span.event(...)``); genuinely span-less
    diagnostics (the DES kernel's handler-error event, the analytic
    stream sweep) carry a justified suppression instead.
    """

    code = "SFL012"
    summary = "free-standing tracer().event(); orphan events break causal joins"

    def applies_to(self, ctx: FileContext) -> bool:
        # The obs layer itself legitimately emits span-less plumbing
        # events (SLO alert edges, replay); everything above it must not.
        return ctx.in_package("repro") and not ctx.in_package("repro.obs")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        tracer_locals = self._tracer_locals(ctx)
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "event"
            ):
                continue
            receiver = node.func.value
            if isinstance(receiver, ast.Call):
                if self._is_tracer_factory(ctx, receiver):
                    yield self.violation(
                        ctx,
                        node,
                        "tracer().event(...) emits an orphan event (trace=None, "
                        "span=None) that the causal profiler cannot join to any "
                        "session; emit through the active span "
                        "(span.event(...)) or justify with a noqa",
                    )
            elif (
                isinstance(receiver, ast.Name)
                and receiver.id in tracer_locals
            ):
                yield self.violation(
                    ctx,
                    node,
                    f"{receiver.id}.event(...) on a bare tracer emits an orphan "
                    "event (trace=None, span=None) invisible to causal "
                    "reconstruction; emit through the active span or justify "
                    "with a noqa",
                )

    def _is_tracer_factory(self, ctx: FileContext, call: ast.Call) -> bool:
        name = ctx.qualified_call_name(call.func)
        return name in _TRACER_FACTORIES

    def _tracer_locals(self, ctx: FileContext) -> Set[str]:
        """Names bound directly to ``tracer()`` anywhere in the file."""
        names: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Call)
                and self._is_tracer_factory(ctx, node.value)
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        return names


# ---------------------------------------------------------------------------
# registry / engine
# ---------------------------------------------------------------------------

RULES: Tuple[Rule, ...] = (
    SimTimePurity(),
    InjectedRandomness(),
    OracleBypass(),
    EpochDiscipline(),
    MetricsHygiene(),
    SwallowedException(),
    FloatEquality(),
    MutableDefault(),
    UnboundedRetry(),
    AmbientNumpyRandomness(),
    SpanLifecycle(),
    OrphanEvent(),
)


def rule_codes() -> List[str]:
    return [rule.code for rule in RULES]


def _module_for(path: Path, source: str) -> str:
    """Dotted module identity used for rule scoping.

    A ``# sflow: module=...`` directive in the first ten lines wins;
    otherwise the path is mapped (``src/repro/x/y.py`` -> ``repro.x.y``,
    ``tests/a/b.py`` -> ``tests.a.b``), falling back to the stem.
    """
    for line in source.splitlines()[:10]:
        match = _MODULE_RE.search(line)
        if match:
            return match.group("module")
    parts = list(path.parts)
    stem_parts: List[str] = []
    for anchor in ("repro", "tests", "benchmarks"):
        if anchor in parts:
            idx = len(parts) - 1 - parts[::-1].index(anchor)
            stem_parts = parts[idx:]
            break
    if not stem_parts:
        stem_parts = [path.name]
    stem_parts[-1] = Path(stem_parts[-1]).stem
    if stem_parts[-1] == "__init__":
        stem_parts.pop()
    return ".".join(stem_parts)


def _suppressions(
    path: str, source: str
) -> Tuple[Dict[int, Set[str]], List[Violation]]:
    """Per-line suppressed codes plus SFL000 findings for bad suppressions."""
    suppressed: Dict[int, Set[str]] = {}
    findings: List[Violation] = []
    known = set(rule_codes()) | {"SFL000"}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(line)
        if match is None:
            continue
        codes = {c.strip() for c in match.group("codes").split(",")}
        justification = match.group("rest").strip().lstrip("-—: ").strip()
        suppressed[lineno] = codes
        if not justification:
            findings.append(
                Violation(
                    path=path,
                    line=lineno,
                    col=match.start(),
                    code="SFL000",
                    message=(
                        "suppression without a justification; write "
                        "'# sflow: noqa[CODE] -- why this is safe'"
                    ),
                )
            )
        for code in codes - known:
            findings.append(
                Violation(
                    path=path,
                    line=lineno,
                    col=match.start(),
                    code="SFL000",
                    message=f"suppression names unknown rule {code}",
                )
            )
    return suppressed, findings


def check_source(
    source: str,
    *,
    module: str,
    path: str = "<string>",
    select: Optional[Set[str]] = None,
    ignore: Optional[Set[str]] = None,
) -> List[Violation]:
    """Run every applicable rule over one source text."""
    tree = ast.parse(source, filename=path)
    ctx = FileContext(path, module, source, tree)
    suppressed, findings = _suppressions(path, source)
    for rule in RULES:
        if select is not None and rule.code not in select:
            continue
        if ignore is not None and rule.code in ignore:
            continue
        if not rule.applies_to(ctx):
            continue
        for violation in rule.check(ctx):
            if violation.code in suppressed.get(violation.line, ()):
                continue
            findings.append(violation)
    if select is not None:
        findings = [f for f in findings if f.code in select or f.code == "SFL000"]
    if ignore is not None:
        findings = [f for f in findings if f.code not in ignore]
    return sorted(findings, key=lambda v: (v.path, v.line, v.col, v.code))


def check_file(
    path: Path,
    *,
    select: Optional[Set[str]] = None,
    ignore: Optional[Set[str]] = None,
) -> List[Violation]:
    source = path.read_text(encoding="utf-8")
    module = _module_for(path, source)
    return check_source(
        source, module=module, path=str(path), select=select, ignore=ignore
    )


def _iter_python_files(
    paths: Sequence[Path], excludes: Sequence[str]
) -> Iterator[Path]:
    def excluded(p: Path) -> bool:
        posix = p.as_posix()
        return any(fnmatch(posix, pattern) for pattern in excludes)

    for path in paths:
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if not excluded(sub):
                    yield sub
        elif path.suffix == ".py":
            # Explicitly named files are checked even inside excluded dirs.
            yield path


def check_paths(
    paths: Sequence[Path],
    *,
    select: Optional[Set[str]] = None,
    ignore: Optional[Set[str]] = None,
    excludes: Sequence[str] = DEFAULT_EXCLUDES,
) -> Tuple[List[Violation], List[str]]:
    """Check every ``*.py`` under ``paths``.

    Returns ``(violations, parse_errors)``; parse errors are fatal for
    the CLI (exit 2) because an unparseable file is unlintable.
    """
    violations: List[Violation] = []
    errors: List[str] = []
    for file_path in _iter_python_files(paths, excludes):
        try:
            violations.extend(
                check_file(file_path, select=select, ignore=ignore)
            )
        except SyntaxError as exc:
            errors.append(f"{file_path}:{exc.lineno or 0}: syntax error: {exc.msg}")
    return violations, errors


def _parse_codes(text: Optional[str]) -> Optional[Set[str]]:
    if not text:
        return None
    codes = {c.strip().upper() for c in text.split(",") if c.strip()}
    known = set(rule_codes()) | {"SFL000"}
    unknown = codes - known
    if unknown:
        raise SystemExit(
            f"sflow-check: unknown rule code(s): {', '.join(sorted(unknown))}"
        )
    return codes


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="sflow-check",
        description=(
            "Repo-specific static analysis: determinism, sim-time purity "
            "and oracle/metrics discipline for the sFlow reproduction."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", type=Path, help="files or directories to check"
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable JSON output"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    parser.add_argument(
        "--select", metavar="CODES", help="comma-separated codes to run exclusively"
    )
    parser.add_argument(
        "--ignore", metavar="CODES", help="comma-separated codes to skip"
    )
    parser.add_argument(
        "--exclude",
        action="append",
        default=None,
        metavar="GLOB",
        help=(
            "glob of paths to skip (repeatable); defaults to "
            + ", ".join(DEFAULT_EXCLUDES)
        ),
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print("SFL000 suppression hygiene: noqa needs a justification")
        for rule in RULES:
            print(f"{rule.code} {rule.summary}")
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("sflow-check: no paths given", file=sys.stderr)
        return 2

    missing = [p for p in args.paths if not p.exists()]
    if missing:
        for p in missing:
            print(f"sflow-check: no such path: {p}", file=sys.stderr)
        return 2

    try:
        select = _parse_codes(args.select)
        ignore = _parse_codes(args.ignore)
    except SystemExit as exc:
        print(exc, file=sys.stderr)
        return 2

    excludes = tuple(args.exclude) if args.exclude else DEFAULT_EXCLUDES
    violations, errors = check_paths(
        args.paths, select=select, ignore=ignore, excludes=excludes
    )

    if args.json:
        print(
            json.dumps(
                {
                    "violations": [v.as_dict() for v in violations],
                    "errors": errors,
                },
                indent=2,
            )
        )
    else:
        for violation in violations:
            print(violation.render())
        for error in errors:
            print(error, file=sys.stderr)
        if violations:
            counts: Dict[str, int] = {}
            for violation in violations:
                counts[violation.code] = counts.get(violation.code, 0) + 1
            summary = ", ".join(f"{c} x{n}" for c, n in sorted(counts.items()))
            print(f"found {len(violations)} violation(s): {summary}")

    if errors:
        return 2
    return 1 if violations else 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
