"""Per-campaign health report: SLO verdicts, alerts, hottest phases.

Usage::

    python -m repro.tools.report run.jsonl [--top-k N] [--fail-on-alerts]
        [--out PATH]

Where :mod:`repro.tools.trace` replays a recording span by span, this tool
*grades* it.  From one flight recording it renders:

* an **SLO pass/fail table** -- the runtime :class:`~repro.obs.slo.SloEngine`
  verdicts when the recording carries an ``slo`` record, else
  :data:`~repro.obs.slo.DEFAULT_SLOS` replayed offline over the recorded
  series bank (``/2`` recordings); a recording with neither is reported as
  ungradable rather than silently passed;
* an **alert timeline** -- every burn-rate alert edge in sim-time order,
  merged from the runtime ``slo.alert``/``slo.alert.resolved`` events and
  the replay;
* the **top-k hottest span kinds** -- spans aggregated by name with run
  counts, total sim-time, and total host seconds from the deterministic
  phase profiler's ``wall_seconds`` attributes
  (:data:`~repro.obs.clock.PERF_CLOCK` laps), so the report answers both
  "where did virtual time go" and "where did my CPU go".

``--fail-on-alerts`` turns the report into a CI gate: exit 1 when any
graded SLO fired.  The chaos-smoke job runs it over the seeded baseline
campaign, so a regression that degrades steady-state health fails the
build even when every functional test still passes.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.causal import aggregate_profiles, profile_recording
from repro.obs.recorder import Recording
from repro.obs.slo import DEFAULT_SLOS, SloSpec, replay as slo_replay
from repro.tools.trace import _load_checked


def _span_profile(
    recording: Recording, top_k: int
) -> List[Dict[str, Any]]:
    """Aggregate spans by name: count, total sim time, total host seconds."""
    profile: Dict[str, Dict[str, Any]] = {}
    for span in recording.spans:
        name = span.get("name", "span")
        row = profile.get(name)
        if row is None:
            row = profile[name] = {
                "name": name,
                "count": 0,
                "sim_time": 0.0,
                "wall_seconds": 0.0,
            }
        row["count"] += 1
        start = float(span.get("start") or 0.0)
        end = float(span.get("end") or start)
        if span.get("clock") == "sim":
            row["sim_time"] += end - start
        attrs = span.get("attrs") or {}
        wall = attrs.get("wall_seconds")
        if isinstance(wall, (int, float)):
            row["wall_seconds"] += float(wall)
    rows = sorted(
        profile.values(),
        key=lambda r: (-r["sim_time"], -r["wall_seconds"], r["name"]),
    )
    return rows[:top_k]


def _alert_timeline(
    recording: Recording, replay_alerts: List[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """Runtime alert events merged with replay alerts, in sim-time order.

    A recording graded at runtime *and* replayed would list each alert
    twice, so runtime events win and replay alerts only fill in when the
    recording carries no ``slo.alert`` events at all.
    """
    runtime: List[Dict[str, Any]] = []
    for event in recording.events:
        name = event.get("name", "")
        if name not in ("slo.alert", "slo.alert.resolved"):
            continue
        attrs = event.get("attrs") or {}
        runtime.append(
            {
                "slo": attrs.get("slo", "?"),
                "time": float(event.get("time") or 0.0),
                "state": (
                    "firing" if name == "slo.alert" else "resolved"
                ),
                "burn_rate": attrs.get("burn_rate"),
                "value": attrs.get("value"),
            }
        )
    alerts = runtime if runtime else list(replay_alerts)
    return sorted(alerts, key=lambda a: (a["time"], a["slo"]))


def build_report(
    recording: Recording,
    *,
    specs: Optional[Sequence[SloSpec]] = None,
    top_k: int = 10,
) -> Dict[str, Any]:
    """Grade one recording into a plain-dict report.

    Precedence for the SLO section: an explicit ``specs`` argument always
    replays; otherwise a runtime ``slo`` record is used verbatim;
    otherwise :data:`DEFAULT_SLOS` replay over the recorded series; a
    ``/1`` recording with no series grades nothing (``source: "none"``).
    """
    replay_alerts: List[Dict[str, Any]] = []
    if specs is not None:
        engine = slo_replay(recording.series, specs)
        results = engine.summary()
        replay_alerts = list(engine.alerts)
        source = "replay"
    elif recording.slo:
        results = list(recording.slo.get("results", []))
        replay_alerts = list(recording.slo.get("alerts", []))
        source = "runtime"
    elif recording.series:
        engine = slo_replay(recording.series, DEFAULT_SLOS)
        results = engine.summary()
        replay_alerts = list(engine.alerts)
        source = "replay"
    else:
        results = []
        source = "none"
    campaign = aggregate_profiles(profile_recording(recording))
    critical_path: Dict[str, Any] = {
        "sessions": campaign.sessions,
        "mean_path_duration": campaign.mean_path_duration,
        "kind_blame": {
            kind: total
            for kind, (_count, total) in sorted(campaign.kind_blame.items())
        },
        "top_links": [
            {"src": src, "dst": dst, "total": total}
            for src, dst, total in campaign.top_links(top_k)
        ],
        "undelivered": campaign.undelivered,
    }
    return {
        "format": recording.meta.get("format", "unknown"),
        "source": source,
        "slo": results,
        "alerts": _alert_timeline(recording, replay_alerts),
        "spans": _span_profile(recording, top_k),
        "critical_path": critical_path,
        "series_count": len(recording.series),
    }


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def render_report(report: Dict[str, Any]) -> str:
    """The report as one printable text block."""
    lines: List[str] = [
        f"campaign health report ({report['format']}, "
        f"{report['series_count']} series)",
        "",
        f"SLOs ({report['source']}):",
    ]
    if not report["slo"]:
        lines.append(
            "  (nothing to grade: no slo record and no series in recording)"
        )
    else:
        header = (
            f"  {'verdict':<8} {'slo':<24} {'objective':<26} "
            f"{'alerts':>6} {'last':>10} {'burn':>8}"
        )
        lines.append(header)
        lines.append("  " + "-" * (len(header) - 2))
        for row in report["slo"]:
            verdict = "PASS" if row.get("pass") else "FAIL"
            lines.append(
                f"  {verdict:<8} {row.get('slo', '?'):<24} "
                f"{row.get('objective', ''):<26} "
                f"{row.get('alerts', 0):>6} "
                f"{_fmt(row.get('last_value')):>10} "
                f"{_fmt(row.get('last_burn_rate')):>8}"
            )
    lines.append("")
    lines.append("alert timeline:")
    if not report["alerts"]:
        lines.append("  (no burn-rate alerts)")
    else:
        for alert in report["alerts"]:
            lines.append(
                f"  t={alert['time']:>10g}  {alert['state']:<9} "
                f"{alert['slo']}  burn_rate={_fmt(alert.get('burn_rate'))}"
            )
    lines.append("")
    lines.append(f"hottest span kinds (top {len(report['spans'])}):")
    if not report["spans"]:
        lines.append("  (no spans in recording)")
    else:
        lines.append(
            f"  {'span':<28} {'count':>6} {'sim_time':>12} {'host_s':>10}"
        )
        for row in report["spans"]:
            lines.append(
                f"  {row['name']:<28} {row['count']:>6} "
                f"{row['sim_time']:>12g} {row['wall_seconds']:>10.4f}"
            )
    critical = report.get("critical_path") or {}
    lines.append("")
    lines.append("critical path (causal profile):")
    if not critical.get("sessions"):
        lines.append("  (no causally-stamped sessions in recording)")
    else:
        lines.append(
            f"  sessions: {critical['sessions']}   "
            f"mean path: {critical['mean_path_duration']:g}   "
            f"undelivered: {critical.get('undelivered', 0)}"
        )
        blame = critical.get("kind_blame") or {}
        if blame:
            parts = [
                f"{kind}={_fmt(total)}" for kind, total in blame.items()
            ]
            lines.append("  blame by kind: " + " ".join(parts))
        for row in critical.get("top_links") or []:
            lines.append(
                f"  hot link {row['total']:>10g}  "
                f"{row['src']} -> {row['dst']}"
            )
        lines.append(
            "  (full blame/slack tables: sflow-profile <recording>)"
        )
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Render a campaign health report from a flight recording."
    )
    parser.add_argument("recording", type=Path, help="recording JSONL file")
    parser.add_argument(
        "--top-k",
        type=int,
        default=10,
        metavar="N",
        help="span kinds to list in the hot-spot table (default 10)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        metavar="PATH",
        help="also write the rendered report to PATH",
    )
    parser.add_argument(
        "--fail-on-alerts",
        action="store_true",
        help="exit 1 when any graded SLO fired a burn-rate alert",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.top_k < 1:
        print("error: --top-k must be >= 1", file=sys.stderr)
        return 2
    recording = _load_checked(args.recording)
    if recording is None:
        return 2
    report = build_report(recording, top_k=args.top_k)
    text = render_report(report)
    print(text)
    if args.out is not None:
        args.out.write_text(text + "\n", encoding="utf-8")
        print(f"wrote {args.out}", file=sys.stderr)
    if args.fail_on_alerts:
        failed = [row["slo"] for row in report["slo"] if not row.get("pass")]
        if failed:
            print(
                f"FAIL: burn-rate alerts fired for: {', '.join(failed)}",
                file=sys.stderr,
            )
            return 1
        print("all graded SLOs passed", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI shim
    sys.exit(main())
