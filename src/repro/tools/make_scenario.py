"""Generate a seeded federation scenario and save it as JSON.

Usage::

    python -m repro.tools.make_scenario --size 20 --services 6 --seed 1 \
        --out scenario.json [--class split_merge] [--instances 2 4]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.services.requirement import RequirementClass
from repro.services.serialization import save_json
from repro.services.workloads import ScenarioConfig, generate_scenario


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Generate a seeded sFlow federation scenario."
    )
    parser.add_argument("--out", type=Path, required=True, help="output JSON path")
    parser.add_argument("--size", type=int, default=20, help="underlay hosts")
    parser.add_argument("--services", type=int, default=6)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--class",
        dest="requirement_class",
        choices=[c.value for c in RequirementClass],
        default=None,
        help="requirement topology class (default: random mix)",
    )
    parser.add_argument(
        "--instances",
        type=int,
        nargs=2,
        metavar=("LO", "HI"),
        default=(1, 3),
        help="instances per service (inclusive range)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    clazz = (
        RequirementClass(args.requirement_class)
        if args.requirement_class
        else None
    )
    scenario = generate_scenario(
        ScenarioConfig(
            network_size=args.size,
            n_services=args.services,
            requirement_class=clazz,
            instances_per_service=tuple(args.instances),
            seed=args.seed,
        )
    )
    path = save_json(scenario, args.out)
    print(scenario.describe())
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI shim
    sys.exit(main())
