"""Service types and the compatibility relation.

The paper distinguishes services only by a service identifier (SID) and says
"two services are compatible if the output produced by one service matches
the input requirements of the other" (Sec. 2.2).  We model that literally:

* a :class:`ServiceType` declares the set of data types it consumes
  (``inputs``) and produces (``outputs``);
* service ``A`` is *compatible upstream of* ``B`` when
  ``A.outputs & B.inputs`` is non-empty;
* a :class:`ServiceCatalog` is the registry that answers compatibility
  queries and can manufacture a compatibility predicate for
  :meth:`repro.network.overlay.OverlayGraph.build`.

For experiments where only the requirement topology matters, the catalog can
also be *derived from a requirement* (every requirement edge induces a
matching output/input type), which is how the workload generators build
overlays that are guaranteed to support their requirements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, Iterator, Optional, Tuple

from repro.errors import RequirementError

Sid = str


@dataclass(frozen=True)
class ServiceType:
    """A service as an interface: what it consumes and what it produces.

    ``inputs`` empty means the service is a pure producer (a valid source of
    a federation); ``outputs`` empty means a pure consumer (a valid sink).
    """

    sid: Sid
    inputs: FrozenSet[str] = frozenset()
    outputs: FrozenSet[str] = frozenset()
    description: str = ""

    def __post_init__(self) -> None:
        if not self.sid:
            raise ValueError("service type needs a non-empty sid")

    def feeds(self, other: "ServiceType") -> bool:
        """Whether this service's output satisfies ``other``'s input."""
        return bool(self.outputs & other.inputs)


class ServiceCatalog:
    """Registry of :class:`ServiceType` objects with compatibility queries."""

    def __init__(self, types: Iterable[ServiceType] = ()) -> None:
        self._types: Dict[Sid, ServiceType] = {}
        for service_type in types:
            self.register(service_type)

    def register(self, service_type: ServiceType) -> ServiceType:
        """Add a service type; re-registering the same SID is an error."""
        if service_type.sid in self._types:
            raise ValueError(f"service {service_type.sid!r} already registered")
        self._types[service_type.sid] = service_type
        return service_type

    def define(
        self,
        sid: Sid,
        inputs: Iterable[str] = (),
        outputs: Iterable[str] = (),
        description: str = "",
    ) -> ServiceType:
        """Convenience wrapper around :meth:`register`."""
        return self.register(
            ServiceType(sid, frozenset(inputs), frozenset(outputs), description)
        )

    # -- queries -----------------------------------------------------------

    def __contains__(self, sid: Sid) -> bool:
        return sid in self._types

    def __len__(self) -> int:
        return len(self._types)

    def __getitem__(self, sid: Sid) -> ServiceType:
        try:
            return self._types[sid]
        except KeyError:
            raise KeyError(f"unknown service {sid!r}") from None

    def sids(self) -> Iterator[Sid]:
        return iter(sorted(self._types))

    def compatible(self, upstream: Sid, downstream: Sid) -> bool:
        """Directed compatibility: can ``upstream`` feed ``downstream``?"""
        if upstream not in self._types or downstream not in self._types:
            return False
        if upstream == downstream:
            return False
        return self._types[upstream].feeds(self._types[downstream])

    def compatibility_predicate(self) -> Callable[[Sid, Sid], bool]:
        """A standalone predicate suitable for ``OverlayGraph.build``."""
        return self.compatible

    def compatible_pairs(self) -> Iterator[Tuple[Sid, Sid]]:
        """All ordered compatible ``(upstream, downstream)`` pairs."""
        for a in self.sids():
            for b in self.sids():
                if self.compatible(a, b):
                    yield (a, b)

    # -- derivation --------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[Sid, Sid]],
        *,
        extra_sids: Iterable[Sid] = (),
    ) -> "ServiceCatalog":
        """Build a catalog whose compatibility relation is exactly ``edges``.

        Each directed edge ``(a, b)`` gets its own data type ``"a->b"`` added
        to ``a.outputs`` and ``b.inputs``, so ``compatible(a, b)`` holds for
        precisely the given pairs.  Workload generators rely on this to build
        overlays that support a generated requirement and nothing more.
        """
        inputs: Dict[Sid, set] = {}
        outputs: Dict[Sid, set] = {}
        sids = set(extra_sids)
        for a, b in edges:
            if a == b:
                raise RequirementError(f"self-compatibility for service {a!r}")
            sids.update((a, b))
            token = f"{a}->{b}"
            outputs.setdefault(a, set()).add(token)
            inputs.setdefault(b, set()).add(token)
        catalog = cls()
        for sid in sorted(sids):
            catalog.define(
                sid,
                inputs=inputs.get(sid, ()),
                outputs=outputs.get(sid, ()),
            )
        return catalog

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ServiceCatalog({sorted(self._types)})"
