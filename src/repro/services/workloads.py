"""Workload and scenario generators.

The evaluation section of the paper runs the federation algorithms over
random overlays of 10..50 nodes with "service requirements of any type".
This module produces those inputs reproducibly:

* :func:`random_requirement` -- a requirement of a chosen
  :class:`~repro.services.requirement.RequirementClass` over fresh SIDs;
* :func:`generate_scenario` -- a complete (underlay, overlay, catalog,
  requirement) bundle from a :class:`ScenarioConfig`;
* :func:`travel_agency_scenario` -- the paper's running example (travel
  engine, airline/hotel/attraction/car-rental feeds, currency/map/translator
  processors, travel agency sink; Figs. 1-5);
* :func:`media_pipeline_scenario` -- a second domain example (media
  transcoding/packaging), the application family the paper's introduction
  cites for traditional service paths.

Everything is driven by explicit seeds; the same config always yields the
same scenario, which the experiment harness relies on for paired
comparisons between algorithms.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import RequirementError
from repro.network.overlay import OverlayGraph, ServiceInstance
from repro.network.underlay import Underlay, UnderlayConfig
from repro.services.catalog import ServiceCatalog
from repro.services.requirement import RequirementClass, ServiceRequirement, Sid


@dataclass
class Scenario:
    """A self-contained federation problem instance."""

    underlay: Underlay
    overlay: OverlayGraph
    catalog: ServiceCatalog
    requirement: ServiceRequirement
    source_instance: ServiceInstance
    seed: int

    def describe(self) -> str:
        """One-line human summary, used by examples and experiment logs."""
        return (
            f"scenario(seed={self.seed}): underlay n={self.underlay.n}, "
            f"overlay instances={len(self.overlay)}, "
            f"links={self.overlay.num_links()}, requirement "
            f"{self.requirement.classify().value} with "
            f"{len(self.requirement)} services"
        )


@dataclass
class ScenarioConfig:
    """Parameters for :func:`generate_scenario`.

    Attributes:
        network_size: number of hosts in the underlay (the x-axis of every
            Fig. 10 panel).
        n_services: number of required services in the requirement.
        requirement_class: which topology to generate (``None`` -> drawn
            uniformly from PATH / DISJOINT_PATHS / SPLIT_MERGE / GENERAL,
            the paper's "requirements of any type").
        instances_per_service: inclusive range for the number of instances
            of each intermediate service.
        single_source_instance: the user hands the requirement to one
            concrete source node, so the source service defaults to a single
            instance (paper Sec. 4).
        extra_compatibility: probability of adding a compatibility pair that
            the requirement does not need (enriches the overlay with relay
            opportunities).
        underlay: template for the physical network (``n`` is overridden by
            ``network_size``).
        seed: master seed; requirement, placement and underlay derive
            sub-seeds from it.
    """

    network_size: int = 20
    n_services: int = 6
    requirement_class: Optional[RequirementClass] = None
    instances_per_service: Tuple[int, int] = (1, 3)
    single_source_instance: bool = True
    extra_compatibility: float = 0.1
    underlay: UnderlayConfig = field(
        default_factory=lambda: UnderlayConfig(n=20)
    )
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_services < 2:
            raise ValueError("need at least source and sink services")
        lo, hi = self.instances_per_service
        if not (1 <= lo <= hi):
            raise ValueError(f"bad instances_per_service {self.instances_per_service}")
        if self.network_size < 2:
            raise ValueError("network_size must be >= 2")


# ---------------------------------------------------------------------------
# Requirement generation
# ---------------------------------------------------------------------------

_RANDOM_CLASSES = (
    RequirementClass.PATH,
    RequirementClass.DISJOINT_PATHS,
    RequirementClass.SPLIT_MERGE,
    RequirementClass.GENERAL,
)


def random_requirement(
    rng: random.Random,
    n_services: int,
    clazz: Optional[RequirementClass] = None,
) -> ServiceRequirement:
    """Generate a requirement with ``n_services`` services of class ``clazz``.

    SIDs are ``s0`` (source) .. ``s{n-1}``; ``s{n-1}`` is always a sink.
    Small ``n_services`` may force a simpler class than requested (e.g. a
    3-service DISJOINT_PATHS request degenerates to a path); the returned
    object's :meth:`classify` is authoritative.
    """
    if n_services < 1:
        raise RequirementError("n_services must be >= 1")
    if clazz is None:
        clazz = rng.choice(_RANDOM_CLASSES)
    sids = [f"s{i}" for i in range(n_services)]
    if n_services == 1:
        return ServiceRequirement(nodes=sids)
    if n_services == 2 or clazz is RequirementClass.PATH:
        return ServiceRequirement.from_path(sids)
    if clazz is RequirementClass.SINGLE:
        return ServiceRequirement(nodes=sids[:1])
    if clazz is RequirementClass.TREE:
        return _random_tree(rng, sids)
    if clazz is RequirementClass.DISJOINT_PATHS:
        return _random_disjoint_paths(rng, sids)
    if clazz is RequirementClass.SPLIT_MERGE:
        return _random_series_parallel(rng, sids)
    if clazz is RequirementClass.GENERAL:
        return _random_layered_dag(rng, sids)
    raise AssertionError(f"unhandled class {clazz}")


def _random_tree(rng: random.Random, sids: Sequence[Sid]) -> ServiceRequirement:
    """Random rooted tree: each service attaches below an earlier one."""
    edges = []
    for i in range(1, len(sids)):
        parent = sids[rng.randrange(i)]
        edges.append((parent, sids[i]))
    return ServiceRequirement(edges=edges)


def _random_disjoint_paths(
    rng: random.Random, sids: Sequence[Sid]
) -> ServiceRequirement:
    """Source + sink + intermediates split over 2..k parallel chains."""
    source, sink = sids[0], sids[-1]
    middle = list(sids[1:-1])
    n_branches = rng.randint(2, max(2, min(len(middle), 4)))
    branches: List[List[Sid]] = [[] for _ in range(n_branches)]
    for i, sid in enumerate(middle):
        branches[i % n_branches].append(sid)
    branches = [b for b in branches if b] or [[]]
    return ServiceRequirement.parallel(source, sink, branches)


def _random_series_parallel(
    rng: random.Random, sids: Sequence[Sid]
) -> ServiceRequirement:
    """Random two-terminal series-parallel DAG using all given services.

    Recursively splits the pool of intermediate services into series or
    parallel blocks between the source and the sink.
    """
    source, sink = sids[0], sids[-1]
    middle = list(sids[1:-1])
    edges: List[Tuple[Sid, Sid]] = []

    def block(u: Sid, v: Sid, pool: List[Sid], allow_direct: bool) -> None:
        if not pool:
            edges.append((u, v))
            return
        if len(pool) == 1:
            edges.append((u, pool[0]))
            edges.append((pool[0], v))
            return
        if rng.random() < 0.5:
            # Series: u -> block -> w -> block -> v around a pivot service w.
            pivot_idx = rng.randrange(len(pool))
            w = pool[pivot_idx]
            rest = pool[:pivot_idx] + pool[pivot_idx + 1 :]
            cut = rng.randint(0, len(rest))
            block(u, w, rest[:cut], True)
            block(w, v, rest[cut:], True)
        else:
            # Parallel: split the pool over 2 branches; at most one branch may
            # be a direct edge (simple graphs carry no parallel multi-edges).
            cut = rng.randint(1, len(pool) - 1)
            block(u, v, pool[:cut], allow_direct)
            block(u, v, pool[cut:], False)

    block(source, sink, middle, True)
    return ServiceRequirement(edges=edges)


def _random_layered_dag(rng: random.Random, sids: Sequence[Sid]) -> ServiceRequirement:
    """General DAG: random forward layers, every node wired to earlier layers."""
    source, sink = sids[0], sids[-1]
    middle = list(sids[1:-1])
    n_layers = rng.randint(1, max(1, len(middle)))
    layers: List[List[Sid]] = [[source]] + [[] for _ in range(n_layers)] + [[sink]]
    for i, sid in enumerate(middle):
        layers[1 + i % n_layers].append(sid)
    layers = [layer for layer in layers if layer]
    edges: List[Tuple[Sid, Sid]] = []
    for depth in range(1, len(layers)):
        earlier = [s for layer in layers[:depth] for s in layer]
        for sid in layers[depth]:
            n_parents = rng.randint(1, min(2, len(earlier)))
            for parent in rng.sample(earlier, n_parents):
                edges.append((parent, sid))
    # Every non-sink service must feed something downstream.
    downstream_of: Dict[Sid, bool] = {s: False for s in sids}
    for a, _ in edges:
        downstream_of[a] = True
    for depth, layer in enumerate(layers[:-1]):
        later = [s for lyr in layers[depth + 1 :] for s in lyr]
        for sid in layer:
            if not downstream_of[sid]:
                edges.append((sid, rng.choice(later)))
                downstream_of[sid] = True
    return ServiceRequirement(edges=edges)


# ---------------------------------------------------------------------------
# Scenario generation
# ---------------------------------------------------------------------------


def generate_scenario(config: ScenarioConfig) -> Scenario:
    """Produce a full federation problem from a :class:`ScenarioConfig`."""
    rng = random.Random(config.seed)
    requirement = random_requirement(
        random.Random(rng.randrange(2**31)),
        config.n_services,
        config.requirement_class,
    )
    catalog = _catalog_for(requirement, config.extra_compatibility, rng)
    underlay_config = replace(
        config.underlay,
        n=config.network_size,
        seed=rng.randrange(2**31),
    )
    underlay = Underlay.generate(underlay_config)
    placement = _place_instances(rng, requirement, underlay, config)
    overlay = OverlayGraph.build(underlay, placement, catalog.compatible)
    source_instances = overlay.instances_of(requirement.source)
    return Scenario(
        underlay=underlay,
        overlay=overlay,
        catalog=catalog,
        requirement=requirement,
        source_instance=source_instances[0],
        seed=config.seed,
    )


def _catalog_for(
    requirement: ServiceRequirement,
    extra_compatibility: float,
    rng: random.Random,
) -> ServiceCatalog:
    """Catalog covering the requirement plus optional extra relay pairs.

    Extra pairs are only added in topological-order direction, so overlay
    relay routes always respect the data-flow direction of the requirement.
    """
    edges = list(requirement.edges())
    order = requirement.topological_order()
    position = {sid: i for i, sid in enumerate(order)}
    existing = set(edges)
    for a in order:
        for b in order:
            if position[a] >= position[b] or (a, b) in existing:
                continue
            if rng.random() < extra_compatibility:
                edges.append((a, b))
                existing.add((a, b))
    return ServiceCatalog.from_edges(edges)


def _place_instances(
    rng: random.Random,
    requirement: ServiceRequirement,
    underlay: Underlay,
    config: ScenarioConfig,
) -> List[ServiceInstance]:
    """Place every service's instances on distinct random hosts."""
    placement: List[ServiceInstance] = []
    hosts = list(range(underlay.n))
    lo, hi = config.instances_per_service
    for sid in requirement.services():
        if sid == requirement.source and config.single_source_instance:
            count = 1
        else:
            count = rng.randint(lo, hi)
        count = min(count, underlay.n)
        for nid in rng.sample(hosts, count):
            placement.append(ServiceInstance(sid, nid))
    return placement


# ---------------------------------------------------------------------------
# The paper's running example
# ---------------------------------------------------------------------------

TRAVEL_SERVICES = (
    "travel_engine",
    "airline",
    "hotel",
    "attraction",
    "car_rental",
    "currency",
    "map",
    "translator",
    "agency",
)


def travel_agency_requirement() -> ServiceRequirement:
    """The generic travel requirement of Fig. 5 (split and merge streams).

    The travel engine fans out to the airline, hotel, attraction and
    car-rental feeds; price-bearing results merge into the currency
    converter, location-bearing results into the map renderer, text into the
    translator; everything is federated at the travel agency.
    """
    return ServiceRequirement(
        edges=[
            ("travel_engine", "airline"),
            ("travel_engine", "hotel"),
            ("travel_engine", "attraction"),
            ("travel_engine", "car_rental"),
            ("airline", "currency"),
            ("hotel", "currency"),
            ("hotel", "map"),
            ("attraction", "map"),
            ("attraction", "translator"),
            ("car_rental", "map"),
            ("currency", "agency"),
            ("map", "agency"),
            ("translator", "agency"),
        ]
    )


def travel_agency_scenario(
    *, seed: int = 7, network_size: int = 16, instances_per_service: int = 2
) -> Scenario:
    """A fully-instantiated travel-agency federation problem.

    The travel engine and the agency each have a single designated instance
    (the consumer talks to concrete endpoints); every other service has
    ``instances_per_service`` replicas spread over a Waxman underlay.
    """
    rng = random.Random(seed)
    requirement = travel_agency_requirement()
    catalog = ServiceCatalog.from_edges(requirement.edges())
    underlay = Underlay.generate(
        UnderlayConfig(n=network_size, seed=rng.randrange(2**31))
    )
    placement: List[ServiceInstance] = []
    hosts = list(range(underlay.n))
    for sid in requirement.services():
        count = 1 if sid in ("travel_engine", "agency") else instances_per_service
        for nid in rng.sample(hosts, min(count, underlay.n)):
            placement.append(ServiceInstance(sid, nid))
    overlay = OverlayGraph.build(underlay, placement, catalog.compatible)
    return Scenario(
        underlay=underlay,
        overlay=overlay,
        catalog=catalog,
        requirement=requirement,
        source_instance=overlay.instances_of("travel_engine")[0],
        seed=seed,
    )


def media_pipeline_requirement() -> ServiceRequirement:
    """A media processing pipeline: the service-path application family.

    capture -> transcode, then watermarking and thumbnailing in parallel,
    merged by the packager and delivered to the edge cache.
    """
    return ServiceRequirement(
        edges=[
            ("capture", "transcode"),
            ("transcode", "watermark"),
            ("transcode", "thumbnail"),
            ("watermark", "package"),
            ("thumbnail", "package"),
            ("package", "edge_cache"),
        ]
    )


def media_pipeline_scenario(
    *, seed: int = 11, network_size: int = 14, instances_per_service: int = 3
) -> Scenario:
    """A fully-instantiated media-pipeline federation problem."""
    rng = random.Random(seed)
    requirement = media_pipeline_requirement()
    catalog = ServiceCatalog.from_edges(requirement.edges())
    underlay = Underlay.generate(
        UnderlayConfig(n=network_size, seed=rng.randrange(2**31))
    )
    placement: List[ServiceInstance] = []
    hosts = list(range(underlay.n))
    for sid in requirement.services():
        count = 1 if sid == "capture" else instances_per_service
        for nid in rng.sample(hosts, min(count, underlay.n)):
            placement.append(ServiceInstance(sid, nid))
    overlay = OverlayGraph.build(underlay, placement, catalog.compatible)
    return Scenario(
        underlay=underlay,
        overlay=overlay,
        catalog=catalog,
        requirement=requirement,
        source_instance=overlay.instances_of("capture")[0],
        seed=seed,
    )
