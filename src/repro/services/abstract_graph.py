"""The service abstract graph (paper Sec. 3.1, Fig. 6).

The abstract graph connects a :class:`~repro.services.requirement.ServiceRequirement`
to an :class:`~repro.network.overlay.OverlayGraph`:

* each required service becomes a *service abstract node* populated with all
  of its instances in the overlay;
* instances of service ``A`` are fully connected to instances of service
  ``B`` whenever the requirement has the edge ``A -> B``;
* every abstract edge is labelled with the **shortest-widest** quality of the
  overlay path between the two instances, plus the path itself so flow
  graphs can later be expanded to concrete overlay routes (the relay
  instances that "bridge two required services").

The abstract graph is also a routing substrate: ``successors`` yields the
adjacency view consumed by :mod:`repro.routing.wang_crowcroft`, which is how
the baseline algorithm computes the shortest-widest *abstract path*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import FederationError
from repro.network.metrics import LinkMetrics, PathQuality, UNREACHABLE
from repro.network.overlay import OverlayGraph, ServiceInstance
from repro.routing.oracle import RouteOracle
from repro.routing.wang_crowcroft import RouteLabel, extract_path
from repro.services.requirement import ServiceRequirement, Sid


@dataclass(frozen=True)
class AbstractEdge:
    """An edge between instances of two adjacent required services.

    ``overlay_path`` is the realising shortest-widest route through the
    overlay (``src`` .. ``dst`` inclusive, possibly via relay instances).
    """

    src: ServiceInstance
    dst: ServiceInstance
    quality: PathQuality
    overlay_path: Tuple[ServiceInstance, ...]


class AbstractGraph:
    """Service abstract graph bridging a requirement and an overlay."""

    def __init__(
        self,
        requirement: ServiceRequirement,
        instances: Dict[Sid, Tuple[ServiceInstance, ...]],
        edges: Dict[Tuple[ServiceInstance, ServiceInstance], AbstractEdge],
    ) -> None:
        self._requirement = requirement
        self._instances = instances
        self._edges = edges
        self._succ: Dict[ServiceInstance, List[Tuple[ServiceInstance, LinkMetrics]]] = {}
        for (src, dst), edge in sorted(edges.items()):
            self._succ.setdefault(src, []).append((dst, edge.quality))

    @classmethod
    def build(
        cls,
        requirement: ServiceRequirement,
        overlay: OverlayGraph,
        *,
        require_usable: bool = False,
    ) -> "AbstractGraph":
        """Construct the abstract graph for ``requirement`` over ``overlay``.

        For every requirement edge ``A -> B`` and every instance pair
        ``(a, b)``, the shortest-widest overlay path from ``a`` to ``b`` is
        computed (one Wang-Crowcroft tree per distinct source instance,
        served by the process-wide :class:`~repro.routing.oracle.RouteOracle`
        and so shared across abstract edges, repeated builds *and* other
        algorithms working on the same overlay).  Unreachable pairs get no
        abstract edge.

        Args:
            requirement: the service requirement.
            overlay: the overlay to draw instances and paths from.
            require_usable: when True, raise :class:`FederationError` if some
                requirement edge has *no* usable instance pair at all (the
                requirement cannot possibly be federated on this overlay).

        Raises:
            FederationError: when a required service has no instance, or
                (with ``require_usable``) when an edge is unrealisable.
        """
        instances: Dict[Sid, Tuple[ServiceInstance, ...]] = {}
        for sid in requirement.services():
            found = overlay.instances_of(sid)
            if not found:
                raise FederationError(
                    f"required service {sid!r} has no instance in the overlay"
                )
            instances[sid] = found

        edges: Dict[Tuple[ServiceInstance, ServiceInstance], AbstractEdge] = {}
        oracle = RouteOracle.default()
        # Batched prefetch: every distinct source instance of the
        # requirement's edges gets its tree from one kernel pass over a
        # single CSR snapshot of the overlay; the lookups below then hit.
        sources: List[ServiceInstance] = []
        seen = set()
        for a_sid, _ in requirement.edges():
            for a in instances[a_sid]:
                if a not in seen:
                    seen.add(a)
                    sources.append(a)
        oracle.warm(overlay, sources)
        for a_sid, b_sid in requirement.edges():
            usable = False
            for a in instances[a_sid]:
                labels = oracle.tree(overlay, a)
                for b in instances[b_sid]:
                    if a == b:
                        continue
                    label = labels.get(b)
                    if label is None or not label.quality.reachable:
                        continue
                    path = tuple(extract_path(labels, a, b))
                    edges[(a, b)] = AbstractEdge(a, b, label.quality, path)
                    usable = True
            if require_usable and not usable:
                raise FederationError(
                    f"requirement edge {a_sid!r} -> {b_sid!r} has no usable "
                    f"instance pair in the overlay"
                )
        return cls(requirement, instances, edges)

    # -- queries -----------------------------------------------------------

    @property
    def requirement(self) -> ServiceRequirement:
        return self._requirement

    def instances_of(self, sid: Sid) -> Tuple[ServiceInstance, ...]:
        """All overlay instances of a required service."""
        try:
            return self._instances[sid]
        except KeyError:
            raise KeyError(f"service {sid!r} not part of this abstract graph") from None

    def nodes(self) -> Iterator[ServiceInstance]:
        for sid in self._requirement.services():
            yield from self._instances[sid]

    def routing_nodes(self) -> Tuple[ServiceInstance, ...]:
        """Snapshot-export hook: the node universe of ``successors``.

        The routing kernel (:mod:`repro.routing.kernel`) flattens the
        abstract-edge adjacency over exactly this universe when building
        a CSR snapshot for batched tree computation.
        """
        return tuple(sorted(set(self.nodes())))

    def edge(
        self, src: ServiceInstance, dst: ServiceInstance
    ) -> Optional[AbstractEdge]:
        return self._edges.get((src, dst))

    def quality(self, src: ServiceInstance, dst: ServiceInstance) -> PathQuality:
        """Edge quality, or UNREACHABLE when the pair has no abstract edge."""
        found = self._edges.get((src, dst))
        return found.quality if found is not None else UNREACHABLE

    def edges(self) -> Iterator[AbstractEdge]:
        for key in sorted(self._edges):
            yield self._edges[key]

    def num_edges(self) -> int:
        return len(self._edges)

    def successors(
        self, instance: ServiceInstance
    ) -> Iterator[Tuple[ServiceInstance, LinkMetrics]]:
        """Routing adjacency view over abstract edges."""
        return iter(self._succ.get(instance, ()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AbstractGraph(services={len(self._instances)}, "
            f"edges={len(self._edges)})"
        )
