"""Service flow graphs: the solution object of the federation problem.

A *service flow graph* ``G'(V', E')`` (paper Sec. 3.1) selects **exactly one
instance for every required service** and realises every requirement edge
with a concrete overlay route.  This module provides:

* :class:`FlowEdge` -- one realised requirement edge;
* :class:`ServiceFlowGraph` -- assignment + edges, with

  - validation against the requirement,
  - quality evaluation: bottleneck **bandwidth** (the paper equates overall
    throughput with the bottleneck link, Sec. 3.2) and critical-path
    **latency** (services execute as soon as all their inputs are ready, so
    the federated service completes after the longest source->sink path),
  - the *sequential* latency of the service-path execution model (every
    service waits for the previous one), used to score the single-path
    control algorithm in Fig. 10(c),
  - the **correctness coefficient** of the evaluation section: the fraction
    of instance choices that agree with the global optimum;

* support for *partial* flow graphs, which is what sFlow nodes exchange in
  ``sfederate`` messages, together with conflict-checked :meth:`merge`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Mapping, Optional, Set, Tuple

from repro.errors import FederationError
from repro.network.metrics import PathQuality, UNREACHABLE, combine_series
from repro.network.overlay import ServiceInstance
from repro.services.abstract_graph import AbstractGraph
from repro.services.requirement import ServiceRequirement, Sid


@dataclass(frozen=True)
class FlowEdge:
    """A requirement edge realised by a concrete overlay route."""

    src: ServiceInstance
    dst: ServiceInstance
    quality: PathQuality
    overlay_path: Tuple[ServiceInstance, ...] = ()

    @property
    def requirement_edge(self) -> Tuple[Sid, Sid]:
        return (self.src.sid, self.dst.sid)


class ServiceFlowGraph:
    """An (optionally partial) assignment of instances plus realised edges."""

    def __init__(
        self,
        requirement: ServiceRequirement,
        assignment: Mapping[Sid, ServiceInstance],
        edges: Iterable[FlowEdge] = (),
    ) -> None:
        self._requirement = requirement
        self._assignment: Dict[Sid, ServiceInstance] = {}
        for sid, inst in assignment.items():
            if sid not in requirement:
                raise FederationError(f"assignment for unknown service {sid!r}")
            if inst.sid != sid:
                raise FederationError(
                    f"service {sid!r} assigned an instance of {inst.sid!r} ({inst})"
                )
            self._assignment[sid] = inst
        self._edges: Dict[Tuple[Sid, Sid], FlowEdge] = {}
        for edge in edges:
            key = edge.requirement_edge
            if not requirement.has_edge(*key):
                raise FederationError(f"edge {key} is not part of the requirement")
            for sid, inst in ((key[0], edge.src), (key[1], edge.dst)):
                assigned = self._assignment.get(sid)
                if assigned is None:
                    self._assignment[sid] = inst
                elif assigned != inst:
                    raise FederationError(
                        f"edge {key} uses {inst} but service {sid!r} is "
                        f"assigned {assigned}"
                    )
            self._edges[key] = edge

    # -- construction --------------------------------------------------------

    @classmethod
    def realize(
        cls,
        abstract: AbstractGraph,
        assignment: Mapping[Sid, ServiceInstance],
        *,
        strict: bool = True,
    ) -> "ServiceFlowGraph":
        """Expand a full assignment into a flow graph via the abstract graph.

        Every requirement edge is realised with the shortest-widest overlay
        path recorded on the corresponding abstract edge (step 4 of the
        baseline algorithm, Table 1).

        Args:
            abstract: abstract graph for the requirement/overlay pair.
            assignment: one instance per required service.
            strict: when True (default), an unrealisable edge raises
                :class:`FederationError`; when False it is kept with
                :data:`UNREACHABLE` quality so low-quality heuristics (the
                random control algorithm) can still be scored.
        """
        requirement = abstract.requirement
        missing = [s for s in requirement.services() if s not in assignment]
        if missing:
            raise FederationError(f"assignment misses services {missing}")
        edges = []
        for a_sid, b_sid in requirement.edges():
            a, b = assignment[a_sid], assignment[b_sid]
            abstract_edge = abstract.edge(a, b)
            if abstract_edge is None:
                if strict:
                    raise FederationError(
                        f"no usable overlay path from {a} to {b} for "
                        f"requirement edge {a_sid!r} -> {b_sid!r}"
                    )
                edges.append(FlowEdge(a, b, UNREACHABLE, ()))
            else:
                edges.append(
                    FlowEdge(a, b, abstract_edge.quality, abstract_edge.overlay_path)
                )
        return cls(requirement, dict(assignment), edges)

    # -- structure -------------------------------------------------------------

    @property
    def requirement(self) -> ServiceRequirement:
        return self._requirement

    @property
    def assignment(self) -> Dict[Sid, ServiceInstance]:
        """A copy of the service -> instance mapping."""
        return dict(self._assignment)

    def instance_for(self, sid: Sid) -> Optional[ServiceInstance]:
        return self._assignment.get(sid)

    def edges(self) -> Tuple[FlowEdge, ...]:
        return tuple(self._edges[key] for key in sorted(self._edges))

    def edge(self, a_sid: Sid, b_sid: Sid) -> Optional[FlowEdge]:
        return self._edges.get((a_sid, b_sid))

    def is_complete(self) -> bool:
        """Whether every service is assigned and every edge realised."""
        return len(self._assignment) == len(self._requirement) and len(
            self._edges
        ) == len(self._requirement.edges())

    def validate(self) -> None:
        """Raise :class:`FederationError` unless this is a complete, coherent
        flow graph for its requirement."""
        if not self.is_complete():
            missing_services = [
                s for s in self._requirement.services() if s not in self._assignment
            ]
            missing_edges = [
                e for e in self._requirement.edges() if e not in self._edges
            ]
            raise FederationError(
                f"incomplete flow graph: services missing {missing_services}, "
                f"edges missing {missing_edges}"
            )
        for key, edge in self._edges.items():
            if not edge.quality.reachable:
                raise FederationError(f"edge {key} is unreachable ({edge.quality})")

    def relay_instances(self) -> Set[ServiceInstance]:
        """Instances that only appear inside realised overlay paths -- the
        "other service instances that bridge two required services"."""
        assigned = set(self._assignment.values())
        relays: Set[ServiceInstance] = set()
        for edge in self._edges.values():
            relays.update(inst for inst in edge.overlay_path if inst not in assigned)
        return relays

    # -- quality -----------------------------------------------------------------

    def bottleneck_bandwidth(self) -> float:
        """Overall throughput: the minimum bandwidth over all edges."""
        if not self._edges:
            return 0.0
        return min(edge.quality.bandwidth for edge in self._edges.values())

    def end_to_end_latency(self) -> float:
        """Critical-path latency from the source to the slowest sink.

        Services run as soon as all their inputs arrive (the DAG execution
        model that motivates the paper), so completion time is the longest
        source -> sink path measured in accumulated edge latency.
        """
        order = self._requirement.topological_order()
        finish: Dict[Sid, float] = {order[0]: 0.0}
        for sid in order[1:]:
            best = 0.0
            for pred in self._requirement.predecessors(sid):
                edge = self._edges.get((pred, sid))
                lat = edge.quality.latency if edge is not None else float("inf")
                best = max(best, finish.get(pred, float("inf")) + lat)
            finish[sid] = best
        return max(finish[s] for s in self._requirement.sinks)

    def sequential_latency(self) -> float:
        """Latency under the *service path* execution model: every service
        waits for the previous one, so edge latencies simply accumulate."""
        return sum(edge.quality.latency for edge in self._edges.values())

    def quality(self) -> PathQuality:
        """``(bottleneck bandwidth, critical-path latency)`` -- the value the
        shortest-widest order ranks flow graphs by."""
        return PathQuality(self.bottleneck_bandwidth(), self.end_to_end_latency())

    # -- evaluation ----------------------------------------------------------------

    def correctness_coefficient(self, reference: "ServiceFlowGraph") -> float:
        """Fraction of ``reference``'s instance choices that this graph matches.

        This is the metric of Fig. 10(a): "the ratio between the number of
        matching nodes in the two service flow graphs and the total number of
        nodes in the global optimal graph".
        """
        ref = reference._assignment
        if not ref:
            raise FederationError("reference flow graph has no assignment")
        matching = sum(
            1 for sid, inst in ref.items() if self._assignment.get(sid) == inst
        )
        return matching / len(ref)

    # -- export --------------------------------------------------------------------

    def to_dot(self) -> str:
        """Graphviz rendering of the flow graph (used by the examples)."""
        lines = ["digraph flowgraph {", "  rankdir=LR;"]
        for sid in self._requirement.services():
            inst = self._assignment.get(sid)
            label = str(inst) if inst is not None else f"{sid}/?"
            lines.append(f'  "{sid}" [label="{label}"];')
        for (a, b), edge in sorted(self._edges.items()):
            lines.append(
                f'  "{a}" -> "{b}" '
                f'[label="bw={edge.quality.bandwidth:g} lat={edge.quality.latency:g}"];'
            )
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        status = "complete" if self.is_complete() else "partial"
        return (
            f"ServiceFlowGraph({status}, assigned={len(self._assignment)}/"
            f"{len(self._requirement)}, edges={len(self._edges)}/"
            f"{len(self._requirement.edges())})"
        )


def merge_partial_graphs(
    requirement: ServiceRequirement,
    parts: Iterable[ServiceFlowGraph],
) -> ServiceFlowGraph:
    """Combine partial flow graphs into one, checking for conflicts.

    The sink-side assembly step of the distributed sFlow algorithm: as
    ``sfederate`` messages from different branches arrive, their partial
    graphs must agree on every shared service (e.g. a pinned merge
    instance).  Conflicting assignments raise :class:`FederationError`.
    """
    assignment: Dict[Sid, ServiceInstance] = {}
    edges: Dict[Tuple[Sid, Sid], FlowEdge] = {}
    for part in parts:
        if part.requirement.services() != requirement.services() and not set(
            part.requirement.services()
        ) <= set(requirement.services()):
            raise FederationError("partial graph belongs to a different requirement")
        for sid, inst in part._assignment.items():
            existing = assignment.get(sid)
            if existing is None:
                assignment[sid] = inst
            elif existing != inst:
                raise FederationError(
                    f"conflicting assignment for {sid!r}: {existing} vs {inst}"
                )
        for key, edge in part._edges.items():
            existing_edge = edges.get(key)
            if existing_edge is None:
                edges[key] = edge
            elif (existing_edge.src, existing_edge.dst) != (edge.src, edge.dst):
                raise FederationError(f"conflicting realisation for edge {key}")
    return ServiceFlowGraph(requirement, assignment, edges.values())
