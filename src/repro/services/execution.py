"""Data-plane execution of a federated service: streaming over a flow graph.

The paper's quality model rests on two claims (Sec. 3.2):

* "the overall throughput is equivalent to the bandwidth on the bottleneck
  link, since the bottleneck provides pressure for flow control towards
  both upstream and downstream directions", and
* services "perform tasks in either a sequential, parallel, or interleaved
  fashion as necessary" -- i.e. a DAG executes along its critical path.

This module *runs* a federated service instead of trusting those claims: a
stream of data units flows through the service flow graph; every edge is a
serialising channel (one unit in flight per ``unit_size / bandwidth``
transmission slot, plus propagation latency), every service starts a unit
once all of its inputs for that unit have arrived, and the sink's delivery
times are recorded.  The executor is an exact event-order computation (a
deterministic dataflow recurrence -- equivalent to running the pipeline on
the DES, but directly assertable), and the validation benchmark
``benchmarks/test_dataplane_validation.py`` shows that

* the measured steady-state throughput converges to
  ``bottleneck_bandwidth / unit_size``, and
* the first unit arrives after exactly the flow graph's critical-path
  latency (plus per-hop transmission and processing time).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.errors import FederationError
from repro.obs import metrics as obs_metrics
from repro.obs.trace import tracer as obs_tracer
from repro.services.flowgraph import ServiceFlowGraph
from repro.services.requirement import Sid

_REGISTRY = obs_metrics.registry()
_M_STREAMS = _REGISTRY.counter("dataflow.streams", "simulated stream executions")
_M_UNITS = _REGISTRY.counter("dataflow.units", "data units pushed through flow graphs")

#: Per-service processing delay: one constant, or a per-SID mapping.
ProcessingDelay = Union[float, Mapping[Sid, float]]


@dataclass
class StreamConfig:
    """Parameters of a streaming run.

    Attributes:
        units: number of data units pushed through the federation.
        unit_size: size of each unit in bandwidth units x time (an edge of
            bandwidth ``B`` transmits one unit in ``unit_size / B``).
        processing_delay: time a service spends on each unit (scalar, or a
            mapping per service; missing services default to 0).
        emit_interval: minimum spacing between source emissions -- 0 means
            the source pushes as fast as the pipeline accepts.
    """

    units: int = 50
    unit_size: float = 1.0
    processing_delay: ProcessingDelay = 0.0
    emit_interval: float = 0.0

    def __post_init__(self) -> None:
        if self.units < 1:
            raise ValueError("need at least one unit")
        if self.unit_size <= 0:
            raise ValueError("unit_size must be > 0")
        if self.emit_interval < 0:
            raise ValueError("emit_interval must be >= 0")

    def delay_for(self, sid: Sid) -> float:
        if isinstance(self.processing_delay, Mapping):
            value = float(self.processing_delay.get(sid, 0.0))
        else:
            value = float(self.processing_delay)
        if value < 0:
            raise ValueError(f"processing delay for {sid!r} must be >= 0")
        return value


@dataclass
class StreamReport:
    """Everything a streaming run measured."""

    units: int
    #: Per sink service: delivery time of each unit (completion at sink).
    deliveries: Dict[Sid, Tuple[float, ...]]
    #: First unit fully delivered at the *slowest* sink.
    first_delivery: float
    #: Last unit fully delivered at the slowest sink.
    last_delivery: float
    #: Steady-state delivery rate at the slowest sink (units per time).
    throughput: float
    #: The paper's prediction: bottleneck bandwidth / unit size.
    predicted_throughput: float

    @property
    def prediction_error(self) -> float:
        """Relative error of the bottleneck prediction (0 = exact)."""
        if self.predicted_throughput == 0:
            return math.inf
        return abs(self.throughput - self.predicted_throughput) / self.predicted_throughput


def simulate_stream(
    flow_graph: ServiceFlowGraph,
    config: Optional[StreamConfig] = None,
) -> StreamReport:
    """Push ``config.units`` data units through a complete flow graph.

    The execution model, per unit ``k`` (0-based):

    * the source finishes producing unit ``k`` no earlier than
      ``k * emit_interval`` and after its own processing delay, in order;
    * edge ``u -> v`` carries one unit at a time: transmission of unit
      ``k`` starts when ``u`` finished it *and* the edge is free, takes
      ``unit_size / bandwidth``, then propagates for the edge latency;
    * service ``v`` starts unit ``k`` when every incoming edge delivered
      it and ``v`` finished unit ``k - 1`` (services are sequential in
      unit order but the *graph* runs in parallel), then spends its
      processing delay.

    Raises:
        FederationError: if the flow graph is incomplete or has
            unreachable edges (nothing can stream over those).
    """
    config = config or StreamConfig()
    flow_graph.validate()
    requirement = flow_graph.requirement
    order = requirement.topological_order()
    n = config.units

    # finish[sid][k]: time service sid completes unit k.
    finish: Dict[Sid, List[float]] = {sid: [0.0] * n for sid in order}
    # edge_free[(a, b)]: when the edge can start its next transmission.
    edge_free: Dict[Tuple[Sid, Sid], float] = {
        (e.src.sid, e.dst.sid): 0.0 for e in flow_graph.edges()
    }

    source = requirement.source
    source_delay = config.delay_for(source)
    previous = -math.inf
    for k in range(n):
        start = max(k * config.emit_interval, previous)
        previous = start + source_delay
        finish[source][k] = previous

    # Unit-major sweep keeps edge serialisation exact: all unit-k
    # transmissions are decided before any unit-(k+1) ones, matching FIFO
    # channels.
    for k in range(n):
        for sid in order[1:]:
            ready = 0.0
            for pred in requirement.predecessors(sid):
                edge = flow_graph.edge(pred, sid)
                assert edge is not None  # validate() guarantees this
                tx_time = config.unit_size / edge.quality.bandwidth
                start_tx = max(finish[pred][k], edge_free[(pred, sid)])
                edge_free[(pred, sid)] = start_tx + tx_time
                ready = max(ready, start_tx + tx_time + edge.quality.latency)
            own_delay = config.delay_for(sid)
            prev_finish = finish[sid][k - 1] if k > 0 else 0.0
            finish[sid][k] = max(ready, prev_finish) + own_delay

    deliveries = {
        sink: tuple(finish[sink]) for sink in requirement.sinks
    }
    slowest_first = max(times[0] for times in deliveries.values())
    slowest_last = max(times[-1] for times in deliveries.values())
    if n > 1 and slowest_last > slowest_first:
        throughput = (n - 1) / (slowest_last - slowest_first)
    else:
        throughput = math.inf
    bottleneck = flow_graph.bottleneck_bandwidth()
    predicted = (
        bottleneck / config.unit_size if math.isfinite(bottleneck) else math.inf
    )
    _M_STREAMS.inc()
    _M_UNITS.inc(n)
    # The sweep above is analytic (no DES clock), so the data-flow phase is
    # a point event on the wall clock, not a sim-time span.
    obs_tracer().event(  # sflow: noqa[SFL012] -- the stream sweep is analytic (no DES run, no session span exists); tests/export pin the span-less shape
        "dataflow.stream",
        units=n,
        throughput=throughput,
        first_delivery=slowest_first,
        last_delivery=slowest_last,
    )
    return StreamReport(
        units=n,
        deliveries=deliveries,
        first_delivery=slowest_first,
        last_delivery=slowest_last,
        throughput=throughput,
        predicted_throughput=predicted,
    )


def first_unit_latency(flow_graph: ServiceFlowGraph, config: StreamConfig) -> float:
    """Analytic delivery time of the very first unit.

    With an empty pipeline there is no queueing, so unit 0 follows the
    critical path: per edge, transmission (``unit_size / bandwidth``) plus
    propagation latency; per service, its processing delay.  Exposed for
    cross-checking :func:`simulate_stream` in tests.
    """
    requirement = flow_graph.requirement
    finish: Dict[Sid, float] = {
        requirement.source: config.delay_for(requirement.source)
    }
    for sid in requirement.topological_order()[1:]:
        ready = 0.0
        for pred in requirement.predecessors(sid):
            edge = flow_graph.edge(pred, sid)
            if edge is None:
                return math.inf
            hop = (
                config.unit_size / edge.quality.bandwidth
                + edge.quality.latency
            )
            ready = max(ready, finish[pred] + hop)
        finish[sid] = ready + config.delay_for(sid)
    return max(finish[s] for s in requirement.sinks)
