"""Service model: catalogs, requirements, abstract graphs, flow graphs.

This package implements the service-layer vocabulary of the paper:

* :mod:`repro.services.catalog` -- service types (SIDs) with typed
  inputs/outputs and the compatibility relation between them.
* :mod:`repro.services.requirement` -- the service requirement
  ``R(V_R, E_R)``: a DAG with one source, >= 1 sinks, describing which
  services the consumer wants federated and in what (partial) order.
* :mod:`repro.services.abstract_graph` -- the service abstract graph that
  bridges a requirement to an overlay: every required service populated with
  its instances, inter-service edges weighted by shortest-widest overlay
  paths (paper Fig. 6).
* :mod:`repro.services.flowgraph` -- the service flow graph
  ``G'(V', E')``: the solution object, with quality evaluation and the
  correctness coefficient of the evaluation section.
* :mod:`repro.services.workloads` -- generators for requirements, scenarios
  and the paper's travel-agency running example.
"""

from repro.services.catalog import ServiceCatalog, ServiceType
from repro.services.requirement import RequirementClass, ServiceRequirement
from repro.services.abstract_graph import AbstractEdge, AbstractGraph
from repro.services.flowgraph import FlowEdge, ServiceFlowGraph
from repro.services.execution import StreamConfig, StreamReport, simulate_stream
from repro.services.serialization import load_json, save_json

__all__ = [
    "ServiceCatalog",
    "ServiceType",
    "RequirementClass",
    "ServiceRequirement",
    "AbstractEdge",
    "AbstractGraph",
    "FlowEdge",
    "ServiceFlowGraph",
    "StreamConfig",
    "StreamReport",
    "simulate_stream",
    "load_json",
    "save_json",
]
