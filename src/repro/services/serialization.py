"""JSON (de)serialisation of scenarios, requirements and flow graphs.

A reproduction is only useful downstream if its inputs and outputs can
leave the process: this module round-trips every model object through
plain JSON-compatible dictionaries, so experiments can archive the exact
scenario behind a result and a federated flow graph can be handed to a
deployment layer.

Conventions:

* instances serialise as ``[sid, nid]`` pairs;
* qualities as ``{"bandwidth": ..., "latency": ...}`` (infinities appear
  as the strings ``"inf"`` to stay strict-JSON compatible);
* every ``*_to_dict`` has a ``*_from_dict`` inverse, property-tested for
  round-trip identity in ``tests/services/test_serialization.py``.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.errors import SFlowError
from repro.network.metrics import PathQuality
from repro.network.overlay import OverlayGraph, ServiceInstance
from repro.network.underlay import Underlay
from repro.services.catalog import ServiceCatalog, ServiceType
from repro.services.flowgraph import FlowEdge, ServiceFlowGraph
from repro.services.requirement import ServiceRequirement
from repro.services.workloads import Scenario

JsonDict = Dict[str, Any]


# -- scalars -----------------------------------------------------------------


def _num_to_json(value: float) -> Union[float, str]:
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return value


def _num_from_json(value: Union[float, int, str]) -> float:
    if value == "inf":
        return math.inf
    if value == "-inf":
        return -math.inf
    return float(value)


def quality_to_dict(quality: PathQuality) -> JsonDict:
    return {
        "bandwidth": _num_to_json(quality.bandwidth),
        "latency": _num_to_json(quality.latency),
    }


def quality_from_dict(data: JsonDict) -> PathQuality:
    return PathQuality(
        _num_from_json(data["bandwidth"]), _num_from_json(data["latency"])
    )


def instance_to_list(instance: ServiceInstance) -> List[Any]:
    return [instance.sid, instance.nid]


def instance_from_list(data: List[Any]) -> ServiceInstance:
    sid, nid = data
    return ServiceInstance(str(sid), int(nid))


# -- requirement ---------------------------------------------------------------


def requirement_to_dict(requirement: ServiceRequirement) -> JsonDict:
    return {
        "services": list(requirement.services()),
        "edges": [list(edge) for edge in requirement.edges()],
    }


def requirement_from_dict(data: JsonDict) -> ServiceRequirement:
    return ServiceRequirement(
        edges=[tuple(edge) for edge in data["edges"]],
        nodes=data["services"],
    )


# -- underlay ------------------------------------------------------------------


def underlay_to_dict(underlay: Underlay) -> JsonDict:
    return {
        "n": underlay.n,
        "links": [
            [link.u, link.v, link.bandwidth, link.latency]
            for link in underlay.links()
        ],
    }


def underlay_from_dict(data: JsonDict) -> Underlay:
    underlay = Underlay(int(data["n"]))
    for u, v, bandwidth, latency in data["links"]:
        underlay.add_link(int(u), int(v), float(bandwidth), float(latency))
    return underlay


# -- catalog ---------------------------------------------------------------------


def catalog_to_dict(catalog: ServiceCatalog) -> JsonDict:
    return {
        "types": [
            {
                "sid": catalog[sid].sid,
                "inputs": sorted(catalog[sid].inputs),
                "outputs": sorted(catalog[sid].outputs),
                "description": catalog[sid].description,
            }
            for sid in catalog.sids()
        ]
    }


def catalog_from_dict(data: JsonDict) -> ServiceCatalog:
    return ServiceCatalog(
        ServiceType(
            sid=entry["sid"],
            inputs=frozenset(entry["inputs"]),
            outputs=frozenset(entry["outputs"]),
            description=entry.get("description", ""),
        )
        for entry in data["types"]
    )


# -- overlay ----------------------------------------------------------------------


def overlay_to_dict(overlay: OverlayGraph) -> JsonDict:
    return {
        "instances": [instance_to_list(inst) for inst in overlay.instances()],
        "links": [
            {
                "src": instance_to_list(link.src),
                "dst": instance_to_list(link.dst),
                "quality": quality_to_dict(link.metrics),
                "underlay_path": list(link.underlay_path),
            }
            for inst in overlay.instances()
            for link in overlay.out_links(inst)
        ],
    }


def overlay_from_dict(data: JsonDict) -> OverlayGraph:
    overlay = OverlayGraph()
    for entry in data["instances"]:
        overlay.add_instance(instance_from_list(entry))
    for link in data["links"]:
        overlay.add_link(
            instance_from_list(link["src"]),
            instance_from_list(link["dst"]),
            quality_from_dict(link["quality"]),
            tuple(int(n) for n in link.get("underlay_path", ())),
        )
    return overlay


# -- flow graph ----------------------------------------------------------------------


def flow_graph_to_dict(graph: ServiceFlowGraph) -> JsonDict:
    return {
        "requirement": requirement_to_dict(graph.requirement),
        "assignment": {
            sid: instance_to_list(inst) for sid, inst in graph.assignment.items()
        },
        "edges": [
            {
                "src": instance_to_list(edge.src),
                "dst": instance_to_list(edge.dst),
                "quality": quality_to_dict(edge.quality),
                "overlay_path": [
                    instance_to_list(inst) for inst in edge.overlay_path
                ],
            }
            for edge in graph.edges()
        ],
    }


def flow_graph_from_dict(data: JsonDict) -> ServiceFlowGraph:
    requirement = requirement_from_dict(data["requirement"])
    assignment = {
        sid: instance_from_list(entry)
        for sid, entry in data["assignment"].items()
    }
    edges = [
        FlowEdge(
            src=instance_from_list(entry["src"]),
            dst=instance_from_list(entry["dst"]),
            quality=quality_from_dict(entry["quality"]),
            overlay_path=tuple(
                instance_from_list(inst) for inst in entry["overlay_path"]
            ),
        )
        for entry in data["edges"]
    ]
    return ServiceFlowGraph(requirement, assignment, edges)


# -- scenario ------------------------------------------------------------------------


def scenario_to_dict(scenario: Scenario) -> JsonDict:
    return {
        "seed": scenario.seed,
        "underlay": underlay_to_dict(scenario.underlay),
        "overlay": overlay_to_dict(scenario.overlay),
        "catalog": catalog_to_dict(scenario.catalog),
        "requirement": requirement_to_dict(scenario.requirement),
        "source_instance": instance_to_list(scenario.source_instance),
    }


def scenario_from_dict(data: JsonDict) -> Scenario:
    return Scenario(
        underlay=underlay_from_dict(data["underlay"]),
        overlay=overlay_from_dict(data["overlay"]),
        catalog=catalog_from_dict(data["catalog"]),
        requirement=requirement_from_dict(data["requirement"]),
        source_instance=instance_from_list(data["source_instance"]),
        seed=int(data["seed"]),
    )


# -- files ---------------------------------------------------------------------------

_KIND_CODECS = {
    "scenario": (scenario_to_dict, scenario_from_dict, Scenario),
    "flow_graph": (flow_graph_to_dict, flow_graph_from_dict, ServiceFlowGraph),
    "requirement": (requirement_to_dict, requirement_from_dict, ServiceRequirement),
    "overlay": (overlay_to_dict, overlay_from_dict, OverlayGraph),
    "underlay": (underlay_to_dict, underlay_from_dict, Underlay),
}


def save_json(obj: Any, path: Union[str, Path]) -> Path:
    """Write any supported model object to a tagged JSON file."""
    for kind, (encode, _decode, cls) in _KIND_CODECS.items():
        if isinstance(obj, cls):
            payload = {"kind": kind, "data": encode(obj)}
            break
    else:
        raise SFlowError(f"cannot serialise objects of type {type(obj).__name__}")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def load_json(path: Union[str, Path]) -> Any:
    """Read back an object written with :func:`save_json`."""
    payload = json.loads(Path(path).read_text())
    kind = payload.get("kind")
    if kind not in _KIND_CODECS:
        raise SFlowError(f"unknown serialised kind {kind!r} in {path}")
    _encode, decode, _cls = _KIND_CODECS[kind]
    return decode(payload["data"])
