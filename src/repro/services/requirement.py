"""Service requirements: what the consumer asks to have federated.

A service requirement is a DAG ``R(V_R, E_R)`` over service identifiers with
exactly one **source** service, at least one **sink** service, and edges that
fix the order in which service streams flow (Sec. 2.2).  The paper's
examples span a hierarchy of shapes which :meth:`ServiceRequirement.classify`
recognises:

* ``SINGLE``          -- a lone service (degenerate),
* ``PATH``            -- a chain, Fig. 1 (solved optimally by the baseline),
* ``TREE``            -- a service multicast tree (Jin & Nahrstedt),
* ``DISJOINT_PATHS``  -- parallel chains sharing only source & sink, Fig. 3,
* ``SPLIT_MERGE``     -- two-terminal series-parallel with real splits and
  merges, Fig. 5 (solved by the reduction heuristics),
* ``GENERAL``         -- any other DAG (solved heuristically / optimally by
  exhaustive search).

The class is immutable after construction; all mutating-looking operations
(:meth:`downstream_closure`, :meth:`subrequirement`) return new objects, so
requirements can safely be shared between simulated nodes.
"""

from __future__ import annotations

import enum
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.errors import RequirementError

Sid = str
Edge = Tuple[Sid, Sid]


class RequirementClass(enum.Enum):
    """Topology classes of service requirements, from simplest to generic."""

    SINGLE = "single"
    PATH = "path"
    TREE = "tree"
    DISJOINT_PATHS = "disjoint_paths"
    SPLIT_MERGE = "split_merge"
    GENERAL = "general"


class ServiceRequirement:
    """An immutable service requirement DAG.

    Args:
        edges: directed edges between service identifiers.
        nodes: extra nodes (only needed for the degenerate single-service
            requirement, which has no edges).

    Raises:
        RequirementError: if the graph has a cycle, more than one source,
            no sink, or services not connected to the source/sink structure.
    """

    def __init__(self, edges: Iterable[Edge] = (), nodes: Iterable[Sid] = ()) -> None:
        self._succ: Dict[Sid, Tuple[Sid, ...]] = {}
        self._pred: Dict[Sid, Tuple[Sid, ...]] = {}
        succ: Dict[Sid, List[Sid]] = {}
        pred: Dict[Sid, List[Sid]] = {}
        seen_edges: Set[Edge] = set()
        for node in nodes:
            succ.setdefault(node, [])
            pred.setdefault(node, [])
        for a, b in edges:
            if a == b:
                raise RequirementError(f"self-loop on service {a!r}")
            if (a, b) in seen_edges:
                continue  # duplicate edges carry no information
            seen_edges.add((a, b))
            succ.setdefault(a, []).append(b)
            succ.setdefault(b, [])
            pred.setdefault(b, []).append(a)
            pred.setdefault(a, [])
        if not succ:
            raise RequirementError("a requirement needs at least one service")
        self._succ = {k: tuple(sorted(v)) for k, v in succ.items()}
        self._pred = {k: tuple(sorted(v)) for k, v in pred.items()}
        self._edges: FrozenSet[Edge] = frozenset(seen_edges)
        self._order = self._validate_and_sort()
        self._source = self._order[0]
        self._sinks = tuple(s for s in self._order if not self._succ[s])

    # -- builders ------------------------------------------------------------

    @classmethod
    def from_path(cls, sids: Sequence[Sid]) -> "ServiceRequirement":
        """A chain requirement (Fig. 1): ``sids[0] -> sids[1] -> ...``."""
        if not sids:
            raise RequirementError("a path requirement needs at least one service")
        if len(sids) == 1:
            return cls(nodes=sids)
        return cls(edges=list(zip(sids, sids[1:])))

    @classmethod
    def parallel(
        cls, source: Sid, sink: Sid, branches: Sequence[Sequence[Sid]]
    ) -> "ServiceRequirement":
        """Disjoint-paths requirement (Fig. 3): ``source -> branch -> sink``.

        Each branch is the sequence of intermediate services on that path;
        an empty branch is a direct ``source -> sink`` edge.
        """
        if not branches:
            raise RequirementError("parallel requirement needs at least one branch")
        edges: List[Edge] = []
        for branch in branches:
            chain = [source, *branch, sink]
            edges.extend(zip(chain, chain[1:]))
        return cls(edges=edges)

    # -- composition -----------------------------------------------------------

    def then(self, downstream: "ServiceRequirement") -> "ServiceRequirement":
        """Series composition: every sink of this requirement feeds the
        source of ``downstream``.

        The service sets must be disjoint (a federated pipeline cannot ask
        for the same service twice under this model).
        """
        overlap = set(self._succ) & set(downstream._succ)
        if overlap:
            raise RequirementError(
                f"cannot compose requirements sharing services {sorted(overlap)}"
            )
        edges = list(self._edges) + list(downstream._edges)
        edges.extend((sink, downstream.source) for sink in self.sinks)
        return ServiceRequirement(
            edges=edges, nodes=set(self._succ) | set(downstream._succ)
        )

    def fan_out(self, branches: Sequence["ServiceRequirement"]) -> "ServiceRequirement":
        """Parallel composition: each branch hangs off this requirement's
        sinks (every sink feeds every branch's source).

        Branch service sets must be disjoint from this requirement's and
        from each other's.  The result is a multi-sink requirement whose
        sinks are the branches' sinks.
        """
        if not branches:
            raise RequirementError("fan_out needs at least one branch")
        seen = set(self._succ)
        edges = list(self._edges)
        nodes = set(self._succ)
        for branch in branches:
            overlap = seen & set(branch._succ)
            if overlap:
                raise RequirementError(
                    f"cannot compose requirements sharing services {sorted(overlap)}"
                )
            seen |= set(branch._succ)
            nodes |= set(branch._succ)
            edges.extend(branch._edges)
            edges.extend((sink, branch.source) for sink in self.sinks)
        return ServiceRequirement(edges=edges, nodes=nodes)

    # -- validation ----------------------------------------------------------

    def _validate_and_sort(self) -> Tuple[Sid, ...]:
        """Kahn topological sort + the paper's structural constraints."""
        sources = sorted(s for s in self._succ if not self._pred[s])
        if len(sources) != 1:
            raise RequirementError(
                f"a requirement must have exactly one source service, found {sources}"
            )
        indeg = {s: len(self._pred[s]) for s in self._succ}
        ready = [sources[0]]
        order: List[Sid] = []
        while ready:
            ready.sort()
            node = ready.pop(0)
            order.append(node)
            for nxt in self._succ[node]:
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    ready.append(nxt)
        if len(order) != len(self._succ):
            stuck = sorted(s for s in self._succ if indeg[s] > 0)
            raise RequirementError(f"requirement contains a cycle through {stuck}")
        sinks = [s for s in order if not self._succ[s]]
        if not sinks:
            raise RequirementError("a requirement must have at least one sink service")
        return tuple(order)

    # -- basic queries ---------------------------------------------------------

    @property
    def source(self) -> Sid:
        """The unique service with no upstream requirements."""
        return self._source

    @property
    def sinks(self) -> Tuple[Sid, ...]:
        """Services that deliver to end users (no downstream requirements)."""
        return self._sinks

    @property
    def sink(self) -> Sid:
        """The unique sink; raises if the requirement has several."""
        if len(self._sinks) != 1:
            raise RequirementError(
                f"requirement has {len(self._sinks)} sinks, expected exactly one"
            )
        return self._sinks[0]

    def services(self) -> Tuple[Sid, ...]:
        """All services in topological order (source first)."""
        return self._order

    def edges(self) -> Tuple[Edge, ...]:
        return tuple(sorted(self._edges))

    def has_edge(self, a: Sid, b: Sid) -> bool:
        return (a, b) in self._edges

    def __contains__(self, sid: Sid) -> bool:
        return sid in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def successors(self, sid: Sid) -> Tuple[Sid, ...]:
        self._check(sid)
        return self._succ[sid]

    def predecessors(self, sid: Sid) -> Tuple[Sid, ...]:
        self._check(sid)
        return self._pred[sid]

    def out_degree(self, sid: Sid) -> int:
        return len(self.successors(sid))

    def in_degree(self, sid: Sid) -> int:
        return len(self.predecessors(sid))

    def topological_order(self) -> Tuple[Sid, ...]:
        return self._order

    # -- reachability ----------------------------------------------------------

    def descendants(self, sid: Sid) -> FrozenSet[Sid]:
        """Services strictly downstream of ``sid``."""
        self._check(sid)
        return self._closure(sid, self._succ) - {sid}

    def ancestors(self, sid: Sid) -> FrozenSet[Sid]:
        """Services strictly upstream of ``sid``."""
        self._check(sid)
        return self._closure(sid, self._pred) - {sid}

    def _closure(self, start: Sid, adj: Dict[Sid, Tuple[Sid, ...]]) -> FrozenSet[Sid]:
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for nxt in adj[node]:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return frozenset(seen)

    # -- derived requirements ----------------------------------------------------

    def downstream_closure(self, sid: Sid) -> "ServiceRequirement":
        """The residual requirement rooted at ``sid``.

        This is exactly what an sFlow node forwards downstream: the
        sub-requirement induced on ``sid`` and everything reachable from it.
        ``sid`` becomes the (single) source of the result.
        """
        keep = self._closure(sid, self._succ)
        return self.subrequirement(keep)

    def subrequirement(self, keep: Iterable[Sid]) -> "ServiceRequirement":
        """Induced sub-requirement on ``keep`` (must stay a valid requirement)."""
        keep_set = set(keep)
        unknown = keep_set - set(self._succ)
        if unknown:
            raise RequirementError(f"unknown services {sorted(unknown)}")
        edges = [(a, b) for a, b in self._edges if a in keep_set and b in keep_set]
        return ServiceRequirement(edges=edges, nodes=keep_set)

    # -- dominators --------------------------------------------------------------

    def immediate_dominators(self) -> Dict[Sid, Sid]:
        """Immediate dominator of every service (source maps to itself).

        Service ``d`` dominates ``s`` when every stream from the source to
        ``s`` passes through ``d``.  The distributed sFlow algorithm uses
        dominators to place decision responsibility: the instance for a
        *merge* service is pinned by its immediate dominator -- "the tasks
        of computing optimal service flow graphs are generally assumed by
        the splitting node" (paper Sec. 4).

        Uses the Cooper-Harvey-Kennedy iteration, which converges in one
        pass over a DAG processed in topological order.
        """
        order = self._order
        index = {sid: i for i, sid in enumerate(order)}
        idom: Dict[Sid, Sid] = {self._source: self._source}

        def intersect(a: Sid, b: Sid) -> Sid:
            while a != b:
                while index[a] > index[b]:
                    a = idom[a]
                while index[b] > index[a]:
                    b = idom[b]
            return a

        for sid in order[1:]:
            preds = [p for p in self._pred[sid] if p in idom]
            new = preds[0]
            for pred in preds[1:]:
                new = intersect(new, pred)
            idom[sid] = new
        return idom

    # -- classification ---------------------------------------------------------

    def classify(self) -> RequirementClass:
        """Which of the paper's topology classes this requirement falls in."""
        if len(self) == 1:
            return RequirementClass.SINGLE
        if self._is_path():
            return RequirementClass.PATH
        if self._is_tree():
            return RequirementClass.TREE
        if self._is_disjoint_paths():
            return RequirementClass.DISJOINT_PATHS
        if self.is_series_parallel():
            return RequirementClass.SPLIT_MERGE
        return RequirementClass.GENERAL

    def _is_path(self) -> bool:
        return all(
            len(self._succ[s]) <= 1 and len(self._pred[s]) <= 1 for s in self._succ
        )

    def _is_tree(self) -> bool:
        return all(len(self._pred[s]) <= 1 for s in self._succ)

    def _is_disjoint_paths(self) -> bool:
        """Source and one sink; every intermediate has in/out degree one."""
        if len(self._sinks) != 1:
            return False
        sink = self._sinks[0]
        if len(self._succ[self._source]) < 2:
            return False
        for s in self._succ:
            if s in (self._source, sink):
                continue
            if len(self._succ[s]) != 1 or len(self._pred[s]) != 1:
                return False
        return True

    def is_series_parallel(self) -> bool:
        """Two-terminal series-parallel recognition by reduction.

        Repeatedly contracts series nodes (in=out=1) and merges parallel
        multi-edges; the requirement is series-parallel iff a single
        ``source -> sink`` edge remains.  Requirements with several sinks are
        never classified series-parallel.
        """
        if len(self._sinks) != 1:
            return False
        # Multi-edge-aware mutable copy: count parallel edges.
        succ: Dict[Sid, Dict[Sid, int]] = {s: {} for s in self._succ}
        pred: Dict[Sid, Dict[Sid, int]] = {s: {} for s in self._succ}
        for a, b in self._edges:
            succ[a][b] = succ[a].get(b, 0) + 1
            pred[b][a] = pred[b].get(a, 0) + 1
        source, sink = self._source, self._sinks[0]
        changed = True
        while changed:
            changed = False
            # Parallel reduction: collapse multi-edges.
            for a in list(succ):
                for b in list(succ[a]):
                    if succ[a][b] > 1:
                        succ[a][b] = 1
                        pred[b][a] = 1
                        changed = True
            # Series reduction: contract x -> v -> y when v has in=out=1.
            for v in list(succ):
                if v in (source, sink) or v not in succ:
                    continue
                if sum(pred[v].values()) == 1 and sum(succ[v].values()) == 1:
                    (x,) = pred[v]
                    (y,) = succ[v]
                    if x == y:
                        continue
                    del succ[x][v]
                    del pred[v][x]
                    del succ[v][y]
                    del pred[y][v]
                    succ[x][y] = succ[x].get(y, 0) + 1
                    pred[y][x] = pred[y].get(x, 0) + 1
                    del succ[v]
                    del pred[v]
                    changed = True
        return (
            len(succ) == 2
            and sum(succ[source].values()) == 1
            and sink in succ[source]
        )

    def as_path(self) -> Tuple[Sid, ...]:
        """The chain of services, for ``PATH``/``SINGLE`` requirements only."""
        cls = self.classify()
        if cls not in (RequirementClass.PATH, RequirementClass.SINGLE):
            raise RequirementError(f"requirement is {cls.value}, not a path")
        return self._order

    # -- equality ----------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ServiceRequirement):
            return NotImplemented
        return self._edges == other._edges and set(self._succ) == set(other._succ)

    def __hash__(self) -> int:
        return hash((self._edges, frozenset(self._succ)))

    def _check(self, sid: Sid) -> None:
        if sid not in self._succ:
            raise KeyError(f"service {sid!r} not in requirement")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ServiceRequirement(services={len(self)}, edges={len(self._edges)}, "
            f"class={self.classify().value})"
        )
