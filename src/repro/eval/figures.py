"""Regenerate the paper's evaluation figures as tables (Fig. 10 a-d).

Each ``fig10x`` function runs the corresponding sweep and returns a
:class:`FigureTable` -- the x-axis (network size) and one mean-valued series
per algorithm, exactly the rows the paper plots.  ``format_table`` renders
aligned ASCII; ``write_csv`` saves the raw series.

Command line::

    python -m repro.eval.figures all --trials 10 --sizes 10 20 30 40 50
    python -m repro.eval.figures fig10a --csv results/

Expected shapes (see EXPERIMENTS.md for the recorded runs):

* **fig10a** correctness: sflow >= 0.9 everywhere and above fixed, random
  (~0.5) and service_path (lowest).
* **fig10b** computation time: sFlow and global optimal both grow
  polynomially, optimal slightly below sFlow (the distributed run re-solves
  residuals at every hop).
* **fig10c** latency: sflow lowest; service_path worst (sequential
  execution, no parallelism).
* **fig10d** bandwidth: optimal >= sflow > fixed > random at every size.
"""

from __future__ import annotations

import argparse
import csv
import math
import sys
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.eval.experiments import (
    EvaluationConfig,
    TrialRecord,
    run_evaluation,
    run_scalability,
)
from repro.eval.stats import finite, mean


@dataclass
class FigureTable:
    """One reproduced figure: x values and named mean series."""

    figure: str
    title: str
    xlabel: str
    ylabel: str
    sizes: Tuple[int, ...]
    series: Dict[str, Tuple[float, ...]]

    def row(self, size: int) -> Dict[str, float]:
        idx = self.sizes.index(size)
        return {name: values[idx] for name, values in self.series.items()}


def _series(
    records: Sequence[TrialRecord],
    sizes: Sequence[int],
    algorithms: Sequence[str],
    metric: str,
    *,
    feasible_only: bool,
) -> Dict[str, Tuple[float, ...]]:
    out: Dict[str, Tuple[float, ...]] = {}
    for alg in algorithms:
        values: List[float] = []
        for size in sizes:
            bucket = [
                getattr(r, metric)
                for r in records
                if r.algorithm == alg
                and r.network_size == size
                and (r.feasible or not feasible_only)
            ]
            values.append(mean(finite(bucket)))
        out[alg] = tuple(values)
    return out


def fig10a(
    config: Optional[EvaluationConfig] = None,
    records: Optional[Sequence[TrialRecord]] = None,
) -> FigureTable:
    """Fig. 10(a): correctness coefficient vs network size."""
    config = config or EvaluationConfig()
    if records is None:
        records = run_evaluation(config)
    algorithms = ("sflow", "fixed", "random", "service_path")
    return FigureTable(
        figure="fig10a",
        title="Correctness of the sFlow algorithm",
        xlabel="Network Size",
        ylabel="Correctness Coefficient",
        sizes=config.network_sizes,
        series=_series(
            records, config.network_sizes, algorithms, "correctness",
            feasible_only=False,
        ),
    )


def fig10b(
    config: Optional[EvaluationConfig] = None,
    records: Optional[Sequence[TrialRecord]] = None,
) -> FigureTable:
    """Fig. 10(b): computation time vs network size (path requirements)."""
    config = config or EvaluationConfig()
    if records is None:
        records = run_scalability(config)
    algorithms = ("sflow", "optimal")
    return FigureTable(
        figure="fig10b",
        title="Time vs. Network Size (simple requirements)",
        xlabel="Network Size",
        ylabel="Time (seconds)",
        sizes=config.network_sizes,
        series=_series(
            records, config.network_sizes, algorithms, "elapsed_seconds",
            feasible_only=False,
        ),
    )


def fig10c(
    config: Optional[EvaluationConfig] = None,
    records: Optional[Sequence[TrialRecord]] = None,
) -> FigureTable:
    """Fig. 10(c): end-to-end latency vs network size.

    sFlow / fixed / random deliver DAG flow graphs, so their latency is the
    critical path; the service-path system executes sequentially, so it is
    charged its chain latency (the paper's point about parallel processing).
    """
    config = config or EvaluationConfig()
    if records is None:
        records = run_evaluation(config)
    sizes = config.network_sizes
    series = _series(
        records, sizes, ("sflow", "fixed", "random"), "latency", feasible_only=True
    )
    series["service_path"] = _series(
        records, sizes, ("service_path",), "sequential_latency", feasible_only=False
    )["service_path"]
    return FigureTable(
        figure="fig10c",
        title="sFlow Latency Performance",
        xlabel="Network Size",
        ylabel="Latency (time units)",
        sizes=sizes,
        series=series,
    )


def fig10d(
    config: Optional[EvaluationConfig] = None,
    records: Optional[Sequence[TrialRecord]] = None,
) -> FigureTable:
    """Fig. 10(d): end-to-end bandwidth vs network size."""
    config = config or EvaluationConfig()
    if records is None:
        records = run_evaluation(config)
    algorithms = ("optimal", "sflow", "fixed", "random")
    return FigureTable(
        figure="fig10d",
        title="sFlow Bandwidth Performance",
        xlabel="Network Size",
        ylabel="End-to-End Bandwidth (capacity units)",
        sizes=config.network_sizes,
        series=_series(
            records, config.network_sizes, algorithms, "bandwidth",
            feasible_only=True,
        ),
    )


def fig_robustness(
    config: Optional["RobustnessConfig"] = None,
    records: Optional[Sequence["RobustnessRecord"]] = None,
) -> FigureTable:
    """Crash-tolerance panel: federation success rate vs network size,
    one series per mid-protocol crash rate (beyond the paper -- the
    "agile" claim stress-tested while the protocol runs)."""
    from repro.eval.robustness import RobustnessConfig, run_robustness, summarize

    config = config or RobustnessConfig()
    if records is None:
        records = run_robustness(config)
    cells = summarize(list(records))
    by_rate: Dict[str, List[float]] = {}
    for rate in config.crash_rates:
        series: List[float] = []
        for size in config.network_sizes:
            cell = next(
                (
                    c
                    for c in cells
                    if c.network_size == size and c.crash_rate == rate
                ),
                None,
            )
            series.append(cell.success_rate if cell is not None else math.nan)
        by_rate[f"crash={rate:g}"] = series
    return FigureTable(
        figure="crash_tolerance",
        title="Federation success under mid-protocol crash-stop failures",
        xlabel="Network Size",
        ylabel="Federation Success Rate",
        sizes=config.network_sizes,
        series={name: tuple(values) for name, values in by_rate.items()},
    )


ALL_FIGURES = {
    "fig10a": fig10a,
    "fig10b": fig10b,
    "fig10c": fig10c,
    "fig10d": fig10d,
}


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def format_table(table: FigureTable) -> str:
    """Aligned ASCII rendering of a figure table."""
    names = list(table.series)
    header = [table.xlabel] + names
    rows: List[List[str]] = []
    for i, size in enumerate(table.sizes):
        row = [str(size)]
        for name in names:
            value = table.series[name][i]
            row.append("nan" if math.isnan(value) else f"{value:.4g}")
        rows.append(row)
    widths = [
        max(len(header[c]), *(len(r[c]) for r in rows)) for c in range(len(header))
    ]
    lines = [
        f"{table.figure}: {table.title}  [{table.ylabel}]",
        "  ".join(h.ljust(w) for h, w in zip(header, widths)),
        "  ".join("-" * w for w in widths),
    ]
    lines += ["  ".join(c.ljust(w) for c, w in zip(row, widths)) for row in rows]
    return "\n".join(lines)


def format_chart(
    table: FigureTable, *, width: int = 60, height: int = 12
) -> str:
    """ASCII line chart of a figure table (one letter per series).

    A terminal-friendly rendition of the paper's plots: the y-axis spans
    the finite data range, each series is drawn with its first letter
    (upper-cased on collision order), and a legend maps letters back to
    algorithm names.  Cells where several series coincide show ``*``.
    """
    if width < 10 or height < 4:
        raise ValueError("chart needs width >= 10 and height >= 4")
    points: Dict[str, List[Tuple[int, float]]] = {}
    finite_values: List[float] = []
    for name, values in table.series.items():
        series_points = [
            (i, v) for i, v in enumerate(values) if not math.isnan(v) and math.isfinite(v)
        ]
        points[name] = series_points
        finite_values.extend(v for _, v in series_points)
    if not finite_values:
        return f"{table.figure}: (no finite data to chart)"
    lo, hi = min(finite_values), max(finite_values)
    if hi == lo:
        hi = lo + 1.0
    n_cols = len(table.sizes)
    grid = [[" "] * width for _ in range(height)]

    def col_of(index: int) -> int:
        if n_cols == 1:
            return width // 2
        return round(index * (width - 1) / (n_cols - 1))

    def row_of(value: float) -> int:
        frac = (value - lo) / (hi - lo)
        return (height - 1) - round(frac * (height - 1))

    letters: Dict[str, str] = {}
    used: set = set()
    for name in table.series:
        letter = name[0]
        letter = letter.upper() if letter in used else letter
        while letter in used:
            letter = chr(ord(letter) + 1)
        used.add(letter)
        letters[name] = letter
    for name, series_points in points.items():
        letter = letters[name]
        for index, value in series_points:
            r, c = row_of(value), col_of(index)
            grid[r][c] = "*" if grid[r][c] not in (" ", letter) else letter

    lines = [f"{table.figure}: {table.title}"]
    for r, row in enumerate(grid):
        label = hi if r == 0 else (lo if r == height - 1 else None)
        prefix = f"{label:>10.3g} |" if label is not None else " " * 10 + " |"
        lines.append(prefix + "".join(row))
    axis = " " * 10 + "-" * (width + 1)
    lines.append(axis)
    tick_row = [" "] * width
    for i, size in enumerate(table.sizes):
        text = str(size)
        start = min(col_of(i), width - len(text))
        for j, ch in enumerate(text):
            tick_row[start + j] = ch
    lines.append(" " * 11 + "".join(tick_row) + f"   [{table.xlabel}]")
    legend = ", ".join(f"{letters[name]}={name}" for name in table.series)
    lines.append(f"  legend: {legend}   (* = overlap)")
    return "\n".join(lines)


def write_csv(table: FigureTable, directory: Path) -> Path:
    """Write the figure's series to ``<directory>/<figure>.csv``."""
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{table.figure}.csv"
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        names = list(table.series)
        writer.writerow(["network_size"] + names)
        for i, size in enumerate(table.sizes):
            writer.writerow([size] + [table.series[name][i] for name in names])
    return path


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point (also installed as ``sflow-figures``)."""
    parser = argparse.ArgumentParser(
        description="Regenerate the sFlow paper's Fig. 10 panels as tables."
    )
    parser.add_argument(
        "figure",
        choices=sorted(ALL_FIGURES) + ["robustness", "all"],
        help=(
            "which panel to regenerate ('all' covers the Fig. 10 panels; "
            "'robustness' runs the crash-tolerance sweep)"
        ),
    )
    parser.add_argument("--trials", type=int, default=20, help="trials per size")
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=[10, 20, 30, 40, 50]
    )
    parser.add_argument("--services", type=int, default=6)
    parser.add_argument("--horizon", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--csv", type=Path, default=None, help="also write CSVs here")
    parser.add_argument(
        "--chart", action="store_true", help="also render ASCII charts"
    )
    args = parser.parse_args(argv)

    config = EvaluationConfig(
        network_sizes=tuple(args.sizes),
        trials=args.trials,
        n_services=args.services,
        horizon=args.horizon,
        seed=args.seed,
    )
    wanted = sorted(ALL_FIGURES) if args.figure == "all" else [args.figure]
    # fig10a/c/d share one mixed-requirement sweep; fig10b runs its own.
    shared = (
        run_evaluation(config)
        if any(f in wanted for f in ("fig10a", "fig10c", "fig10d"))
        else None
    )
    for name in wanted:
        if name == "robustness":
            from repro.eval.robustness import RobustnessConfig

            table = fig_robustness(
                RobustnessConfig(
                    network_sizes=tuple(args.sizes),
                    trials=args.trials,
                    n_services=args.services,
                    horizon=args.horizon,
                    seed=args.seed,
                )
            )
        elif name == "fig10b":
            table = fig10b(config)
        else:
            table = ALL_FIGURES[name](config, records=shared)
        print(format_table(table))
        print()
        if args.chart:
            print(format_chart(table))
            print()
        if args.csv is not None:
            path = write_csv(table, args.csv)
            print(f"  wrote {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI shim
    sys.exit(main())
