"""Experiment sweeps behind every panel of the paper's Fig. 10.

One *trial* = one generated scenario (underlay + overlay + requirement) on
which every algorithm runs against the same inputs, plus the global optimal
benchmark used for the correctness coefficient.  A sweep runs ``trials``
trials for every network size in ``network_sizes`` and returns tidy
:class:`TrialRecord` rows; the figure modules aggregate them.

Fig. 10(b) is special: the paper restricts it to *simple* (path)
requirements "since there is no polynomial time algorithm for finding the
optimal service flow graph for non-simple service requirements"; use
:func:`run_scalability` for that sweep.
"""

from __future__ import annotations

import io
import multiprocessing
import os
import random
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.alternatives import (
    FixedAlgorithm,
    RandomAlgorithm,
    ServicePathAlgorithm,
)
from repro.core.optimal import GlobalOptimalAlgorithm
from repro.core.sflow import SFlowAlgorithm, SFlowConfig
from repro.errors import FederationError
from repro.obs import metrics as obs_metrics
from repro.obs import timeseries as obs_timeseries
from repro.obs.causal import (
    CampaignProfile,
    aggregate_profiles,
    merge_campaigns,
    profile_recording,
)
from repro.obs.clock import Stopwatch
from repro.obs.recorder import Recorder, parse_recording
from repro.obs.trace import tracer as obs_tracer
from repro.obs.slo import SloSpec, replay as slo_replay
from repro.routing.oracle import RouteOracle
from repro.services.flowgraph import ServiceFlowGraph
from repro.services.requirement import RequirementClass
from repro.services.workloads import Scenario, ScenarioConfig, generate_scenario

#: The algorithm line-up of the evaluation section.
ALGORITHMS = ("sflow", "fixed", "random", "service_path", "optimal")


@dataclass
class EvaluationConfig:
    """Sweep parameters (defaults follow the paper's setup).

    The paper evaluates network sizes 10..50; requirements "of any type"
    (mixed classes) for the quality panels and path requirements for the
    timing panel.  ``trials`` scenarios are generated per size from
    deterministic sub-seeds of ``seed``.
    """

    network_sizes: Tuple[int, ...] = (10, 20, 30, 40, 50)
    trials: int = 20
    n_services: int = 6
    requirement_class: Optional[RequirementClass] = None
    instances_per_service: Tuple[int, int] = (1, 3)
    scale_instances: bool = True
    horizon: int = 2
    pareto: bool = True
    use_link_state: bool = False
    seed: int = 0
    #: Evaluation parallelism: 0 or 1 runs the sweep serially in-process;
    #: ``n >= 2`` fans the independent (size, trial) cells out over a pool
    #: of ``n`` worker processes; -1 uses every CPU.  Every cell derives
    #: its randomness from ``seed`` alone and results are concatenated in
    #: cell-submission order, so the parallel sweep reproduces the serial
    #: one record for record (wall-clock timing fields aside).
    workers: int = 0
    #: Optional sim-time metric sampling inside every sflow cell (see
    #: :attr:`repro.core.sflow.SFlowConfig.sample_interval`); ``None``
    #: keeps the legacy schedule bit for bit.
    sample_interval: Optional[float] = None
    #: SLOs graded over the sweep's folded series bank (needs
    #: ``sample_interval``); verdicts land in :class:`SweepTelemetry`.
    slos: Tuple[SloSpec, ...] = ()

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise ValueError("need at least one trial")
        if not self.network_sizes:
            raise ValueError("need at least one network size")
        if self.workers < -1:
            raise ValueError("workers must be >= -1")
        if self.sample_interval is not None and self.sample_interval <= 0:
            raise ValueError("sample_interval must be > 0 (or None)")
        self.slos = tuple(self.slos)
        if self.slos and self.sample_interval is None:
            raise ValueError("slos need sample_interval to be evaluated")

    def instance_range(self, network_size: int) -> Tuple[int, int]:
        """Instances per service for a given network size.

        In the paper every network node is a service node (Fig. 4), so the
        overlay grows with the network.  With ``scale_instances`` (default)
        we replicate that: instance counts are chosen so the total number of
        service instances roughly fills the network; otherwise the static
        ``instances_per_service`` range is used.
        """
        if not self.scale_instances:
            return self.instances_per_service
        per_service = max(1, round(network_size / self.n_services))
        return (max(1, per_service - 1), per_service + 1)


@dataclass
class TrialRecord:
    """One algorithm's outcome on one scenario."""

    network_size: int
    trial: int
    algorithm: str
    requirement_class: str
    feasible: bool
    bandwidth: float
    latency: float
    sequential_latency: float
    correctness: float
    elapsed_seconds: float
    messages: int = 0
    convergence_time: float = 0.0
    assigned_services: int = 0
    total_services: int = 0


def run_trial(
    scenario: Scenario,
    *,
    horizon: int = 2,
    pareto: bool = True,
    use_link_state: bool = False,
    rng: Optional[random.Random] = None,
    stopwatch: Optional[Stopwatch] = None,
) -> List[TrialRecord]:
    """Run the full algorithm line-up on one scenario.

    Returns one record per algorithm.  The optimal benchmark always runs
    (it defines the correctness coefficient); if the scenario is infeasible
    even for it, every record is marked infeasible.  ``stopwatch``
    injects the host clock behind ``elapsed_seconds`` (tests script it).
    """
    records, _ = run_trial_with_series(
        scenario,
        horizon=horizon,
        pareto=pareto,
        use_link_state=use_link_state,
        rng=rng,
        stopwatch=stopwatch,
    )
    return records


def run_trial_with_series(
    scenario: Scenario,
    *,
    horizon: int = 2,
    pareto: bool = True,
    use_link_state: bool = False,
    rng: Optional[random.Random] = None,
    stopwatch: Optional[Stopwatch] = None,
    sample_interval: Optional[float] = None,
) -> Tuple[List[TrialRecord], Dict[str, dict]]:
    """:func:`run_trial` plus the sflow run's sampled series bank.

    With ``sample_interval`` set, the sflow arm of the line-up runs under
    a :class:`~repro.obs.timeseries.SeriesSampler` and the second element
    is its plain-dict bank (empty otherwise -- and empty for the
    centralized baselines, which have no simulation to sample).
    """
    rng = rng or random.Random(scenario.seed)
    stopwatch = stopwatch if stopwatch is not None else Stopwatch()
    requirement = scenario.requirement
    overlay = scenario.overlay
    source = scenario.source_instance
    clazz = requirement.classify().value

    def record(
        name: str,
        graph: Optional[ServiceFlowGraph],
        elapsed: float,
        optimal: Optional[ServiceFlowGraph],
        *,
        messages: int = 0,
        convergence: float = 0.0,
    ) -> TrialRecord:
        if graph is None:
            return TrialRecord(
                network_size=scenario.underlay.n,
                trial=scenario.seed,
                algorithm=name,
                requirement_class=clazz,
                feasible=False,
                bandwidth=0.0,
                latency=float("inf"),
                sequential_latency=float("inf"),
                correctness=0.0,
                elapsed_seconds=elapsed,
                messages=messages,
                convergence_time=convergence,
                assigned_services=0,
                total_services=len(requirement),
            )
        quality = graph.quality()
        return TrialRecord(
            network_size=scenario.underlay.n,
            trial=scenario.seed,
            algorithm=name,
            requirement_class=clazz,
            feasible=quality.reachable and graph.is_complete(),
            bandwidth=quality.bandwidth,
            latency=quality.latency,
            sequential_latency=graph.sequential_latency(),
            correctness=(
                graph.correctness_coefficient(optimal) if optimal is not None else 0.0
            ),
            elapsed_seconds=elapsed,
            messages=messages,
            convergence_time=convergence,
            assigned_services=len(graph.assignment),
            total_services=len(requirement),
        )

    records: List[TrialRecord] = []
    series_bank: Dict[str, dict] = {}

    optimal_alg = GlobalOptimalAlgorithm()
    started = stopwatch.read()
    try:
        optimal = optimal_alg.solve(requirement, overlay, source_instance=source)
    except FederationError:
        optimal = None
    optimal_elapsed = stopwatch.read() - started

    sflow_alg = SFlowAlgorithm(
        SFlowConfig(
            horizon=horizon,
            pareto=pareto,
            use_link_state=use_link_state,
            sample_interval=sample_interval,
        )
    )
    service_path_alg = ServicePathAlgorithm()
    for name, algorithm in (
        ("sflow", sflow_alg),
        ("fixed", FixedAlgorithm()),
        ("random", RandomAlgorithm()),
        ("service_path", service_path_alg),
    ):
        started = stopwatch.read()
        try:
            graph = algorithm.solve(
                requirement, overlay, source_instance=source, rng=rng
            )
        except FederationError:
            graph = None
        elapsed = stopwatch.read() - started
        messages = 0
        convergence = 0.0
        if name == "sflow" and sflow_alg.last_result is not None:
            messages = sflow_alg.last_result.messages
            convergence = sflow_alg.last_result.convergence_time
            series_bank = sflow_alg.last_result.series
        rec = record(
            name,
            graph,
            elapsed,
            optimal,
            messages=messages,
            convergence=convergence,
        )
        if name == "service_path" and graph is not None:
            if service_path_alg.last_serialized is not None:
                # The path system delivers the compound stream hop by hop;
                # its effective latency is the serialized chain's, not the
                # DAG critical path of the realised edges.
                rec.sequential_latency = service_path_alg.last_serialized.latency
            if not service_path_alg.last_native:
                # A serialized delivery moves the bits but violates the
                # requirement's flow relationships: the federation *failed*
                # (paper: "it can only handle the simplest service
                # requirements"), so it scores zero correctness.
                rec.correctness = 0.0
                rec.feasible = False
        records.append(rec)
    records.append(
        record("optimal", optimal, optimal_elapsed, optimal)
    )
    return records, series_bank


def _evaluate_cell(payload: Tuple[EvaluationConfig, int, int]) -> List[TrialRecord]:
    """One (size, trial) sweep cell; self-seeded, safe in a worker process."""
    records, _ = _observed_cell(payload)
    return records


def _observed_cell(
    payload: Tuple[EvaluationConfig, int, int]
) -> Tuple[List[TrialRecord], Dict[str, dict]]:
    """:func:`_evaluate_cell` plus the cell's sampled series bank."""
    config, size, trial = payload
    scenario_seed = _trial_seed(config.seed, size, trial)
    scenario = generate_scenario(
        ScenarioConfig(
            network_size=size,
            n_services=config.n_services,
            requirement_class=config.requirement_class,
            instances_per_service=config.instance_range(size),
            seed=scenario_seed,
        )
    )
    return run_trial_with_series(
        scenario,
        horizon=config.horizon,
        pareto=config.pareto,
        use_link_state=config.use_link_state,
        rng=random.Random(scenario_seed ^ 0x5F5F),
        sample_interval=config.sample_interval,
    )


def resolve_workers(workers: int, cells: int) -> int:
    """Effective pool size: 0 for serial execution, else >= 2 processes."""
    if workers == -1:
        workers = os.cpu_count() or 1
    if workers <= 1 or cells <= 1:
        return 0
    return min(workers, cells)


def _pool_context():
    """The multiprocessing context evaluation pools run under.

    ``fork`` whenever the platform offers it: workers then inherit the
    parent's memory copy-on-write -- in particular the process-wide
    :class:`~repro.routing.oracle.RouteOracle` with every tree and CSR
    snapshot the parent already warmed, so a fan-out starts from the
    parent's cache instead of five cold ones.  Platforms without fork
    (Windows, macOS spawn default) fall back to the default context and
    start cold; the *results* are identical either way, only the warm-up
    cost differs.
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platform without fork
        return multiprocessing.get_context()


def _oracle_handoff() -> Tuple[bool, bool, int, int]:
    """The parent oracle's configuration, shipped to pool initializers."""
    oracle = RouteOracle.default()
    return (
        oracle.enabled,
        oracle.use_kernel,
        oracle.kernel_min_nodes,
        oracle.max_entries,
    )


def _init_worker(handoff: Tuple[bool, bool, int, int]) -> None:
    """Pool initializer: align the worker's oracle with the parent's.

    Under fork the worker already inherits the parent's oracle object
    (cache, snapshots and all); under spawn it starts fresh.  Either way
    the parent's *configuration* -- the enabled/kernel switches the perf
    harness A/Bs -- must override defaults, or a pooled sweep would
    quietly measure the wrong arm while the serial one measured the
    right one.
    """
    enabled, use_kernel, kernel_min_nodes, max_entries = handoff
    oracle = RouteOracle.default()
    oracle.enabled = enabled
    oracle.use_kernel = use_kernel
    oracle.kernel_min_nodes = kernel_min_nodes
    oracle.max_entries = max_entries


def map_cells(worker, payloads: List, workers: int) -> List:
    """Deterministically map ``worker`` over cell payloads.

    With a pool, ``Pool.map`` collects results in submission order -- the
    same order the serial loop produces -- so the only difference between
    the two paths is wall-clock time.  Each cell reseeds from its payload,
    never from global state, which makes the fan-out bit-reproducible.
    Pools fork (:func:`_pool_context`) and re-apply the parent oracle's
    configuration in every worker (:func:`_init_worker`).
    """
    pool_size = resolve_workers(workers, len(payloads))
    if pool_size == 0:
        return [worker(payload) for payload in payloads]
    ctx = _pool_context()
    with ctx.Pool(
        pool_size, initializer=_init_worker, initargs=(_oracle_handoff(),)
    ) as pool:
        return pool.map(worker, payloads, chunksize=1)


class _MeteredCell:
    """Picklable wrapper: run a cell worker and ship its metric delta.

    Each cell snapshots the (per-process) metrics registry before and after
    the worker runs and returns ``(result, delta)``.  The before/after diff
    is what makes pooled sweeps correct: a forked worker inherits whatever
    counter values the parent had accumulated, and subtracting the entry
    snapshot leaves exactly the increments this cell caused.
    """

    def __init__(self, worker) -> None:
        self.worker = worker

    def __call__(self, payload) -> Tuple[object, Dict[str, dict]]:
        reg = obs_metrics.registry()
        before = reg.snapshot()
        result = self.worker(payload)
        delta = obs_metrics.diff_snapshots(reg.snapshot(), before)
        return result, delta


def map_cells_with_metrics(
    worker, payloads: List, workers: int
) -> Tuple[List, Dict[str, dict]]:
    """:func:`map_cells` plus per-cell metric merging.

    Returns ``(cell_results, merged_delta)`` where ``merged_delta`` is the
    submission-order merge of every cell's registry delta.  When a pool
    computed the cells, the merge is also folded into the parent process's
    registry -- worker increments land in forked copies, and without this
    fold the parent's counters would silently disagree with a serial run of
    the same sweep.
    """
    pool_size = resolve_workers(workers, len(payloads))
    metered = _MeteredCell(worker)
    if pool_size == 0:
        results = [metered(payload) for payload in payloads]
    else:
        ctx = _pool_context()
        with ctx.Pool(
            pool_size, initializer=_init_worker, initargs=(_oracle_handoff(),)
        ) as pool:
            results = pool.map(metered, payloads, chunksize=1)
    merged: Dict[str, dict] = {}
    for _, delta in results:
        merged = obs_metrics.merge_snapshots(merged, delta)
    if pool_size != 0:
        obs_metrics.registry().apply(merged)
    return [cell for cell, _ in results], merged


class _ProfiledCell:
    """Picklable wrapper: run a cell under a private in-memory recorder.

    The cell's federations trace into a per-cell ``StringIO`` recording
    (the tracer's previous sink is saved and restored, so an outer
    recording -- if any -- is shadowed for the cell, never closed), which
    is then causally profiled *inside the cell*.  Only the folded
    :class:`~repro.obs.causal.CampaignProfile` travels back to the parent:
    cheap to pickle, and its submission-order merge is plain float
    addition, so pooled sweeps aggregate bit-identically to serial ones.
    """

    def __init__(self, worker) -> None:
        self.worker = worker

    def __call__(self, payload) -> Tuple[object, CampaignProfile]:
        buffer = io.StringIO()
        active = obs_tracer()
        previous = active.sink
        recorder = Recorder(buffer)
        active.set_sink(recorder)
        try:
            result = self.worker(payload)
        finally:
            active.set_sink(previous)
            recorder.close()
        recording = parse_recording(buffer.getvalue().splitlines())
        profile = aggregate_profiles(profile_recording(recording))
        return result, profile


def run_evaluation_with_profiles(
    config: EvaluationConfig,
) -> Tuple[List[TrialRecord], CampaignProfile]:
    """The quality sweep plus a campaign-level causal profile.

    Every cell's sflow runs are flight-recorded in memory and reduced to
    critical-path aggregates (:mod:`repro.obs.causal`); cells fold in
    submission order, so the returned :class:`CampaignProfile` is
    bit-identical between ``workers=0`` and any pool size.  Trial records
    are unchanged from :func:`run_evaluation` -- tracing stamps message
    ids but never alters protocol behaviour.
    """
    payloads = [
        (config, size, trial)
        for size in config.network_sizes
        for trial in range(config.trials)
    ]
    cell_results, _ = map_cells_with_metrics(
        _ProfiledCell(_evaluate_cell), payloads, config.workers
    )
    records: List[TrialRecord] = []
    campaign = CampaignProfile()
    for cell_records, profile in cell_results:
        records.extend(cell_records)
        merge_campaigns(campaign, profile)
    return records, campaign


def run_evaluation(config: EvaluationConfig) -> List[TrialRecord]:
    """The main quality sweep (Fig. 10 a/c/d): mixed requirements.

    Deterministic: every (size, trial) pair derives its scenario seed from
    ``config.seed``, so re-runs produce identical tables -- including
    across the serial/parallel switch (``config.workers``), which only
    changes who computes each independent cell, not what is computed.
    """
    records, _ = run_evaluation_with_metrics(config)
    return records


def run_evaluation_with_metrics(
    config: EvaluationConfig,
) -> Tuple[List[TrialRecord], Dict[str, dict]]:
    """:func:`run_evaluation` plus the sweep's merged metric snapshot.

    The second element is the registry delta the whole sweep caused --
    protocol counters, oracle hit/miss counts, channel histograms.  All
    integer series (counters, histogram counts and buckets) are identical
    whether the cells ran serially or over a worker pool (per-cell deltas
    merge in submission order either way); float histogram *sums* can
    differ in the final bits, since subtraction-based deltas round
    differently than a fresh accumulation.
    """
    records, metrics, _ = run_evaluation_with_observability(config)
    return records, metrics


@dataclass
class SweepTelemetry:
    """Series and SLO outputs of one observed sweep.

    ``series`` is the submission-order fold of every cell's sampled bank
    (:func:`repro.obs.timeseries.merge_banks`): per-sim-time aggregates
    across cells.  All integer series content (sample times, counter
    deltas, histogram counts and buckets) is bit-identical between serial
    and pooled runs; histogram float *sums* carry the same last-bit
    rounding caveat as :func:`run_evaluation_with_metrics`.
    ``slo_results``/``alerts`` come from replaying ``config.slos`` over
    that folded bank (empty when no SLOs were configured).
    """

    series: Dict[str, dict] = field(default_factory=dict)
    slo_results: List[dict] = field(default_factory=list)
    alerts: List[dict] = field(default_factory=list)


def run_evaluation_with_observability(
    config: EvaluationConfig,
) -> Tuple[List[TrialRecord], Dict[str, dict], SweepTelemetry]:
    """The fully observed sweep: records, merged metrics, telemetry.

    With ``config.sample_interval`` unset the telemetry is empty and the
    sweep is exactly :func:`run_evaluation_with_metrics`.  With it set,
    every sflow cell samples series in sim time; the per-cell banks fold
    in submission order, so ``workers`` never changes the folded series
    beyond the histogram-sum rounding caveat (the eval tests assert
    bit-equality of everything integer), and any ``config.slos`` are
    graded over the folded bank.
    """
    payloads = [
        (config, size, trial)
        for size in config.network_sizes
        for trial in range(config.trials)
    ]
    cell_results, metrics = map_cells_with_metrics(
        _observed_cell, payloads, config.workers
    )
    records: List[TrialRecord] = []
    bank: Dict[str, dict] = {}
    for cell_records, cell_bank in cell_results:
        records.extend(cell_records)
        bank = obs_timeseries.merge_banks(bank, cell_bank)
    telemetry = SweepTelemetry(series=bank)
    if config.slos:
        engine = slo_replay(bank, config.slos)
        telemetry.slo_results = engine.summary()
        telemetry.alerts = list(engine.alerts)
    return records, metrics, telemetry


def run_scalability(config: EvaluationConfig) -> List[TrialRecord]:
    """The Fig. 10(b) sweep: *path requirements only* (paper's constraint)."""
    return run_evaluation(replace(config, requirement_class=RequirementClass.PATH))


def _trial_seed(base: int, size: int, trial: int) -> int:
    """Stable per-(size, trial) seed derivation."""
    return (base * 1_000_003 + size * 7919 + trial * 104_729) % (2**31)


def aggregate(
    records: Iterable[TrialRecord],
    metric: str,
    *,
    feasible_only: bool = True,
) -> Dict[Tuple[int, str], float]:
    """Mean of ``metric`` grouped by ``(network_size, algorithm)``.

    ``feasible_only`` drops infeasible trials (e.g. a random pick that broke
    the flow graph) from quality metrics, so a handful of failures do not
    turn a mean latency into infinity.
    """
    from repro.eval.stats import mean

    groups: Dict[Tuple[int, str], List[float]] = {}
    for rec in records:
        if feasible_only and not rec.feasible:
            continue
        groups.setdefault((rec.network_size, rec.algorithm), []).append(
            getattr(rec, metric)
        )
    return {key: mean(values) for key, values in groups.items()}
