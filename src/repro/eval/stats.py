"""Small statistics helpers for the evaluation harness.

Deliberately dependency-free (no numpy) so the reporting path stays simple
and the functions are trivially property-testable.  All helpers tolerate
empty input by returning ``nan`` rather than raising -- an experiment sweep
with zero feasible trials should surface as a visible NaN cell, not a crash
halfway through a table.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Tuple


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; ``nan`` for empty input."""
    data = list(values)
    if not data:
        return math.nan
    return sum(data) / len(data)


def sample_stdev(values: Iterable[float]) -> float:
    """Sample standard deviation (n-1 denominator); ``nan`` if n < 2."""
    data = list(values)
    if len(data) < 2:
        return math.nan
    mu = mean(data)
    return math.sqrt(sum((x - mu) ** 2 for x in data) / (len(data) - 1))


def confidence_interval_95(values: Iterable[float]) -> Tuple[float, float]:
    """Normal-approximation 95% confidence interval for the mean.

    Returns ``(low, high)``; degenerates to ``(mean, mean)`` for a single
    sample and ``(nan, nan)`` for none.  The paper reports plain curves, so
    this is only used for the optional verbose tables.
    """
    data = list(values)
    if not data:
        return (math.nan, math.nan)
    mu = mean(data)
    if len(data) < 2:
        return (mu, mu)
    half = 1.96 * sample_stdev(data) / math.sqrt(len(data))
    return (mu - half, mu + half)


def finite(values: Iterable[float]) -> List[float]:
    """Filter out NaN/inf values (infeasible-trial guards)."""
    return [v for v in values if math.isfinite(v)]
