"""Evaluation harness: reproduce every panel of the paper's Fig. 10.

* :mod:`repro.eval.experiments` -- scenario sweeps over network sizes with
  all five algorithms (sFlow, fixed, random, service path, global optimal),
  producing tidy per-trial records.
* :mod:`repro.eval.figures` -- regenerates each figure panel as a printed
  table / CSV (``python -m repro.eval.figures all``).
* :mod:`repro.eval.robustness` -- the crash-tolerance sweep: crash rate x
  network size under mid-protocol chaos plans.
* :mod:`repro.eval.stats` -- tiny statistics helpers (means, confidence
  intervals) so the harness has no plotting dependencies.
"""

from repro.eval.experiments import (
    EvaluationConfig,
    SweepTelemetry,
    TrialRecord,
    run_evaluation,
    run_evaluation_with_observability,
    run_scalability,
    run_trial,
)
from repro.eval.stats import mean, sample_stdev, confidence_interval_95
from repro.eval.campaign import CampaignResult, run_campaign
from repro.eval.churn import ChurnConfig, ChurnReport, run_churn_experiment
from repro.eval.robustness import (
    RobustnessCell,
    RobustnessConfig,
    RobustnessExperiment,
    RobustnessRecord,
    run_robustness,
    summarize,
)

__all__ = [
    "CampaignResult",
    "ChurnConfig",
    "ChurnReport",
    "RobustnessCell",
    "RobustnessConfig",
    "RobustnessExperiment",
    "RobustnessRecord",
    "run_campaign",
    "run_churn_experiment",
    "run_robustness",
    "summarize",
    "EvaluationConfig",
    "SweepTelemetry",
    "TrialRecord",
    "confidence_interval_95",
    "mean",
    "run_evaluation",
    "run_evaluation_with_observability",
    "run_scalability",
    "run_trial",
    "sample_stdev",
]
