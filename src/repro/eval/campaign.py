"""One-shot evaluation campaigns: every figure, one results directory.

``python -m repro.eval.campaign --out results/`` reruns the paper's whole
evaluation (Fig. 10 a-d) with a single shared configuration and writes a
self-describing results directory::

    results/
      manifest.json     # config, library version, per-figure file index
      fig10a.csv .. fig10d.csv
      records.csv       # every raw trial record (tidy format)
      summary.txt       # the four rendered tables

The manifest makes a results directory reproducible in one command: it
records the exact :class:`~repro.eval.experiments.EvaluationConfig` used,
so ``run_campaign(config_from_manifest(path))`` regenerates it.
"""

from __future__ import annotations

import argparse
import csv
import dataclasses
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import repro
from repro.eval.experiments import (
    EvaluationConfig,
    TrialRecord,
    run_evaluation,
    run_scalability,
)
from repro.eval.figures import (
    FigureTable,
    fig10a,
    fig10b,
    fig10c,
    fig10d,
    format_table,
    write_csv,
)
from repro.services.requirement import RequirementClass


@dataclass
class CampaignResult:
    """Everything a campaign produced, in memory."""

    config: EvaluationConfig
    tables: Dict[str, FigureTable]
    mixed_records: List[TrialRecord]
    path_records: List[TrialRecord]
    output_dir: Optional[Path] = None


def run_campaign(
    config: Optional[EvaluationConfig] = None,
    *,
    output_dir: Optional[Path] = None,
) -> CampaignResult:
    """Run the full evaluation; optionally persist a results directory."""
    config = config or EvaluationConfig()
    mixed = run_evaluation(config)
    paths = run_scalability(config)
    tables = {
        "fig10a": fig10a(config, records=mixed),
        "fig10b": fig10b(config, records=paths),
        "fig10c": fig10c(config, records=mixed),
        "fig10d": fig10d(config, records=mixed),
    }
    result = CampaignResult(
        config=config,
        tables=tables,
        mixed_records=mixed,
        path_records=paths,
        output_dir=output_dir,
    )
    if output_dir is not None:
        _persist(result, Path(output_dir))
    return result


def _persist(result: CampaignResult, directory: Path) -> None:
    directory.mkdir(parents=True, exist_ok=True)
    files = {}
    for name, table in result.tables.items():
        files[name] = write_csv(table, directory).name
    records_path = directory / "records.csv"
    _write_records(
        records_path, result.mixed_records + result.path_records
    )
    files["records"] = records_path.name
    summary_path = directory / "summary.txt"
    summary_path.write_text(
        "\n\n".join(format_table(t) for t in result.tables.values()) + "\n"
    )
    files["summary"] = summary_path.name
    manifest = {
        "library_version": repro.__version__,
        "config": config_to_dict(result.config),
        "files": files,
        "trial_counts": {
            "mixed": len(result.mixed_records),
            "path": len(result.path_records),
        },
    }
    (directory / "manifest.json").write_text(
        json.dumps(manifest, indent=2, sort_keys=True)
    )
    result.output_dir = directory


def _write_records(path: Path, records: Sequence[TrialRecord]) -> None:
    fields = [f.name for f in dataclasses.fields(TrialRecord)]
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(fields)
        for record in records:
            writer.writerow([getattr(record, name) for name in fields])


# -- manifest round-trip --------------------------------------------------------


def config_to_dict(config: EvaluationConfig) -> Dict:
    data = dataclasses.asdict(config)
    data["requirement_class"] = (
        config.requirement_class.value if config.requirement_class else None
    )
    return data


def config_from_manifest(path: Path) -> EvaluationConfig:
    """Rebuild the exact configuration a results directory was made with."""
    manifest = json.loads(Path(path).read_text())
    data = dict(manifest["config"])
    clazz = data.pop("requirement_class", None)
    return EvaluationConfig(
        network_sizes=tuple(data.pop("network_sizes")),
        instances_per_service=tuple(data.pop("instances_per_service")),
        requirement_class=RequirementClass(clazz) if clazz else None,
        **data,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the full sFlow evaluation campaign."
    )
    parser.add_argument("--out", type=Path, required=True)
    parser.add_argument("--trials", type=int, default=20)
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=[10, 20, 30, 40, 50]
    )
    parser.add_argument("--services", type=int, default=6)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    config = EvaluationConfig(
        network_sizes=tuple(args.sizes),
        trials=args.trials,
        n_services=args.services,
        seed=args.seed,
    )
    result = run_campaign(config, output_dir=args.out)
    for table in result.tables.values():
        print(format_table(table))
        print()
    print(f"results written to {result.output_dir}")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI shim
    sys.exit(main())
