"""Robustness sweep: federation survival under mid-protocol crash-stop chaos.

The `RobustnessExperiment` answers the question the Fig. 10 panels cannot:
what happens when service nodes die *while* the sfederate protocol is
running?  For every ``(network size, crash rate)`` cell it runs ``trials``
seeded scenarios twice -- once undisturbed (the baseline) and once under a
:class:`~repro.network.failures.ChaosPlan` that crashes a ``crash rate``
fraction of the overlay's instances at seeded times inside the federation
window -- and reports:

* **success rate**: fraction of runs that still produced a complete flow
  graph (failover + bounded re-federation doing their job);
* **quality degradation**: bandwidth / latency of the recovered graph
  relative to the crash-free baseline (failing over to the next-best
  instance is allowed to cost quality, not correctness);
* **recovery overhead**: extra protocol messages and extra virtual time
  relative to the baseline run.

At crash rate 0 the sweep degenerates to a determinism check: the run must
reproduce the crash-free baseline **bit-for-bit** (same seeds, same flow
graphs, same message counts), proving the crash-tolerance machinery is
behaviour-preserving on the happy path.  ``identical_to_baseline`` records
exactly that comparison.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.sflow import SFlowAlgorithm, SFlowConfig, SFlowResult
from repro.eval.experiments import _trial_seed, map_cells_with_metrics
from repro.network.failures import ChaosPlan, FailureInjector
from repro.services.workloads import Scenario, ScenarioConfig, generate_scenario


def _robustness_cell(
    payload: Tuple["RobustnessExperiment", int, int]
) -> List["RobustnessRecord"]:
    """Top-level (picklable) worker for one (size, trial) sweep cell."""
    experiment, size, trial = payload
    return experiment._cell(size, trial)


@dataclass
class RobustnessConfig:
    """Sweep parameters for the crash-tolerance experiment.

    The protocol knobs (``retransmit_timeout``, ``max_retries``,
    ``failover_backoff``, ``deadline``) are deliberately tighter than the
    :class:`~repro.core.sflow.SFlowConfig` defaults: a robustness sweep
    measures recovery, so suspicion must be cheap and deadlines must be
    reachable within a short simulated window.
    """

    network_sizes: Tuple[int, ...] = (10, 20, 30)
    crash_rates: Tuple[float, ...] = (0.0, 0.1, 0.2, 0.3)
    trials: int = 10
    n_services: int = 5
    horizon: int = 2
    #: Crash times are drawn uniformly from ``[0, crash_window)`` -- inside
    #: the federation run, which is the whole point.
    crash_window: float = 40.0
    revive_after: Optional[float] = None
    retransmit_timeout: float = 10.0
    max_retries: int = 2
    failover_backoff: float = 5.0
    max_failovers: int = 8
    deadline: Optional[float] = 600.0
    max_refederations: int = 2
    seed: int = 0
    #: Like :attr:`EvaluationConfig.workers`: 0/1 serial, ``n >= 2`` fans
    #: the (size, trial) cells over ``n`` processes, -1 uses every CPU.
    #: Records are bit-identical to the serial sweep (every field is a
    #: virtual-time or counter measurement, never wall-clock).
    workers: int = 0

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise ValueError("need at least one trial")
        if not self.network_sizes:
            raise ValueError("need at least one network size")
        if not self.crash_rates:
            raise ValueError("need at least one crash rate")
        for rate in self.crash_rates:
            if not (0.0 <= rate <= 1.0):
                raise ValueError(f"crash rates must be in [0, 1], got {rate}")
        if self.workers < -1:
            raise ValueError("workers must be >= -1")

    def instance_range(self, network_size: int) -> Tuple[int, int]:
        """Instances per service, scaled with the network like the Fig. 10
        sweeps (every network node is a service node)."""
        per_service = max(1, round(network_size / self.n_services))
        return (max(1, per_service - 1), per_service + 1)

    def protocol_config(self) -> SFlowConfig:
        """The :class:`SFlowConfig` every run (baseline and chaotic) uses."""
        return SFlowConfig(
            horizon=self.horizon,
            retransmit_timeout=self.retransmit_timeout,
            max_retries=self.max_retries,
            failover_backoff=self.failover_backoff,
            max_failovers=self.max_failovers,
            deadline=self.deadline,
            max_refederations=self.max_refederations,
        )


@dataclass
class RobustnessRecord:
    """One chaotic run compared against its crash-free baseline."""

    network_size: int
    crash_rate: float
    trial: int
    succeeded: bool
    bandwidth: float
    latency: float
    baseline_bandwidth: float
    baseline_latency: float
    messages: int
    baseline_messages: int
    convergence_time: float
    baseline_convergence: float
    crashes: int
    failovers: int
    refederations: int
    recovery_events: int
    failure_reason: str = ""
    #: True iff the run reproduced the baseline flow graph exactly (same
    #: assignment, same message count, same convergence time) -- the
    #: bit-for-bit check that must hold at crash rate 0.
    identical_to_baseline: bool = False

    @property
    def bandwidth_degradation(self) -> float:
        """Fractional bandwidth lost vs the baseline (0 = none)."""
        if not self.succeeded or self.baseline_bandwidth <= 0:
            return 1.0
        return max(0.0, 1.0 - self.bandwidth / self.baseline_bandwidth)

    @property
    def extra_messages(self) -> int:
        """Recovery overhead in protocol messages."""
        return max(0, self.messages - self.baseline_messages)

    @property
    def extra_time(self) -> float:
        """Recovery overhead in virtual time."""
        return max(0.0, self.convergence_time - self.baseline_convergence)


class RobustnessExperiment:
    """The crash rate x network size sweep (see the module docstring)."""

    def __init__(self, config: Optional[RobustnessConfig] = None) -> None:
        self.config = config or RobustnessConfig()

    def _scenario(self, size: int, trial: int) -> Scenario:
        seed = _trial_seed(self.config.seed, size, trial)
        return generate_scenario(
            ScenarioConfig(
                network_size=size,
                n_services=self.config.n_services,
                instances_per_service=self.config.instance_range(size),
                seed=seed,
            )
        )

    def _chaos(self, scenario: Scenario, crash_rate: float) -> Optional[ChaosPlan]:
        if crash_rate <= 0:
            return None
        chaos_seed = scenario.seed ^ 0xC0FFEE
        injector = FailureInjector(
            random.Random(chaos_seed),
            protect=[scenario.source_instance],
        )
        return injector.chaos_plan(
            scenario.overlay,
            crash_rate=crash_rate,
            window=self.config.crash_window,
            revive_after=self.config.revive_after,
            seed=chaos_seed,
        )

    def _cell(self, size: int, trial: int) -> List[RobustnessRecord]:
        """One (size, trial) cell: the baseline run plus every crash rate."""
        protocol = self.config.protocol_config()
        scenario = self._scenario(size, trial)
        baseline = SFlowAlgorithm(protocol).federate(
            scenario.requirement,
            scenario.overlay,
            source_instance=scenario.source_instance,
        )
        return [
            self._record(
                size,
                rate,
                trial,
                baseline,
                SFlowAlgorithm(protocol).federate(
                    scenario.requirement,
                    scenario.overlay,
                    source_instance=scenario.source_instance,
                    chaos=self._chaos(scenario, rate),
                ),
            )
            for rate in self.config.crash_rates
        ]

    def run(self) -> List[RobustnessRecord]:
        """The sweep; cells fan out over ``config.workers`` processes.

        Cells are fully independent (scenario, chaos and protocol all
        reseed from ``config.seed``) and collected in submission order, so
        the parallel table is bit-identical to the serial one.
        """
        records, _ = self.run_with_metrics()
        return records

    def run_with_metrics(
        self,
    ) -> Tuple[List[RobustnessRecord], Dict[str, dict]]:
        """:meth:`run` plus the sweep's merged metric-registry delta
        (merged across worker processes in submission order, so serial and
        pooled sweeps report the same counter totals)."""
        payloads = [
            (self, size, trial)
            for size in self.config.network_sizes
            for trial in range(self.config.trials)
        ]
        cells, metrics = map_cells_with_metrics(
            _robustness_cell, payloads, self.config.workers
        )
        records: List[RobustnessRecord] = []
        for cell in cells:
            records.extend(cell)
        return records, metrics

    @staticmethod
    def _record(
        size: int,
        rate: float,
        trial: int,
        baseline: SFlowResult,
        result: SFlowResult,
    ) -> RobustnessRecord:
        succeeded = result.flow_graph is not None
        quality = result.flow_graph.quality() if succeeded else None
        base_quality = (
            baseline.flow_graph.quality()
            if baseline.flow_graph is not None
            else None
        )
        identical = (
            succeeded
            and baseline.flow_graph is not None
            and result.flow_graph.assignment == baseline.flow_graph.assignment
            and result.messages == baseline.messages
            and result.convergence_time == baseline.convergence_time
        )
        return RobustnessRecord(
            network_size=size,
            crash_rate=rate,
            trial=trial,
            succeeded=succeeded,
            bandwidth=quality.bandwidth if quality else 0.0,
            latency=quality.latency if quality else float("inf"),
            baseline_bandwidth=base_quality.bandwidth if base_quality else 0.0,
            baseline_latency=(
                base_quality.latency if base_quality else float("inf")
            ),
            messages=result.messages,
            baseline_messages=baseline.messages,
            convergence_time=result.convergence_time,
            baseline_convergence=baseline.convergence_time,
            crashes=result.crashes,
            failovers=result.failovers,
            refederations=result.refederations,
            recovery_events=len(result.recovery_log),
            failure_reason=result.failure_reason,
            identical_to_baseline=identical,
        )


def run_robustness(
    config: Optional[RobustnessConfig] = None,
) -> List[RobustnessRecord]:
    """Convenience wrapper mirroring :func:`repro.eval.experiments.run_evaluation`."""
    return RobustnessExperiment(config).run()


@dataclass
class RobustnessCell:
    """Aggregates of one ``(network size, crash rate)`` sweep cell."""

    network_size: int
    crash_rate: float
    trials: int
    success_rate: float
    mean_bandwidth_degradation: float
    mean_extra_messages: float
    mean_extra_time: float
    mean_failovers: float
    mean_refederations: float
    all_identical_to_baseline: bool


def summarize(records: List[RobustnessRecord]) -> List[RobustnessCell]:
    """Collapse trial records into per-cell aggregates, cell-sorted."""
    from repro.eval.stats import mean

    cells: Dict[Tuple[int, float], List[RobustnessRecord]] = {}
    for record in records:
        cells.setdefault((record.network_size, record.crash_rate), []).append(
            record
        )
    out: List[RobustnessCell] = []
    for (size, rate), bucket in sorted(cells.items()):
        survivors = [r for r in bucket if r.succeeded]
        out.append(
            RobustnessCell(
                network_size=size,
                crash_rate=rate,
                trials=len(bucket),
                success_rate=len(survivors) / len(bucket),
                mean_bandwidth_degradation=(
                    mean([r.bandwidth_degradation for r in survivors])
                    if survivors
                    else 1.0
                ),
                mean_extra_messages=mean(
                    [float(r.extra_messages) for r in bucket]
                ),
                mean_extra_time=mean([r.extra_time for r in bucket]),
                mean_failovers=mean([float(r.failovers) for r in bucket]),
                mean_refederations=mean(
                    [float(r.refederations) for r in bucket]
                ),
                all_identical_to_baseline=all(
                    r.identical_to_baseline for r in bucket
                ),
            )
        )
    return out
