"""Robustness sweep: federation survival under mid-protocol crash-stop chaos.

The `RobustnessExperiment` answers the question the Fig. 10 panels cannot:
what happens when service nodes die *while* the sfederate protocol is
running?  For every ``(network size, crash rate)`` cell it runs ``trials``
seeded scenarios twice -- once undisturbed (the baseline) and once under a
:class:`~repro.network.failures.ChaosPlan` that crashes a ``crash rate``
fraction of the overlay's instances at seeded times inside the federation
window -- and reports:

* **success rate**: fraction of runs that still produced a complete flow
  graph (failover + bounded re-federation doing their job);
* **quality degradation**: bandwidth / latency of the recovered graph
  relative to the crash-free baseline (failing over to the next-best
  instance is allowed to cost quality, not correctness);
* **recovery overhead**: extra protocol messages and extra virtual time
  relative to the baseline run.

At crash rate 0 the sweep degenerates to a determinism check: the run must
reproduce the crash-free baseline **bit-for-bit** (same seeds, same flow
graphs, same message counts), proving the crash-tolerance machinery is
behaviour-preserving on the happy path.  ``identical_to_baseline`` records
exactly that comparison.
"""

from __future__ import annotations

import argparse
import contextlib
import csv
import dataclasses
import random
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.detector import BreakerConfig, DetectorConfig, RetryPolicy
from repro.core.sflow import SFlowAlgorithm, SFlowConfig, SFlowResult
from repro.eval.experiments import _trial_seed, map_cells_with_metrics
from repro.network.failures import ChaosPlan, FailureInjector
from repro.services.workloads import Scenario, ScenarioConfig, generate_scenario


def _robustness_cell(
    payload: Tuple["RobustnessExperiment", int, int]
) -> List["RobustnessRecord"]:
    """Top-level (picklable) worker for one (size, trial) sweep cell."""
    experiment, size, trial = payload
    return experiment._cell(size, trial)


@dataclass
class RobustnessConfig:
    """Sweep parameters for the crash-tolerance experiment.

    The protocol knobs (``retransmit_timeout``, ``max_retries``,
    ``failover_backoff``, ``deadline``) are deliberately tighter than the
    :class:`~repro.core.sflow.SFlowConfig` defaults: a robustness sweep
    measures recovery, so suspicion must be cheap and deadlines must be
    reachable within a short simulated window.
    """

    network_sizes: Tuple[int, ...] = (10, 20, 30)
    crash_rates: Tuple[float, ...] = (0.0, 0.1, 0.2, 0.3)
    trials: int = 10
    n_services: int = 5
    horizon: int = 2
    #: Crash times are drawn uniformly from ``[0, crash_window)`` -- inside
    #: the federation run, which is the whole point.
    crash_window: float = 40.0
    revive_after: Optional[float] = None
    retransmit_timeout: float = 10.0
    max_retries: int = 2
    failover_backoff: float = 5.0
    max_failovers: int = 8
    deadline: Optional[float] = 600.0
    max_refederations: int = 2
    seed: int = 0
    #: Like :attr:`EvaluationConfig.workers`: 0/1 serial, ``n >= 2`` fans
    #: the (size, trial) cells over ``n`` processes, -1 uses every CPU.
    #: Records are bit-identical to the serial sweep (every field is a
    #: virtual-time or counter measurement, never wall-clock).
    workers: int = 0

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise ValueError("need at least one trial")
        if not self.network_sizes:
            raise ValueError("need at least one network size")
        if not self.crash_rates:
            raise ValueError("need at least one crash rate")
        for rate in self.crash_rates:
            if not (0.0 <= rate <= 1.0):
                raise ValueError(f"crash rates must be in [0, 1], got {rate}")
        if self.workers < -1:
            raise ValueError("workers must be >= -1")

    def instance_range(self, network_size: int) -> Tuple[int, int]:
        """Instances per service, scaled with the network like the Fig. 10
        sweeps (every network node is a service node)."""
        per_service = max(1, round(network_size / self.n_services))
        return (max(1, per_service - 1), per_service + 1)

    def protocol_config(self) -> SFlowConfig:
        """The :class:`SFlowConfig` every run (baseline and chaotic) uses."""
        return SFlowConfig(
            horizon=self.horizon,
            retransmit_timeout=self.retransmit_timeout,
            max_retries=self.max_retries,
            failover_backoff=self.failover_backoff,
            max_failovers=self.max_failovers,
            deadline=self.deadline,
            max_refederations=self.max_refederations,
        )


@dataclass
class RobustnessRecord:
    """One chaotic run compared against its crash-free baseline."""

    network_size: int
    crash_rate: float
    trial: int
    succeeded: bool
    bandwidth: float
    latency: float
    baseline_bandwidth: float
    baseline_latency: float
    messages: int
    baseline_messages: int
    convergence_time: float
    baseline_convergence: float
    crashes: int
    failovers: int
    refederations: int
    recovery_events: int
    failure_reason: str = ""
    #: True iff the run reproduced the baseline flow graph exactly (same
    #: assignment, same message count, same convergence time) -- the
    #: bit-for-bit check that must hold at crash rate 0.
    identical_to_baseline: bool = False

    @property
    def bandwidth_degradation(self) -> float:
        """Fractional bandwidth lost vs the baseline (0 = none)."""
        if not self.succeeded or self.baseline_bandwidth <= 0:
            return 1.0
        return max(0.0, 1.0 - self.bandwidth / self.baseline_bandwidth)

    @property
    def extra_messages(self) -> int:
        """Recovery overhead in protocol messages."""
        return max(0, self.messages - self.baseline_messages)

    @property
    def extra_time(self) -> float:
        """Recovery overhead in virtual time."""
        return max(0.0, self.convergence_time - self.baseline_convergence)


class RobustnessExperiment:
    """The crash rate x network size sweep (see the module docstring)."""

    def __init__(self, config: Optional[RobustnessConfig] = None) -> None:
        self.config = config or RobustnessConfig()

    def _scenario(self, size: int, trial: int) -> Scenario:
        seed = _trial_seed(self.config.seed, size, trial)
        return generate_scenario(
            ScenarioConfig(
                network_size=size,
                n_services=self.config.n_services,
                instances_per_service=self.config.instance_range(size),
                seed=seed,
            )
        )

    def _chaos(self, scenario: Scenario, crash_rate: float) -> Optional[ChaosPlan]:
        if crash_rate <= 0:
            return None
        chaos_seed = scenario.seed ^ 0xC0FFEE
        injector = FailureInjector(
            random.Random(chaos_seed),
            protect=[scenario.source_instance],
        )
        return injector.chaos_plan(
            scenario.overlay,
            crash_rate=crash_rate,
            window=self.config.crash_window,
            revive_after=self.config.revive_after,
            seed=chaos_seed,
        )

    def _cell(self, size: int, trial: int) -> List[RobustnessRecord]:
        """One (size, trial) cell: the baseline run plus every crash rate."""
        protocol = self.config.protocol_config()
        scenario = self._scenario(size, trial)
        baseline = SFlowAlgorithm(protocol).federate(
            scenario.requirement,
            scenario.overlay,
            source_instance=scenario.source_instance,
        )
        return [
            self._record(
                size,
                rate,
                trial,
                baseline,
                SFlowAlgorithm(protocol).federate(
                    scenario.requirement,
                    scenario.overlay,
                    source_instance=scenario.source_instance,
                    chaos=self._chaos(scenario, rate),
                ),
            )
            for rate in self.config.crash_rates
        ]

    def run(self) -> List[RobustnessRecord]:
        """The sweep; cells fan out over ``config.workers`` processes.

        Cells are fully independent (scenario, chaos and protocol all
        reseed from ``config.seed``) and collected in submission order, so
        the parallel table is bit-identical to the serial one.
        """
        records, _ = self.run_with_metrics()
        return records

    def run_with_metrics(
        self,
    ) -> Tuple[List[RobustnessRecord], Dict[str, dict]]:
        """:meth:`run` plus the sweep's merged metric-registry delta
        (merged across worker processes in submission order, so serial and
        pooled sweeps report the same counter totals)."""
        payloads = [
            (self, size, trial)
            for size in self.config.network_sizes
            for trial in range(self.config.trials)
        ]
        cells, metrics = map_cells_with_metrics(
            _robustness_cell, payloads, self.config.workers
        )
        records: List[RobustnessRecord] = []
        for cell in cells:
            records.extend(cell)
        return records, metrics

    @staticmethod
    def _record(
        size: int,
        rate: float,
        trial: int,
        baseline: SFlowResult,
        result: SFlowResult,
    ) -> RobustnessRecord:
        succeeded = result.flow_graph is not None
        quality = result.flow_graph.quality() if succeeded else None
        base_quality = (
            baseline.flow_graph.quality()
            if baseline.flow_graph is not None
            else None
        )
        identical = (
            succeeded
            and baseline.flow_graph is not None
            and result.flow_graph.assignment == baseline.flow_graph.assignment
            and result.messages == baseline.messages
            and result.convergence_time == baseline.convergence_time
        )
        return RobustnessRecord(
            network_size=size,
            crash_rate=rate,
            trial=trial,
            succeeded=succeeded,
            bandwidth=quality.bandwidth if quality else 0.0,
            latency=quality.latency if quality else float("inf"),
            baseline_bandwidth=base_quality.bandwidth if base_quality else 0.0,
            baseline_latency=(
                base_quality.latency if base_quality else float("inf")
            ),
            messages=result.messages,
            baseline_messages=baseline.messages,
            convergence_time=result.convergence_time,
            baseline_convergence=baseline.convergence_time,
            crashes=result.crashes,
            failovers=result.failovers,
            refederations=result.refederations,
            recovery_events=len(result.recovery_log),
            failure_reason=result.failure_reason,
            identical_to_baseline=identical,
        )


def run_robustness(
    config: Optional[RobustnessConfig] = None,
) -> List[RobustnessRecord]:
    """Convenience wrapper mirroring :func:`repro.eval.experiments.run_evaluation`."""
    return RobustnessExperiment(config).run()


@dataclass
class RobustnessCell:
    """Aggregates of one ``(network size, crash rate)`` sweep cell."""

    network_size: int
    crash_rate: float
    trials: int
    success_rate: float
    mean_bandwidth_degradation: float
    mean_extra_messages: float
    mean_extra_time: float
    mean_failovers: float
    mean_refederations: float
    all_identical_to_baseline: bool


def summarize(records: List[RobustnessRecord]) -> List[RobustnessCell]:
    """Collapse trial records into per-cell aggregates, cell-sorted."""
    from repro.eval.stats import mean

    cells: Dict[Tuple[int, float], List[RobustnessRecord]] = {}
    for record in records:
        cells.setdefault((record.network_size, record.crash_rate), []).append(
            record
        )
    out: List[RobustnessCell] = []
    for (size, rate), bucket in sorted(cells.items()):
        survivors = [r for r in bucket if r.succeeded]
        out.append(
            RobustnessCell(
                network_size=size,
                crash_rate=rate,
                trials=len(bucket),
                success_rate=len(survivors) / len(bucket),
                mean_bandwidth_degradation=(
                    mean([r.bandwidth_degradation for r in survivors])
                    if survivors
                    else 1.0
                ),
                mean_extra_messages=mean(
                    [float(r.extra_messages) for r in bucket]
                ),
                mean_extra_time=mean([r.extra_time for r in bucket]),
                mean_failovers=mean([float(r.failovers) for r in bucket]),
                mean_refederations=mean(
                    [float(r.refederations) for r in bucket]
                ),
                all_identical_to_baseline=all(
                    r.identical_to_baseline for r in bucket
                ),
            )
        )
    return out


# ---------------------------------------------------------------------------
# gray failures: fault intensity x network size
# ---------------------------------------------------------------------------


def _gray_cell(
    payload: Tuple["GrayFailureExperiment", int, int]
) -> List["GrayFailureRecord"]:
    """Top-level (picklable) worker for one (size, trial) gray-sweep cell."""
    experiment, size, trial = payload
    return experiment._cell(size, trial)


#: Recovery-log kinds that count as "the runtime noticed this instance".
_DETECTION_KINDS = frozenset({"suspect", "retry_exhausted", "quarantine"})


@dataclass
class GrayFailureConfig:
    """Sweep parameters for the gray-failure experiment.

    Every cell composes the full gray menu (channel loss / duplication /
    reordering, stragglers, bandwidth sag ramps, flapping links, a healing
    partition, plus a few timed crash-stops), scaled by ``intensities``.
    ``required_fraction`` sets each run's bandwidth requirement relative to
    its own crash-free baseline bottleneck, so the delivered-bandwidth
    fraction is comparable across scenarios.
    """

    network_sizes: Tuple[int, ...] = (10, 20)
    intensities: Tuple[float, ...] = (0.0, 0.3, 0.6)
    trials: int = 5
    n_services: int = 5
    horizon: int = 2
    fault_window: float = 60.0
    heal_after: Optional[float] = 30.0
    crash_fraction: float = 0.2
    revive_after: Optional[float] = None
    required_fraction: float = 0.8
    retransmit_timeout: float = 10.0
    max_retries: int = 2
    failover_backoff: float = 5.0
    max_failovers: int = 8
    deadline: Optional[float] = 600.0
    max_refederations: int = 2
    refederate_hysteresis: float = 50.0
    detector_threshold: float = 4.0
    detector_poll: float = 15.0
    breaker_failures: int = 2
    retry_attempts: int = 3
    retry_base: float = 8.0
    seed: int = 0
    #: 0/1 serial, ``n >= 2`` fans the (size, trial) cells over processes,
    #: -1 uses every CPU.  Bit-identical to the serial sweep.
    workers: int = 0
    #: Optional sim-time metric sampling inside every run (baseline and
    #: gray arms alike, so the intensity-0 bit-compat check still holds);
    #: ``None`` keeps the legacy event schedule.
    sample_interval: Optional[float] = None

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise ValueError("need at least one trial")
        if not self.network_sizes:
            raise ValueError("need at least one network size")
        if not self.intensities:
            raise ValueError("need at least one intensity")
        for intensity in self.intensities:
            if not (0.0 <= intensity <= 1.0):
                raise ValueError(
                    f"intensities must be in [0, 1], got {intensity}"
                )
        if not (0.0 < self.required_fraction <= 1.0):
            raise ValueError("required_fraction must be in (0, 1]")
        if self.workers < -1:
            raise ValueError("workers must be >= -1")
        if self.sample_interval is not None and self.sample_interval <= 0:
            raise ValueError("sample_interval must be > 0 (or None)")

    def instance_range(self, network_size: int) -> Tuple[int, int]:
        per_service = max(1, round(network_size / self.n_services))
        return (max(1, per_service - 1), per_service + 1)

    def protocol_config(
        self, required_bandwidth: Optional[float] = None
    ) -> SFlowConfig:
        """The protocol knobs; the adaptive-detection stack rides along
        only on requirement-bearing (gray) runs, so the intensity-0 run is
        bit-identical to the plain baseline."""
        adaptive = required_bandwidth is not None
        return SFlowConfig(
            horizon=self.horizon,
            retransmit_timeout=self.retransmit_timeout,
            max_retries=self.max_retries,
            failover_backoff=self.failover_backoff,
            max_failovers=self.max_failovers,
            deadline=self.deadline,
            max_refederations=self.max_refederations,
            required_bandwidth=required_bandwidth,
            refederate_hysteresis=self.refederate_hysteresis,
            detector=(
                DetectorConfig(
                    threshold=self.detector_threshold,
                    bootstrap_interval=self.detector_poll,
                )
                if adaptive
                else None
            ),
            breaker=(
                BreakerConfig(failure_threshold=self.breaker_failures)
                if adaptive
                else None
            ),
            retry_policy=(
                RetryPolicy(
                    max_attempts=self.retry_attempts, base=self.retry_base
                )
                if adaptive
                else None
            ),
            sample_interval=self.sample_interval,
        )


@dataclass
class GrayFailureRecord:
    """One gray-failure run compared against its fault-free baseline."""

    network_size: int
    intensity: float
    trial: int
    outcome: str  # "succeeded" | "degraded" | "failed"
    required_bandwidth: float
    achieved_bandwidth: float
    #: min(1, achieved / required); 0 for failed runs.
    delivered_fraction: float
    #: Mean sim-time from a crash to the runtime first noticing the victim
    #: (suspect / retry_exhausted / quarantine event); 0 when nothing to
    #: detect, ``detected`` says how many victims were noticed.
    detection_latency: float
    detected: int
    crashed: int
    suspected: int
    false_suspicions: int
    #: Suspected instances that were neither crashed, straggling, nor
    #: partitioned, as a fraction of all suspected; 0 when none suspected.
    false_suspicion_rate: float
    #: First recovery event to completion (0 on undisturbed runs).
    recovery_latency: float
    messages: int
    convergence_time: float
    recovery_events: int
    crashes: int
    failovers: int
    refederations: int
    failure_reason: str = ""
    #: At intensity 0 the run must reproduce the baseline bit for bit.
    identical_to_baseline: bool = False


class GrayFailureExperiment:
    """The fault intensity x network size sweep (see module docstring)."""

    def __init__(self, config: Optional[GrayFailureConfig] = None) -> None:
        self.config = config or GrayFailureConfig()

    def _scenario(self, size: int, trial: int) -> Scenario:
        seed = _trial_seed(self.config.seed, size, trial)
        return generate_scenario(
            ScenarioConfig(
                network_size=size,
                n_services=self.config.n_services,
                instances_per_service=self.config.instance_range(size),
                seed=seed,
            )
        )

    def _chaos(
        self, scenario: Scenario, intensity: float
    ) -> Optional[ChaosPlan]:
        if intensity <= 0:
            return None
        chaos_seed = scenario.seed ^ 0x6B8B4567
        injector = FailureInjector(
            random.Random(chaos_seed),
            protect=[scenario.source_instance],
        )
        return injector.gray_plan(
            scenario.overlay,
            intensity=intensity,
            window=self.config.fault_window,
            heal_after=self.config.heal_after,
            crash_fraction=self.config.crash_fraction,
            revive_after=self.config.revive_after,
            seed=chaos_seed,
        )

    def _cell(self, size: int, trial: int) -> List[GrayFailureRecord]:
        """One (size, trial) cell: the fault-free baseline plus every
        intensity.  Intensity 0 re-runs the baseline configuration and
        must reproduce it bit for bit."""
        scenario = self._scenario(size, trial)
        baseline_config = self.config.protocol_config()
        baseline = SFlowAlgorithm(baseline_config).federate(
            scenario.requirement,
            scenario.overlay,
            source_instance=scenario.source_instance,
        )
        if baseline.flow_graph is None:
            raise RuntimeError(
                f"gray-failure baseline failed for size={size} trial={trial}: "
                f"{baseline.failure_reason}"
            )
        required = (
            baseline.flow_graph.bottleneck_bandwidth()
            * self.config.required_fraction
        )
        records: List[GrayFailureRecord] = []
        for intensity in self.config.intensities:
            if intensity <= 0:
                result = SFlowAlgorithm(baseline_config).federate(
                    scenario.requirement,
                    scenario.overlay,
                    source_instance=scenario.source_instance,
                )
                chaos = None
            else:
                chaos = self._chaos(scenario, intensity)
                result = SFlowAlgorithm(
                    self.config.protocol_config(required_bandwidth=required)
                ).federate(
                    scenario.requirement,
                    scenario.overlay,
                    source_instance=scenario.source_instance,
                    chaos=chaos,
                )
            records.append(
                self._record(
                    size, intensity, trial, required, baseline, result, chaos
                )
            )
        return records

    @staticmethod
    def _record(
        size: int,
        intensity: float,
        trial: int,
        required: float,
        baseline: SFlowResult,
        result: SFlowResult,
        chaos: Optional[ChaosPlan],
    ) -> GrayFailureRecord:
        served = result.flow_graph is not None
        if result.achieved_bandwidth is not None:
            achieved = result.achieved_bandwidth
        elif served:
            achieved = result.flow_graph.bottleneck_bandwidth()
        else:
            achieved = 0.0
        delivered = min(1.0, achieved / required) if served else 0.0
        crash_times = {
            str(event.instance): event.at
            for event in (chaos.schedule.events if chaos is not None else ())
        }
        latencies: List[float] = []
        for victim, crashed_at in crash_times.items():
            noticed = [
                event.time
                for event in result.recovery_log
                if event.instance == victim
                and event.kind in _DETECTION_KINDS
                and event.time >= crashed_at
            ]
            if noticed:
                latencies.append(min(noticed) - crashed_at)
        faulty: Set[str] = set(crash_times)
        if chaos is not None and chaos.gray is not None:
            faulty |= {str(inst) for inst in chaos.gray.faulty_instances()}
        false_suspects = [
            name for name in result.suspected if name not in faulty
        ]
        recovery_latency = (
            result.convergence_time - result.recovery_log[0].time
            if result.recovery_log
            else 0.0
        )
        identical = (
            served
            and baseline.flow_graph is not None
            and result.flow_graph.assignment == baseline.flow_graph.assignment
            and result.messages == baseline.messages
            and result.convergence_time == baseline.convergence_time
            and result.recovery_log == baseline.recovery_log
        )
        return GrayFailureRecord(
            network_size=size,
            intensity=intensity,
            trial=trial,
            outcome=result.outcome.value,
            required_bandwidth=required,
            achieved_bandwidth=achieved,
            delivered_fraction=delivered,
            detection_latency=(
                sum(latencies) / len(latencies) if latencies else 0.0
            ),
            detected=len(latencies),
            crashed=len(crash_times),
            suspected=len(result.suspected),
            false_suspicions=len(false_suspects),
            false_suspicion_rate=(
                len(false_suspects) / len(result.suspected)
                if result.suspected
                else 0.0
            ),
            recovery_latency=recovery_latency,
            messages=result.messages,
            convergence_time=result.convergence_time,
            recovery_events=len(result.recovery_log),
            crashes=result.crashes,
            failovers=result.failovers,
            refederations=result.refederations,
            failure_reason=result.failure_reason,
            identical_to_baseline=identical,
        )

    def run(self) -> List[GrayFailureRecord]:
        records, _ = self.run_with_metrics()
        return records

    def run_with_metrics(
        self,
    ) -> Tuple[List[GrayFailureRecord], Dict[str, dict]]:
        """:meth:`run` plus the merged metric-registry delta (submission
        order, so serial and pooled sweeps report identical totals)."""
        payloads = [
            (self, size, trial)
            for size in self.config.network_sizes
            for trial in range(self.config.trials)
        ]
        cells, metrics = map_cells_with_metrics(
            _gray_cell, payloads, self.config.workers
        )
        records: List[GrayFailureRecord] = []
        for cell in cells:
            records.extend(cell)
        return records, metrics


@dataclass
class GrayFailureCell:
    """Aggregates of one ``(network size, intensity)`` sweep cell."""

    network_size: int
    intensity: float
    trials: int
    committed_rate: float
    degraded_rate: float
    failed_rate: float
    mean_delivered_fraction: float
    #: Mean over runs that had something to detect and detected it.
    mean_detection_latency: float
    false_suspicion_rate: float
    mean_recovery_latency: float
    all_identical_to_baseline: bool


def summarize_gray(records: List[GrayFailureRecord]) -> List[GrayFailureCell]:
    """Collapse trial records into per-cell aggregates, cell-sorted."""
    from repro.eval.stats import mean

    cells: Dict[Tuple[int, float], List[GrayFailureRecord]] = {}
    for record in records:
        cells.setdefault(
            (record.network_size, record.intensity), []
        ).append(record)
    out: List[GrayFailureCell] = []
    for (size, intensity), bucket in sorted(cells.items()):
        detections = [
            r.detection_latency for r in bucket if r.detected > 0
        ]
        suspected = sum(r.suspected for r in bucket)
        false_suspicions = sum(r.false_suspicions for r in bucket)
        disturbed = [r for r in bucket if r.recovery_events > 0]
        out.append(
            GrayFailureCell(
                network_size=size,
                intensity=intensity,
                trials=len(bucket),
                committed_rate=(
                    sum(r.outcome == "succeeded" for r in bucket) / len(bucket)
                ),
                degraded_rate=(
                    sum(r.outcome == "degraded" for r in bucket) / len(bucket)
                ),
                failed_rate=(
                    sum(r.outcome == "failed" for r in bucket) / len(bucket)
                ),
                mean_delivered_fraction=mean(
                    [r.delivered_fraction for r in bucket]
                ),
                mean_detection_latency=(
                    mean(detections) if detections else 0.0
                ),
                false_suspicion_rate=(
                    false_suspicions / suspected if suspected else 0.0
                ),
                mean_recovery_latency=(
                    mean([r.recovery_latency for r in disturbed])
                    if disturbed
                    else 0.0
                ),
                all_identical_to_baseline=all(
                    r.identical_to_baseline for r in bucket
                ),
            )
        )
    return out


def run_gray_failure(
    config: Optional[GrayFailureConfig] = None,
) -> List[GrayFailureRecord]:
    """Convenience wrapper mirroring :func:`run_robustness`."""
    return GrayFailureExperiment(config).run()


def write_gray_csv(records: Sequence[GrayFailureRecord], path: Path) -> None:
    """Write one tidy CSV row per :class:`GrayFailureRecord`."""
    names = [f.name for f in dataclasses.fields(GrayFailureRecord)]
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=names)
        writer.writeheader()
        for record in records:
            writer.writerow(dataclasses.asdict(record))


def _format_gray_table(cells: Sequence[GrayFailureCell]) -> str:
    header = (
        f"{'size':>4} {'intensity':>9} {'committed':>9} {'degraded':>8} "
        f"{'failed':>6} {'delivered':>9} {'detect_lat':>10} "
        f"{'false_susp':>10} {'recov_lat':>9}"
    )
    lines = [header, "-" * len(header)]
    for cell in cells:
        lines.append(
            f"{cell.network_size:>4} {cell.intensity:>9.2f} "
            f"{cell.committed_rate:>9.2f} {cell.degraded_rate:>8.2f} "
            f"{cell.failed_rate:>6.2f} {cell.mean_delivered_fraction:>9.3f} "
            f"{cell.mean_detection_latency:>10.2f} "
            f"{cell.false_suspicion_rate:>10.3f} "
            f"{cell.mean_recovery_latency:>9.2f}"
        )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI for the seeded gray-failure campaign (the CI chaos-smoke job).

    Runs a :class:`GrayFailureExperiment`, optionally under the flight
    recorder, writes the per-trial CSV, and fails loudly if any exception
    escaped a simulation handler (``engine.handler_error``) -- the
    campaign's "no exception escapes the DES" guarantee.
    """
    parser = argparse.ArgumentParser(
        description="Run a seeded gray-failure robustness campaign."
    )
    parser.add_argument("--sizes", type=int, nargs="+", default=[10, 20])
    parser.add_argument(
        "--intensities", type=float, nargs="+", default=[0.0, 0.3, 0.6]
    )
    parser.add_argument("--trials", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=0)
    parser.add_argument("--csv", type=Path, default=None)
    parser.add_argument(
        "--record",
        type=Path,
        default=None,
        help="capture a flight recording (JSONL) of the campaign",
    )
    parser.add_argument(
        "--sample-interval",
        type=float,
        default=None,
        help="sim-time metric sampling interval (default: sampling off); "
        "sampled series land in the recording as /2 'series' records",
    )
    args = parser.parse_args(argv)

    from repro import obs
    from repro.obs import metrics as obs_metrics

    config = GrayFailureConfig(
        network_sizes=tuple(args.sizes),
        intensities=tuple(args.intensities),
        trials=args.trials,
        seed=args.seed,
        workers=args.workers,
        sample_interval=args.sample_interval,
    )
    errors_before = obs_metrics.registry().counter("engine.handler_error").total
    context = (
        obs.recording(args.record, meta={"campaign": "gray-failure"})
        if args.record is not None
        else contextlib.nullcontext()
    )
    with context:
        records = GrayFailureExperiment(config).run()
    errors_after = obs_metrics.registry().counter("engine.handler_error").total

    if args.csv is not None:
        write_gray_csv(records, args.csv)
        print(f"wrote {len(records)} records to {args.csv}")
    print(_format_gray_table(summarize_gray(records)))
    if args.record is not None:
        print(f"flight recording written to {args.record}")

    leaked = errors_after - errors_before
    if leaked:
        print(
            f"FAIL: {leaked:.0f} exception(s) escaped simulation handlers",
            file=sys.stderr,
        )
        return 1
    print("engine.handler_error: 0 (no exception escaped the DES)")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI shim
    sys.exit(main())
