"""Agility under churn: federations surviving continuous leave/rejoin.

Overlay networks churn: service instances leave (crashes, departures) and
return.  This experiment drives a :class:`~repro.core.monitor.MonitoredFederation`
with a seeded churn timeline and measures how well the repair loop keeps
the federated service alive:

* every ``churn_interval`` an eligible instance **leaves** (never the
  consumer-facing source, never a service's last instance);
* ``rejoin_delay`` later the same instance **rejoins** -- its service links
  are re-derived from the underlay, exactly as at scenario build time;
* the monitor probes, detects violations, and repairs incrementally.

The report aggregates **availability** (fraction of probes at which the
federation met its bandwidth threshold), repair counts and quality
retention -- the numbers behind ``benchmarks/test_churn_agility.py``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.monitor import MonitorConfig, MonitorReport, MonitoredFederation
from repro.network.failures import fail_instances
from repro.network.overlay import OverlayGraph, ServiceInstance
from repro.services.workloads import Scenario


@dataclass
class ChurnConfig:
    """Churn intensity and observation window.

    Attributes:
        duration: virtual length of the experiment.
        churn_interval: time between departures.
        rejoin_delay: how long a departed instance stays away
            (``None`` -> departures are permanent).
        monitor: probe cadence / repair policy for the underlying
            :class:`~repro.core.monitor.MonitoredFederation`.
        seed: selects the victims (deterministic timelines).
    """

    duration: float = 100.0
    churn_interval: float = 20.0
    rejoin_delay: Optional[float] = 10.0
    monitor: MonitorConfig = field(default_factory=MonitorConfig)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("duration must be > 0")
        if self.churn_interval <= 0:
            raise ValueError("churn_interval must be > 0")
        if self.rejoin_delay is not None and self.rejoin_delay <= 0:
            raise ValueError("rejoin_delay must be > 0 (or None)")


@dataclass
class ChurnReport:
    """Outcome of a churn run."""

    monitor_report: MonitorReport
    departures: List[Tuple[float, ServiceInstance]]
    rejoins: List[Tuple[float, ServiceInstance]]
    availability: float
    initial_bandwidth: float
    final_bandwidth: float

    @property
    def repairs(self) -> int:
        return self.monitor_report.repairs

    @property
    def bandwidth_retention(self) -> float:
        """Final vs initial bottleneck bandwidth (1.0 = fully retained)."""
        if self.initial_bandwidth == 0:
            return 0.0
        return self.final_bandwidth / self.initial_bandwidth


def run_churn_experiment(
    scenario: Scenario,
    config: Optional[ChurnConfig] = None,
) -> ChurnReport:
    """Run one monitored federation under the configured churn timeline."""
    config = config or ChurnConfig()
    rng = random.Random(config.seed)
    federation = MonitoredFederation(
        scenario.requirement,
        scenario.overlay,
        source_instance=scenario.source_instance,
        config=config.monitor,
    )
    initial_bandwidth = federation.graph.bottleneck_bandwidth()
    compatible = scenario.catalog.compatible
    underlay = scenario.underlay

    departures: List[Tuple[float, ServiceInstance]] = []
    rejoins: List[Tuple[float, ServiceInstance]] = []
    away: set = set()

    def leave(victim: ServiceInstance):
        def mutation(overlay: OverlayGraph) -> OverlayGraph:
            if victim not in overlay:
                return overlay  # already gone (defensive)
            away.add(victim)
            departures.append((federation.env.now, victim))
            return fail_instances(overlay, [victim])

        return mutation

    def rejoin(victim: ServiceInstance):
        def mutation(overlay: OverlayGraph) -> OverlayGraph:
            if victim in overlay:
                return overlay
            away.discard(victim)
            rejoins.append((federation.env.now, victim))
            instances = list(overlay.instances()) + [victim]
            # Links are re-derived from the (static) underlay -- the same
            # construction the scenario used, so a rejoin fully restores
            # the instance's connectivity.
            return OverlayGraph.build(underlay, instances, compatible)

        return mutation

    time = config.churn_interval
    while time < config.duration:
        victim = _pick_victim(scenario, federation, away, rng)
        if victim is not None:
            federation.schedule_mutation(time, leave(victim), f"leave {victim}")
            if config.rejoin_delay is not None:
                back = time + config.rejoin_delay
                if back < config.duration:
                    federation.schedule_mutation(
                        back, rejoin(victim), f"rejoin {victim}"
                    )
        time += config.churn_interval

    monitor_report = federation.run(until=config.duration)
    threshold = config.monitor.bandwidth_threshold * initial_bandwidth
    probes = monitor_report.timeline
    availability = (
        sum(1 for _, observed in probes if observed >= threshold) / len(probes)
        if probes
        else 1.0
    )
    return ChurnReport(
        monitor_report=monitor_report,
        departures=departures,
        rejoins=rejoins,
        availability=availability,
        initial_bandwidth=initial_bandwidth,
        final_bandwidth=monitor_report.final_graph.bottleneck_bandwidth(),
    )


def _pick_victim(
    scenario: Scenario,
    federation: MonitoredFederation,
    away: set,
    rng: random.Random,
) -> Optional[ServiceInstance]:
    """An instance that may leave: not the source, not a service's last
    present instance.  Victim selection happens at schedule time against
    the *initial* overlay; the mutation itself re-checks liveness."""
    overlay = scenario.overlay
    candidates = []
    for inst in overlay.instances():
        if inst == scenario.source_instance or inst in away:
            continue
        present = [
            other
            for other in overlay.instances_of(inst.sid)
            if other not in away
        ]
        if len(present) <= 1:
            continue
        candidates.append(inst)
    if not candidates:
        return None
    return rng.choice(sorted(candidates))
